"""Bench `fig4b`: Figure 4(b) — broadcast improvement T_u/T_b.

Paper series: improvement of c_j-proportional first-phase shares over
equal shares in the two-phase broadcast, fast root, vs number of
processors, one series per problem size.

Shape assertion: "there is no benefit to balanced workloads since each
processor must receive all of the items" — the factor hugs 1 and can
dip below it.
"""

from repro.experiments import fig4b_broadcast_balance
from repro.experiments.fig3_gather import PROBLEM_SIZES_KB, PROCESSOR_COUNTS


def test_fig4b_broadcast_balance(report_benchmark):
    report = report_benchmark(
        fig4b_broadcast_balance, PROBLEM_SIZES_KB, PROCESSOR_COUNTS
    )
    for label, series in report.series.items():
        for p, factor in series.items():
            assert 0.75 < factor < 1.25, (
                f"{label} p={p}: balancing changed broadcast time by "
                f"{factor} — it must not"
            )
