"""Bench `sensitivity`: robustness of the findings to calibration.

Not a paper artifact — a reproduction-quality check: the simulated
testbed's knobs (CPU spread, NIC spread, pack cost) are our
calibration, so the headline findings must survive sweeping them.

Shape assertions: under every calibration the gather's root-choice
factor exceeds the broadcast's (the paper's core contrast), and the
p = 2 inversion appears exactly when packing is asymmetric.
"""

from repro.experiments import calibration_sensitivity


def test_calibration_sensitivity(report_benchmark):
    report = report_benchmark(calibration_sensitivity)
    for label, findings in report.series.items():
        assert findings["gather@p"] > 1.1, label
        assert findings["gather@p"] > findings["bcast@p"], label
        assert 0.9 < findings["bcast@p"] < 1.45, label
        if label == "pack = unpack":
            assert findings["gather@2"] > 0.95, "inversion must vanish"
        else:
            assert findings["gather@2"] < 1.0, f"{label}: inversion expected"
