"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The
convention: the benchmarked callable runs the full experiment sweep,
the report is printed once (so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's rows/series verbatim), and the qualitative shape
is asserted so a regression in the reproduction fails the bench.
"""

from __future__ import annotations

import pytest

from repro.experiments.improvement import ExperimentReport


def run_report_benchmark(benchmark, factory, *args, **kwargs) -> ExperimentReport:
    """Benchmark an experiment factory and print its report once."""
    report = benchmark.pedantic(
        lambda: factory(*args, **kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(report.render())
    return report


@pytest.fixture
def report_benchmark(benchmark):
    """Fixture wrapping :func:`run_report_benchmark`."""

    def runner(factory, *args, **kwargs):
        return run_report_benchmark(benchmark, factory, *args, **kwargs)

    return runner
