"""Standalone benchmark harness: ``python benchmarks/bench_runner.py``.

Emits two machine-readable artifacts next to this file's repo root:

``BENCH_substrate.json``
    Microbenchmarks of the simulation substrate (event churn, resource
    contention, mailbox churn, one full collective) — the single-core
    hot paths the ``repro.perf`` work optimised.

``BENCH_sweep.json``
    Wall-clock of the full experiment sweep (``python -m
    repro.experiments all``), serial and parallel, against the recorded
    pre-optimisation seed baseline — plus a cold/warm pair against a
    fresh persistent cache (the warm run must not be slower, and its
    output must be byte-identical).

``BENCH_kernels.json``
    Scalar ``predict_*`` loop vs one vectorized
    ``repro.model.kernels`` evaluation over the same grid (the ledgers
    are bit-identical; only the wall-clock differs).

``BENCH_obs.json``
    Observability overhead (``benchmarks/bench_obs_overhead.py``):
    in-process experiment runs with observation off vs metrics-on vs
    spans-on.  ``--check`` gates the metrics-on overhead under 3%.

``BENCH_discover.json``
    Hierarchy-discovery round-trip (``benchmarks/bench_discover.py``):
    generate + synthesize + discover wall-clock at 10^3 and 10^4
    leaves.  ``--check`` gates exact recovery, the 10^4-leaf 60 s
    acceptance ceiling, and a gross timing regression.

``BENCH_scale.json``
    Macro-event superstep engine (``benchmarks/bench_scale.py``):
    10^3- and 10^4-leaf collectives, macro vs object path.  ``--check``
    gates bit-identical dual-path results, the 10x macro speedup floor
    on the send-heavy 10^3 broadcast, and the 10^4 completion ceiling.

``BENCH_tuning.json``
    Schedule auto-tuner (``benchmarks/bench_tuning.py``): cold-tune
    cost vs warm decision-cache lookup, and tuned-vs-default simulated
    makespans at 10^2-10^4 leaves.  ``--check`` gates the warm-lookup
    speedup floor, tuned never slower than default, and the expected
    >=10% win on the latency-dominated broadcast scenario.

``BENCH_serve.json``
    Open-loop serving layer (``benchmarks/bench_serve.py``): the
    goodput-vs-offered-load curve, simulated p99 at the reference
    rate, and cold-session wall-clock vs a raw ``evaluate()`` of the
    same kernel-job universe.  ``--check`` gates the p99 ceiling,
    goodput monotone up to the knee, and service overhead under 5%.

``BENCH_dynamics.json``
    Dynamic clusters (``benchmarks/bench_dynamics.py``): churned-vs-
    static session wall-clock on shared prewarmed cost models, and one
    ``fit_params`` call at the calibration acceptance operating point.
    ``--check`` gates churn overhead under 10%, the fit wall-time
    ceiling, and three deterministic gates (empty plan bit-identical,
    request conservation under churn, exact noise-free round-trip).

Modes:

``--quick``
    CI-sized run: fewer iterations and a reduced experiment subset;
    results land under a ``"quick"`` key so they are never compared
    against full-run numbers.
``--check``
    Compare against the committed artifacts and exit non-zero on a
    >25% wall-clock regression (the CI gate).  Timing comparisons are
    refused — skipped with a message, leaving only the absolute gates
    (speedup floors, equivalence, ceilings) — when the committed
    artifact was recorded on a different machine (``cpu_count`` or
    python major.minor differ): cross-host wall-clock ratios are
    noise, not signal.

Timings use the median of ``--runs`` subprocess invocations; the
committed artifacts also record the host CPU count, because parallel
speedups are meaningless without it (a 1-CPU container *loses* time
at ``--jobs 4`` to pool overhead, and the JSON says so).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Wall-clock of ``python -m repro.experiments all`` at the seed commit
#: (pre-``repro.perf``), median of 3 on the reference 1-CPU container.
SEED_BASELINE_SECONDS = 5.918

#: Reduced experiment subset for ``--quick`` (CI smoke).
QUICK_EXPERIMENTS = ["fig3a", "fig4a", "model-vs-sim"]

#: Regression gate: fail ``--check`` beyond this slowdown factor.
REGRESSION_LIMIT = 1.25

#: Minimum vectorized-vs-scalar speedup ``--check`` accepts.
KERNEL_SPEEDUP_FLOOR = 5.0

#: A warm-cache run may exceed the cold run by at most this factor
#: before ``--check`` fails (small head-room for timer noise; the real
#: expectation is warm << cold).
WARM_CACHE_LIMIT = 1.05


# -- substrate microbenchmarks -------------------------------------------------
def _bench_timeout_churn(n: int) -> dict:
    from repro.sim.engine import Engine

    def chain(engine, count):
        for _ in range(count):
            yield engine.timeout(0.001)

    engine = Engine()
    engine.process(chain(engine, n))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "name": "engine_timeout_churn",
        "what": f"one process yielding {n} back-to-back timeouts",
        "events": engine.events_processed,
        "seconds": elapsed,
        "events_per_second": engine.events_processed / elapsed,
    }


def _bench_resource_contention(processes: int, rounds: int) -> dict:
    from repro.sim.engine import Engine
    from repro.sim.resources import Resource

    def worker(resource, count):
        for _ in range(count):
            yield from resource.occupy(0.01)

    engine = Engine()
    cpu = Resource(engine, capacity=1, name="cpu")
    for _ in range(processes):
        engine.process(worker(cpu, rounds))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "name": "resource_contention",
        "what": f"{processes} processes x {rounds} holds of one capacity-1 resource",
        "events": engine.events_processed,
        "seconds": elapsed,
        "events_per_second": engine.events_processed / elapsed,
    }


def _bench_store_churn(pairs: int, messages: int) -> dict:
    from repro.sim.engine import Engine
    from repro.sim.resources import Store

    def producer(engine, store, count):
        for i in range(count):
            yield engine.timeout(0.001)
            store.put(i)

    def consumer(store, count):
        for _ in range(count):
            yield store.get()

    engine = Engine()
    for _ in range(pairs):
        store = Store(engine)
        engine.process(producer(engine, store, messages))
        engine.process(consumer(store, messages))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "name": "store_churn",
        "what": f"{pairs} producer/consumer pairs x {messages} messages",
        "events": engine.events_processed,
        "seconds": elapsed,
        "events_per_second": engine.events_processed / elapsed,
    }


def _bench_gather_collective(n: int) -> dict:
    from repro.cluster.presets import ucf_testbed
    from repro.collectives import RootPolicy, run_gather

    topology = ucf_testbed(10)
    start = time.perf_counter()
    outcome = run_gather(topology, n, root=RootPolicy.FASTEST, seed=0)
    elapsed = time.perf_counter() - start
    return {
        "name": "gather_collective",
        "what": f"run_gather(testbed(10), n={n}, fastest root)",
        "simulated_time": outcome.time,
        "seconds": elapsed,
    }


def run_substrate(quick: bool, repeats: int) -> list[dict]:
    scale = 1 if quick else 4
    benches = [
        lambda: _bench_timeout_churn(10_000 * scale),
        lambda: _bench_resource_contention(20, 100 * scale),
        lambda: _bench_store_churn(10, 200 * scale),
        lambda: _bench_gather_collective(25_600 * scale),
    ]
    results = []
    for bench in benches:
        rounds = [bench() for _ in range(repeats)]
        best = min(rounds, key=lambda r: r["seconds"])
        best["repeats"] = repeats
        results.append(best)
        print(f"  {best['name']:22s} {best['seconds']*1e3:8.1f} ms"
              + (f"  ({best['events_per_second']:,.0f} events/s)"
                 if "events_per_second" in best else ""))
    return results


# -- sweep wall-clock ----------------------------------------------------------
def _time_sweep(
    experiments: list[str],
    jobs: int,
    runs: int,
    cache_args: tuple[str, ...] = ("--no-cache",),
) -> tuple[list[float], list[str]]:
    """Timings and captured stdout of ``runs`` sweep subprocesses.

    Default ``--no-cache`` keeps the regression-comparable timings
    measuring the simulator, not the persistent cache (and comparable
    to the pre-cache seed baseline).
    """
    command = [sys.executable, "-m", "repro.experiments", *experiments, *cache_args]
    if jobs != 1:
        command += ["--jobs", str(jobs)]
    timings, outputs = [], []
    for _ in range(runs):
        start = time.perf_counter()
        result = subprocess.run(
            command, capture_output=True, text=True,
            env=dict(os.environ, PYTHONPATH=str(SRC)),
        )
        elapsed = time.perf_counter() - start
        if result.returncode != 0:
            raise RuntimeError(
                f"sweep failed (rc={result.returncode}):\n{result.stderr[-2000:]}"
            )
        timings.append(elapsed)
        outputs.append(result.stdout)
    return timings, outputs


def run_sweep(quick: bool, runs: int, parallel_jobs: int) -> dict:
    experiments = QUICK_EXPERIMENTS if quick else ["all"]
    label = " ".join(experiments)
    print(f"  timing: python -m repro.experiments {label}  (x{runs})")
    serial, _ = _time_sweep(experiments, 1, runs)
    print(f"    serial: {', '.join(f'{s:.3f}s' for s in serial)}")
    parallel, _ = _time_sweep(experiments, parallel_jobs, runs)
    print(f"    --jobs {parallel_jobs}: "
          f"{', '.join(f'{s:.3f}s' for s in parallel)}")
    entry = {
        "experiments": label,
        "runs": runs,
        "serial_seconds": round(statistics.median(serial), 3),
        "serial_all_runs": [round(s, 3) for s in serial],
        "parallel_jobs": parallel_jobs,
        "parallel_seconds": round(statistics.median(parallel), 3),
    }
    if not quick:
        entry["seed_baseline_seconds"] = SEED_BASELINE_SECONDS
        entry["speedup_vs_seed"] = round(
            SEED_BASELINE_SECONDS / entry["serial_seconds"], 2
        )
    return entry


def run_cache(quick: bool) -> dict:
    """Cold vs warm sweep against a fresh persistent cache."""
    experiments = QUICK_EXPERIMENTS if quick else ["all"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold, cold_out = _time_sweep(experiments, 1, 1, ("--cache-dir", tmp))
        warm, warm_out = _time_sweep(experiments, 1, 1, ("--cache-dir", tmp))
    entry = {
        "experiments": " ".join(experiments),
        "cold_seconds": round(cold[0], 3),
        "warm_seconds": round(warm[0], 3),
        "warm_over_cold": round(warm[0] / cold[0], 2),
        "outputs_identical": cold_out[0] == warm_out[0],
    }
    print(f"    cold: {entry['cold_seconds']:.3f}s  "
          f"warm: {entry['warm_seconds']:.3f}s  "
          f"({entry['warm_over_cold']:.2f}x, outputs identical: "
          f"{entry['outputs_identical']})")
    return entry


# -- analytic kernels ----------------------------------------------------------
def run_kernels(quick: bool, repeats: int) -> dict:
    """Scalar ``predict_*`` loop vs one vectorized kernel evaluation.

    Both paths produce the exact same ledger totals (asserted here);
    the entry records the wall-clock ratio on an identical grid.
    """
    import numpy as np

    from repro.cluster.presets import ucf_testbed
    from repro.model.kernels import BroadcastKernel, GatherKernel
    from repro.model.params import calibrate
    from repro.model.predict import predict_broadcast, predict_gather

    params = calibrate(ucf_testbed(10))
    sizes = [1_000, 16_000, 128_000, 1_000_000]
    copies = 8 if quick else 64
    points = [
        (n, root) for _ in range(copies) for n in sizes for root in range(params.p)
    ]
    ns = np.array([n for n, _ in points], dtype=np.int64)
    roots = np.array([root for _, root in points], dtype=np.int64)

    def scalar_gather():
        return [predict_gather(params, n, root=root).total for n, root in points]

    def kernel_gather():
        return GatherKernel(params).evaluate(ns, roots=roots).totals

    def scalar_broadcast():
        return [
            predict_broadcast(params, n, root=root, phases="two").total
            for n, root in points
        ]

    def kernel_broadcast():
        return BroadcastKernel(params).evaluate(ns, roots=roots, phases="two").totals

    entry = {}
    for name, scalar, kernel in (
        ("gather", scalar_gather, kernel_gather),
        ("broadcast", scalar_broadcast, kernel_broadcast),
    ):
        scalar_s, kernel_s = [], []
        for _ in range(repeats):
            start = time.perf_counter()
            scalar_totals = scalar()
            scalar_s.append(time.perf_counter() - start)
            start = time.perf_counter()
            kernel_totals = kernel()
            kernel_s.append(time.perf_counter() - start)
        if list(kernel_totals) != scalar_totals:
            raise RuntimeError(f"{name}: kernel totals diverge from scalar")
        best_scalar, best_kernel = min(scalar_s), min(kernel_s)
        entry[name] = {
            "points": len(points),
            "scalar_seconds": round(best_scalar, 4),
            "kernel_seconds": round(best_kernel, 4),
            "speedup": round(best_scalar / best_kernel, 1),
        }
        print(f"  {name:10s} {len(points)} points: scalar "
              f"{best_scalar * 1e3:7.1f} ms, kernel {best_kernel * 1e3:6.1f} ms "
              f"({entry[name]['speedup']:.1f}x)")
    return entry


# -- artifacts -----------------------------------------------------------------
def _machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def machine_mismatch(artifact: Path) -> str | None:
    """Why ``artifact``'s committed timings are not comparable here.

    Returns a human-readable reason when the committed machine block
    differs from this host in ``cpu_count`` or python major.minor, and
    ``None`` when the artifact is missing or comparable.  Patch
    versions are ignored: they don't move wall-clock, and CI images
    bump them constantly.
    """
    if not artifact.exists():
        return None
    committed = json.loads(artifact.read_text()).get("machine", {})
    current = _machine_info()
    if committed.get("cpu_count") != current["cpu_count"]:
        return (f"cpu_count {committed.get('cpu_count')} != "
                f"{current['cpu_count']}")
    theirs = str(committed.get("python", "")).split(".")[:2]
    ours = current["python"].split(".")[:2]
    if theirs != ours:
        return f"python {'.'.join(theirs) or '?'} != {'.'.join(ours)}"
    return None


def check_regression(artifact: Path, current: float, key: str, scope: str) -> bool:
    """True if ``current`` regresses >25% against the committed number."""
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the gate")
        return False
    mismatch = machine_mismatch(artifact)
    if mismatch:
        print(f"  {artifact.name}: committed on a different machine "
              f"({mismatch}); refusing the timing comparison")
        return False
    committed = json.loads(artifact.read_text())
    baseline = committed.get(scope, {}).get(key)
    if not baseline:
        print(f"  committed {artifact.name} has no {scope}.{key}; "
              "skipping the gate")
        return False
    ratio = current / baseline
    verdict = "REGRESSION" if ratio > REGRESSION_LIMIT else "ok"
    print(f"  {key}: {current:.3f}s vs committed {baseline:.3f}s "
          f"({ratio:.2f}x) -> {verdict}")
    return ratio > REGRESSION_LIMIT


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (reduced subset, fewer repeats)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25% regression vs the committed JSON")
    parser.add_argument("--runs", type=int, default=3,
                        help="sweep timing repetitions (median is reported)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel sweep timing")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write the BENCH_*.json artifacts")
    args = parser.parse_args(argv)
    sys.path.insert(0, str(SRC))
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_discover
    import bench_dynamics
    import bench_obs_overhead
    import bench_scale
    import bench_serve
    import bench_tuning

    repeats = 1 if args.quick else 3
    runs = 1 if args.quick else args.runs

    print("substrate microbenchmarks:")
    substrate = run_substrate(args.quick, repeats)
    print("analytic kernels (scalar loop vs vectorized):")
    kernels_entry = run_kernels(args.quick, repeats)
    print("observability overhead (off vs metrics vs spans):")
    obs_entry = bench_obs_overhead.run_overhead(args.quick, 3 if args.quick else 5)
    print("hierarchy discovery (generate -> synthesize -> discover):")
    discover_entry = bench_discover.run_discover(args.quick)
    print("macro-event scale (10^3/10^4-leaf collectives):")
    scale_entry = bench_scale.run_scale(args.quick)
    print("auto-tuned schedules (cold tune, warm lookup, tuned vs default):")
    tuning_entry = bench_tuning.run_tuning(args.quick)
    print("open-loop serving (goodput curve, reference p99, overhead):")
    serve_entry = bench_serve.run_serve(args.quick)
    print("dynamic clusters (churn overhead, calibration fit):")
    dynamics_entry = bench_dynamics.run_dynamics(args.quick)
    print("experiment sweep:")
    sweep_entry = run_sweep(args.quick, runs, args.jobs)
    print("  persistent cache (cold vs warm, fresh --cache-dir):")
    sweep_entry["cache"] = run_cache(args.quick)

    scope = "quick" if args.quick else "full"
    machine = _machine_info()
    substrate_doc = {
        "benchmark": "repro.sim substrate microbenchmarks",
        "machine": machine,
        scope: {bench.pop("name"): bench for bench in substrate},
    }
    sweep_doc = {
        "benchmark": "python -m repro.experiments wall-clock",
        "machine": machine,
        "note": (
            "the CLI clamps --jobs to the host's cores (serially on a "
            "1-CPU host), so the parallel timing matches serial there; "
            "the headline speedup is serial vs the recorded seed "
            "baseline; serial/parallel timings use --no-cache (the "
            "'cache' block times the persistent cache separately)"
        ),
        scope: sweep_entry,
    }
    kernels_doc = {
        "benchmark": "repro.model.kernels vs scalar predict_*",
        "machine": machine,
        "note": (
            "identical grids, bit-identical totals (asserted during the "
            "run); the speedup is pure vectorization"
        ),
        scope: kernels_entry,
    }
    obs_doc = {
        "benchmark": "repro.obs overhead on in-process experiment runs",
        "machine": machine,
        "note": (
            "off = no active observation (the default path); metrics = "
            "observe(); spans = observe(spans=True), which turns the DES "
            "trace on and is recorded unguarded; all three must render "
            "byte-identical reports"
        ),
        scope: obs_entry,
    }
    discover_doc = {
        "benchmark": "repro.cluster.discover round-trip wall-clock",
        "machine": machine,
        "note": (
            "1k = fat_tree(4,16,16), float64 matrix with gap columns, "
            "scipy linkage; 10k = fat_tree(25,25,16), latency-only "
            "float32 matrix, banded components; both assert exact "
            "structural recovery against the generating truth"
        ),
        scope: discover_entry,
    }
    scale_doc = {
        "benchmark": "macro-event vs object-event collective wall-clock",
        "machine": machine,
        "note": (
            "1k dual-path scales assert bit-identical simulated time, "
            "values, and superstep marks before timing; 10k scales run "
            "the macro path only; macro_seconds is the best of the "
            "repeats, object_seconds a single run"
        ),
        scope: scale_entry,
    }
    tuning_doc = {
        "benchmark": "schedule auto-tuning cost and wins",
        "machine": machine,
        "note": (
            "cold_seconds = full tune (enumerate + vectorized pricing + "
            "DES-validated shortlist) into a fresh cache; warm_seconds = "
            "best of 5 decision-cache resolutions with the in-memory "
            "memo dropped; tuned can never be slower than default "
            "because the default plan is always in the validated "
            "shortlist"
        ),
        scope: tuning_entry,
    }
    serve_doc = {
        "benchmark": "open-loop serving goodput, tail latency, overhead",
        "machine": machine,
        "note": (
            "curve/goodput/p99 are simulated (deterministic per seed); "
            "session_seconds is the cold session wall-clock (kernel-cost "
            "prewarm + service loop), raw_universe_seconds the bare "
            "evaluate() of the same job universe; their ratio is the "
            "service overhead"
        ),
        scope: serve_entry,
    }
    dynamics_doc = {
        "benchmark": "dynamic clusters: churn overhead and calibration fit",
        "machine": machine,
        "note": (
            "static/dynamic sessions share prewarmed cost models so "
            "churn_overhead isolates the dynamics machinery; fit_seconds "
            "times one fit_params call at the acceptance operating "
            "point; the three boolean gates are deterministic on any "
            "host"
        ),
        scope: dynamics_entry,
    }

    args.output_dir.mkdir(parents=True, exist_ok=True)
    substrate_path = args.output_dir / "BENCH_substrate.json"
    sweep_path = args.output_dir / "BENCH_sweep.json"
    kernels_path = args.output_dir / "BENCH_kernels.json"
    obs_path = args.output_dir / "BENCH_obs.json"
    discover_path = args.output_dir / "BENCH_discover.json"
    scale_path = args.output_dir / "BENCH_scale.json"
    tuning_path = args.output_dir / "BENCH_tuning.json"
    serve_path = args.output_dir / "BENCH_serve.json"
    dynamics_path = args.output_dir / "BENCH_dynamics.json"
    regressed = False
    if args.check:
        print("regression gate (limit "
              f"{(REGRESSION_LIMIT - 1) * 100:.0f}%):")
        regressed = check_regression(
            sweep_path, sweep_entry["serial_seconds"], "serial_seconds", scope
        )
        cache = sweep_entry["cache"]
        warm_ok = (
            cache["warm_seconds"] <= cache["cold_seconds"] * WARM_CACHE_LIMIT
            and cache["outputs_identical"]
        )
        print(f"  warm cache: {cache['warm_seconds']:.3f}s vs cold "
              f"{cache['cold_seconds']:.3f}s, outputs identical: "
              f"{cache['outputs_identical']} -> "
              f"{'ok' if warm_ok else 'REGRESSION'}")
        regressed |= not warm_ok
        for name, bench in kernels_entry.items():
            kernel_ok = bench["speedup"] >= KERNEL_SPEEDUP_FLOOR
            print(f"  kernel {name}: {bench['speedup']:.1f}x "
                  f"(floor {KERNEL_SPEEDUP_FLOOR:.0f}x) -> "
                  f"{'ok' if kernel_ok else 'REGRESSION'}")
            regressed |= not kernel_ok
        regressed |= bench_obs_overhead.check_overhead(obs_entry)
        for path, checker, entry in (
            (discover_path, bench_discover.check_discover, discover_entry),
            (scale_path, bench_scale.check_scale, scale_entry),
            (tuning_path, bench_tuning.check_tuning, tuning_entry),
            (serve_path, bench_serve.check_serve, serve_entry),
            (dynamics_path, bench_dynamics.check_dynamics, dynamics_entry),
        ):
            mismatch = machine_mismatch(path)
            if mismatch:
                print(f"  {path.name}: committed on a different machine "
                      f"({mismatch}); refusing the timing comparison")
            regressed |= checker(path, entry, scope, compare=mismatch is None)
    else:
        # Preserve the other scope ("full" vs "quick") when present so a
        # --quick run never clobbers the committed full-run numbers.
        for path, doc in ((substrate_path, substrate_doc),
                          (sweep_path, sweep_doc),
                          (kernels_path, kernels_doc),
                          (obs_path, obs_doc),
                          (discover_path, discover_doc),
                          (scale_path, scale_doc),
                          (tuning_path, tuning_doc),
                          (serve_path, serve_doc),
                          (dynamics_path, dynamics_doc)):
            if path.exists():
                previous = json.loads(path.read_text())
                for key in ("full", "quick"):
                    if key in previous and key not in doc:
                        doc[key] = previous[key]
            path.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"wrote {path}")
    return 1 if regressed else 0


if __name__ == "__main__":
    raise SystemExit(main())
