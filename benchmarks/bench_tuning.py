"""Auto-tuner benchmark: ``python benchmarks/bench_tuning.py``.

Measures the two claims the tuning subsystem makes, writing
``BENCH_tuning.json``:

* **Decision cache** — the cold tune (enumerate the plan space, price
  it with the vectorized kernels, DES-validate the analytic shortlist)
  vs the warm resolution of the same decision from the persistent
  :class:`~repro.tuning.cache.DecisionCache`.  Warm lookups touch no
  simulator — ``--check`` gates the cold/warm ratio at
  :data:`WARM_LOOKUP_FLOOR`.
* **Tuned vs default makespans** — scenarios at 10^2, 10^3, and 10^4
  leaves on the generator families.  Because the tuner DES-validates
  the default plan alongside its shortlist and picks on simulated
  time, tuned must never be slower; ``--check`` gates that on every
  scenario, plus a >= :data:`WIN_FLOOR` improvement on the scenarios
  marked ``expect_win`` (latency-dominated broadcasts, where the
  expanded schedule space provably beats the paper's two-phase
  default).

``--quick`` shrinks the machines to CI-smoke size and relaxes the
warm-ratio floor (tiny machines leave less cold work to amortise), but
keeps both hard gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Minimum cold-tune / warm-lookup wall-clock ratio ``--check`` accepts.
WARM_LOOKUP_FLOOR = 50.0

#: Relaxed floor for ``--quick`` (a 32-leaf cold tune is only ~10 ms,
#: so the ratio is dominated by fixed per-lookup costs).
QUICK_WARM_LOOKUP_FLOOR = 10.0

#: Scenarios marked ``expect_win`` must improve on the default
#: schedule by at least this fraction of makespan.
WIN_FLOOR = 0.10

#: Regression gate on cold_seconds vs the committed artifact (wide,
#: like bench_scale: multi-second DES runs on shared hosts are noisy;
#: the hard gates are the ratio floor and the never-slower rule).
REGRESSION_LIMIT = 2.0

#: (label, family, generator kwargs, op, n, expect_win).
SCENARIOS: tuple[tuple[str, str, dict, str, int, bool], ...] = (
    ("bcast_100_multi_rack", "multi_rack",
     {"racks": 8, "hosts_per_rack": 16}, "broadcast", 500, True),
    ("bcast_1k_fat_tree", "fat_tree",
     {"pods": 4, "racks_per_pod": 16, "hosts_per_rack": 16},
     "broadcast", 20_000, False),
    ("gather_1k_multi_rack", "multi_rack",
     {"racks": 8, "hosts_per_rack": 128}, "gather", 20_000, False),
    ("bcast_10k_fat_tree", "fat_tree",
     {"pods": 25, "racks_per_pod": 25, "hosts_per_rack": 16},
     "broadcast", 20_000, False),
)

QUICK_SCENARIOS: tuple[tuple[str, str, dict, str, int, bool], ...] = (
    ("bcast_quick_multi_rack", "multi_rack",
     {"racks": 4, "hosts_per_rack": 8}, "broadcast", 500, True),
    ("gather_quick_multi_rack", "multi_rack",
     {"racks": 4, "hosts_per_rack": 8}, "gather", 5_000, False),
)

#: Which scenario label times the cold/warm decision-cache pair.
TIMED_SCENARIO = "bcast_1k_fat_tree"
QUICK_TIMED_SCENARIO = "bcast_quick_multi_rack"


def _bench_scenario(label: str, family: str, gen_kwargs: dict, op: str,
                    n: int, expect_win: bool, timed: bool,
                    cache_dir: str) -> dict:
    from repro.cluster.discover.generators import GENERATORS
    from repro.tuning.cache import DecisionCache
    from repro.tuning.tuner import tune

    topology = GENERATORS[family](seed=0, **gen_kwargs)
    cache = DecisionCache(cache_dir)
    start = time.perf_counter()
    decision = tune(topology, op, n, cache=cache, force=True)
    cold = time.perf_counter() - start
    entry: dict = {
        "label": label,
        "generator": f"{family}({gen_kwargs})",
        "op": op,
        "n": n,
        "leaves": topology.num_machines,
        "plan": decision.plan.key,
        "candidates": decision.candidates,
        "validated": decision.validated,
        "tuned_time": decision.simulated_time,
        "default_time": decision.default_time,
        "improvement": round(decision.improvement, 4),
        "expect_win": expect_win,
        "cold_seconds": round(cold, 4),
    }
    if timed:
        # A fresh DecisionCache instance drops the in-memory memo, so
        # every warm iteration pays the honest disk path: topology
        # hash, key digest, one JSON read.
        warm_times = []
        for _ in range(5):
            warm_cache = DecisionCache(cache_dir)
            start = time.perf_counter()
            warm = tune(topology, op, n, cache=warm_cache)
            warm_times.append(time.perf_counter() - start)
            assert warm == decision
        entry["warm_seconds"] = round(min(warm_times), 6)
        entry["warm_ratio"] = round(cold / min(warm_times), 1)
    print(f"  {label:24s} p={entry['leaves']:6d} {op}(n={n}) -> "
          f"{decision.plan.key}  win={100 * decision.improvement:5.1f}%  "
          f"cold={cold:6.2f}s"
          + (f"  warm={entry['warm_seconds'] * 1e3:.1f}ms "
             f"({entry['warm_ratio']:.0f}x)" if timed else ""))
    return entry


def run_tuning(quick: bool) -> dict:
    """Tune every scenario; the timed one also measures cold vs warm."""
    scenarios = QUICK_SCENARIOS if quick else SCENARIOS
    timed = QUICK_TIMED_SCENARIO if quick else TIMED_SCENARIO
    with tempfile.TemporaryDirectory(prefix="repro-bench-tuning-") as scratch:
        entries = [
            _bench_scenario(*scenario, scenario[0] == timed, scratch)
            for scenario in scenarios
        ]
    return {
        "warm_lookup_floor": (
            QUICK_WARM_LOOKUP_FLOOR if quick else WARM_LOOKUP_FLOOR
        ),
        "win_floor": WIN_FLOOR,
        "scenarios": {entry["label"]: entry for entry in entries},
    }


def check_tuning(
    artifact: Path, entry: dict, scope: str, compare: bool = True,
) -> bool:
    """True when the tuner regresses: a tuned plan slower than the
    default, a missing expected win, a blown warm-lookup floor, or a
    gross cold-tune slowdown vs the committed artifact.

    ``compare=False`` (machine mismatch) keeps the hard gates and
    skips the committed-timing comparison.
    """
    regressed = False
    floor = entry["warm_lookup_floor"]
    for label, bench in entry["scenarios"].items():
        never_slower = bench["tuned_time"] <= bench["default_time"]
        print(f"  tuning {label}: tuned {bench['tuned_time']:.4g}s vs "
              f"default {bench['default_time']:.4g}s -> "
              f"{'ok' if never_slower else 'REGRESSION (tuned slower)'}")
        regressed |= not never_slower
        if bench["expect_win"]:
            won = bench["improvement"] >= entry["win_floor"]
            print(f"  tuning {label}: {100 * bench['improvement']:.1f}% win "
                  f"(floor {100 * entry['win_floor']:.0f}%) -> "
                  f"{'ok' if won else 'REGRESSION'}")
            regressed |= not won
        if "warm_ratio" in bench:
            fast = bench["warm_ratio"] >= floor
            print(f"  tuning {label}: warm lookup {bench['warm_ratio']:.0f}x "
                  f"faster than cold tune (floor {floor:.0f}x) -> "
                  f"{'ok' if fast else 'REGRESSION'}")
            regressed |= not fast
    if not compare:
        print(f"  {artifact.name}: timing comparison refused "
              "(different machine); hard gates above still apply")
        return regressed
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the timing gate")
        return regressed
    committed = (
        json.loads(artifact.read_text()).get(scope, {}).get("scenarios", {})
    )
    for label, bench in entry["scenarios"].items():
        baseline = committed.get(label, {}).get("cold_seconds")
        if not baseline:
            print(f"  committed {artifact.name} has no {scope} scenario "
                  f"{label}; skipping its timing gate")
            continue
        ratio = bench["cold_seconds"] / baseline
        over = ratio > REGRESSION_LIMIT
        print(f"  tuning {label}: cold {bench['cold_seconds']:.2f}s vs "
              f"committed {baseline:.2f}s ({ratio:.2f}x) -> "
              f"{'REGRESSION' if over else 'ok'}")
        regressed |= over
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (32-leaf machines only)")
    parser.add_argument("--check", action="store_true",
                        help="fail on a tuned-slower-than-default result, "
                        "a missed expected win, or a blown warm floor")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_tuning.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    print("auto-tuned schedules (cold tune, warm lookup, tuned vs default):")
    entry = run_tuning(args.quick)
    scope = "quick" if args.quick else "full"
    path = args.output_dir / "BENCH_tuning.json"
    if args.check:
        return 1 if check_tuning(path, entry, scope) else 0

    doc = {
        "benchmark": "schedule auto-tuning cost and wins",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "cold_seconds = full tune (enumerate + vectorized pricing + "
            "DES-validated shortlist) into a fresh cache; warm_seconds = "
            "best of 5 decision-cache resolutions with the in-memory "
            "memo dropped; tuned can never be slower than default "
            "because the default plan is always in the validated "
            "shortlist"
        ),
        scope: entry,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
