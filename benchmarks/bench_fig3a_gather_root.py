"""Bench `fig3a`: Figure 3(a) — gather improvement T_s/T_f.

Paper series: improvement factor vs number of processors (2-10), one
series per problem size (100-1000 KB of uniformly distributed
integers), equal workloads, slow vs fast root.

Shape assertions (what "reproduced" means):
* the factor grows with p and exceeds 1 for p >= 3;
* the factor is roughly flat across problem sizes;
* at p = 2 the factor dips below 1 (the paper's counterintuitive
  inversion, Section 5.2).
"""

from repro.experiments import fig3a_gather_root
from repro.experiments.fig3_gather import PROBLEM_SIZES_KB, PROCESSOR_COUNTS


def test_fig3a_gather_root(report_benchmark):
    report = report_benchmark(fig3a_gather_root, PROBLEM_SIZES_KB, PROCESSOR_COUNTS)
    for label, series in report.series.items():
        assert series[2] < 1.0, f"{label}: expected the p=2 inversion"
        for p in PROCESSOR_COUNTS[1:]:
            assert series[p] > 1.05, f"{label}: fast root must win at p={p}"
        assert series[10] > series[3], f"{label}: improvement must grow with p"
    # Steady across problem sizes (same p, different size: within 20%).
    for p in PROCESSOR_COUNTS[1:]:
        values = [series[p] for series in report.series.values()]
        assert max(values) / min(values) < 1.2
