"""Bench `scaling`: heterogeneous application speedup curves.

Paper artifact by reference: the dissertation [20] the paper cites
evaluates applications over growing machine subsets; this bench
regenerates the analogous curves for the four bundled applications.

Shape assertions: speedup grows with p for every application once past
p = 2, stays below the heterogeneous capacity bound, and the
compute-heavy applications (histogram, jacobi) outscale the
communication-bound ones at p = 10.
"""

from repro.experiments import app_scaling


def test_app_scaling(report_benchmark):
    report = report_benchmark(app_scaling)
    for app, series in report.series.items():
        assert series[1] == 1.0, app
        assert series[10] > series[2], f"{app}: must scale beyond p=2"
        assert series[10] < 5.2, f"{app}: cannot beat the capacity bound"
    assert report.series["histogram"][10] > report.series["sample_sort"][10]
    assert report.series["jacobi"][10] > report.series["matvec"][10]
