"""Bench `bsp-vs-hbsp`: Section 6's claim, quantified.

Paper artifact: the conclusion — "Fundamental changes to the
algorithms are not necessary ... modifications consist of selecting
the root node and distributing the workload."  For every workload we
run the identical algorithm under BSP habits (slow root, equal shares)
and under the HBSP^k rules (fast root, proportional shares) and report
T_bsp/T_hbsp.

Shape assertions: every workload gains; the broadcast gains least; at
least half the workloads gain >= 1.4x.
"""

from repro.experiments import bsp_vs_hbsp


def test_bsp_vs_hbsp(report_benchmark):
    report = report_benchmark(bsp_vs_hbsp)
    factors = report.series["T_bsp/T_hbsp"]
    assert all(factor > 1.0 for factor in factors.values())
    assert factors["broadcast"] == min(factors.values())
    big_wins = [name for name, factor in factors.items() if factor >= 1.4]
    assert len(big_wins) >= len(factors) // 2
