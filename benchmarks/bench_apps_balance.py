"""Bench `apps-balance`: design-choice ablation on real applications.

Not a paper artifact — the paper's *future work* ("designing HBSP^k
applications that can take advantage of our efficient heterogeneous
communication algorithms"), quantified: how much is the balanced-
workload rule worth once a program has real local computation?

Contrast with Fig. 3(b)/4(b): for pure communication the rule is worth
little; for compute-carrying applications the superstep barrier waits
on the slowest machine, and proportional workloads buy back most of
that waiting.
"""

from repro.apps import run_histogram, run_matvec, run_sample_sort
from repro.cluster import ucf_testbed
from repro.collectives import WorkloadPolicy
from repro.util.tables import AsciiTable


def test_apps_balance(benchmark):
    topology = ucf_testbed(10)

    def sweep():
        rows = []
        for name, runner, arg in (
            ("sample_sort", run_sample_sort, 400_000),
            ("matvec", run_matvec, 1_600),
            ("histogram", run_histogram, 4_000_000),
        ):
            equal = runner(topology, arg, workload=WorkloadPolicy.EQUAL)
            balanced = runner(topology, arg, workload=WorkloadPolicy.BALANCED)
            rows.append((name, arg, equal.time, balanced.time, equal.time / balanced.time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = AsciiTable(
        "[apps-balance] balanced workloads on applications (T_u/T_b)",
        ["application", "n", "T_u (s)", "T_b (s)", "T_u/T_b"],
    )
    for row in rows:
        table.add_row(row)
    print()
    print(table.render())

    factors = {name: factor for name, _n, _tu, _tb, factor in rows}
    # Compute-carrying applications benefit clearly...
    assert factors["sample_sort"] > 1.25
    assert factors["matvec"] > 1.3
    assert factors["histogram"] > 1.4
    # ...unlike the pure broadcast of Fig. 4(b) (factor ~1).
