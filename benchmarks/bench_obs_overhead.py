"""Observability-overhead benchmark: ``python benchmarks/bench_obs_overhead.py``.

The obs hooks sit on the simulator's hottest paths (every sync, every
send, the executor's result merge).  This bench pins down what they
cost, writing ``BENCH_obs.json``:

* **off** (no active observation) — the default path every experiment
  takes.  The hooks are single attribute reads that find ``None``.
* **metrics** (``observe()``) — counters/histograms/ledgers fed from
  the compact per-run records.
* **spans** (``observe(spans=True)``) — full span timelines.  Recorded
  for scale, never gated: span tracing deliberately turns the DES
  trace on and converts every record.

The gate (< 3%): the metrics path is *structurally* the off path plus
one ``Observation.record_run`` per run — same simulations, same
records, plus the deterministic merge.  So the gated number is that
ingestion work timed directly against the off wall-clock, which stays
stable on noisy shared hosts where an end-to-end A/B of two ~equal
wall times flaps by ±10%.  The end-to-end metrics/spans timings are
recorded alongside for honesty, and all three paths must render
byte-identical reports.

``--quick`` trims repetitions for CI; ``--check`` exits non-zero when
the gated overhead exceeds the budget (wired into the bench job in
``.github/workflows/ci.yml`` via ``bench_runner.py --check``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Gated ceiling on the metrics-ingestion cost relative to the obs-off
#: wall-clock.  The disabled path runs a strict subset of the metrics
#: path, so bounding the ingestion delta bounds both.
OVERHEAD_BUDGET = 0.03

#: The measured workload: in-process experiment runs (the acceptance
#: target is "overhead on the experiment suite", not a microbench).
#: Quick mode keeps both experiments — a smaller workload makes the
#: 3% gate flappy on a noisy shared host — and only trims the reps.
FULL_EXPERIMENTS = ["fig3a", "fig4a"]
QUICK_EXPERIMENTS = FULL_EXPERIMENTS


def _best_of(fn, reps: int) -> tuple[float, object]:
    """Min-of-reps wall time: robust against scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_overhead(quick: bool, reps: int) -> dict:
    """Time the experiment subset off / metrics-on / spans-on."""
    from repro.experiments import run_experiment
    from repro.obs import Observation, observe

    experiments = QUICK_EXPERIMENTS if quick else FULL_EXPERIMENTS

    def off():
        return [run_experiment(e).render() for e in experiments]

    def metrics_on():
        with observe() as observation:
            reports = [run_experiment(e).render() for e in experiments]
        return reports, observation

    def spans_on():
        with observe(spans=True) as observation:
            reports = [run_experiment(e).render() for e in experiments]
        return reports, len(observation.tracer)

    off()  # untimed warm-up: imports, memoised inputs, content hashes

    off_wall, off_reports = _best_of(off, reps)
    metrics_wall, (metrics_reports, observation) = _best_of(metrics_on, reps)
    spans_wall, (spans_reports, span_count) = _best_of(spans_on, max(1, reps - 1))

    if metrics_reports != off_reports or spans_reports != off_reports:
        raise RuntimeError("observed runs rendered different reports")

    # The gated number: what the metrics path adds over the off path —
    # one record_run per observed run, replayed on the actual records.
    runs = [ledger.run for ledger in observation.ledgers]

    def ingest():
        fresh = Observation()
        for run in runs:
            fresh.record_run(run)

    # The ingest pass is ~2 orders of magnitude shorter than the off
    # pass, so a scheduler burst inflates its best-of far more easily:
    # give it many cheap reps to let the min converge.
    ingest_wall, _ = _best_of(ingest, max(12, 3 * reps))
    overhead = ingest_wall / off_wall

    entry = {
        "experiments": " ".join(experiments),
        "reps": reps,
        "runs_observed": len(runs),
        "off_seconds": round(off_wall, 4),
        "metrics_seconds": round(metrics_wall, 4),
        "spans_seconds": round(spans_wall, 4),
        "ingest_seconds": round(ingest_wall, 4),
        "metrics_overhead": round(overhead, 4),
        "metrics_over_off": round(metrics_wall / off_wall, 2),
        "spans_over_off": round(spans_wall / off_wall, 2),
        "spans_recorded": span_count,
        "overhead_budget": OVERHEAD_BUDGET,
        "reports_identical": True,
    }
    print(f"  off={off_wall * 1e3:.1f} ms  metrics={metrics_wall * 1e3:.1f} ms  "
          f"spans={spans_wall * 1e3:.1f} ms ({span_count} spans)\n"
          f"  gated ingestion: {ingest_wall * 1e3:.1f} ms over {len(runs)} runs "
          f"= {overhead * 100:+.1f}% of the off path "
          f"(budget {OVERHEAD_BUDGET * 100:.0f}%)")
    return entry


def check_overhead(entry: dict) -> bool:
    """True when the gated overhead regresses past the budget."""
    over = entry["metrics_overhead"] > OVERHEAD_BUDGET
    print(f"  obs overhead (metrics ingestion / off wall): "
          f"{entry['metrics_overhead'] * 100:+.1f}% "
          f"(budget {OVERHEAD_BUDGET * 100:.0f}%) -> "
          f"{'REGRESSION' if over else 'ok'}")
    return over


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (reduced subset, fewer repeats)")
    parser.add_argument("--check", action="store_true",
                        help="fail when the gated overhead exceeds the budget")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions (best-of; default 5, quick 3)")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_obs.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    reps = args.reps if args.reps is not None else (3 if args.quick else 5)

    print("observability overhead (off vs metrics vs spans):")
    entry = run_overhead(args.quick, reps)
    if args.check:
        return 1 if check_overhead(entry) else 0

    scope = "quick" if args.quick else "full"
    doc = {
        "benchmark": "repro.obs overhead on in-process experiment runs",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "off = no active observation (the default path); metrics = "
            "observe(); spans = observe(spans=True), which turns the DES "
            "trace on and is recorded unguarded; all three must render "
            "byte-identical reports"
        ),
        scope: entry,
    }
    path = args.output_dir / "BENCH_obs.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
