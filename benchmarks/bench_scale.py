"""Macro-event scale benchmark: ``python benchmarks/bench_scale.py``.

Times 10^3- and 10^4-leaf collectives on the generated big machines
(:mod:`repro.cluster.discover.generators`), macro-event fast path vs
the object-event path, writing ``BENCH_scale.json``:

* **10^3 leaves** — ``fat_tree(4, 16, 16)`` (sync-heavy: three levels,
  16-way racks) and ``multi_rack(8, 128)`` (send-heavy: the two-phase
  exchange is 128-wide per rack).  Both paths run; the results are
  asserted bit-identical — simulated time, per-pid values, and the
  per-superstep accounting marks — before any timing is reported.
* **10^4 leaves** — ``fat_tree(25, 25, 16)``.  Macro-event path only
  (the object path takes minutes there; the 10^3 scales already pin
  its equivalence), gated on completion within an absolute ceiling.

``--check`` gates three things: bit-identical macro/object results at
the dual-path scales, the macro speedup floor on the send-heavy 10^3
broadcast (:data:`MACRO_SPEEDUP_FLOOR`), and a gross macro wall-clock
regression vs the committed artifact (wired into ``bench_runner.py
--check``; cross-machine comparisons are refused by the runner).

``--quick`` shrinks every scale to CI-smoke size (128 leaves, no 10^4
run) and only gates equivalence plus a token speedup floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Committed floor on the macro-vs-object speedup of the send-heavy
#: 10^3-leaf broadcast (the tentpole's acceptance number).
MACRO_SPEEDUP_FLOOR = 10.0

#: Token floor for the reduced --quick scales (small clusters leave
#: little room between the paths; this only catches a dead fast path).
QUICK_SPEEDUP_FLOOR = 1.5

#: Absolute ceiling on the macro-only 10^4-leaf runs.
LARGE_LIMIT_SECONDS = 120.0

#: Regression gate on macro_seconds vs the committed artifact.  Wider
#: than bench_runner's 1.25x: these are multi-second simulations on a
#: shared host, so wall-clock spread on identical code is large; the
#: hard gates are equivalence and the speedup floor.
REGRESSION_LIMIT = 2.0

#: (label, generator family, generator kwargs, collective, n,
#:  both_paths, speedup_floor | None).
SCALES: tuple[tuple[str, str, dict, str, int, bool, float | None], ...] = (
    ("broadcast_1k_fat_tree", "fat_tree",
     {"pods": 4, "racks_per_pod": 16, "hosts_per_rack": 16},
     "broadcast", 20_000, True, None),
    ("broadcast_1k_multi_rack", "multi_rack",
     {"racks": 8, "hosts_per_rack": 128},
     "broadcast", 20_000, True, MACRO_SPEEDUP_FLOOR),
    ("gather_1k_multi_rack", "multi_rack",
     {"racks": 8, "hosts_per_rack": 128},
     "gather", 20_000, True, None),
    ("broadcast_10k_fat_tree", "fat_tree",
     {"pods": 25, "racks_per_pod": 25, "hosts_per_rack": 16},
     "broadcast", 50_000, False, None),
    ("gather_10k_fat_tree", "fat_tree",
     {"pods": 25, "racks_per_pod": 25, "hosts_per_rack": 16},
     "gather", 50_000, False, None),
)

QUICK_SCALES: tuple[tuple[str, str, dict, str, int, bool, float | None], ...] = (
    ("broadcast_quick_multi_rack", "multi_rack",
     {"racks": 4, "hosts_per_rack": 32},
     "broadcast", 5_000, True, QUICK_SPEEDUP_FLOOR),
    ("gather_quick_multi_rack", "multi_rack",
     {"racks": 4, "hosts_per_rack": 32},
     "gather", 5_000, True, None),
)


def _run_collective(family: str, gen_kwargs: dict, collective: str, n: int,
                    macro: bool | None):
    from repro.cluster.discover.generators import GENERATORS
    from repro.collectives.broadcast import run_broadcast
    from repro.collectives.gather import run_gather

    topology = GENERATORS[family](seed=0, **gen_kwargs)
    run = run_broadcast if collective == "broadcast" else run_gather
    return run(topology, n, seed=1, macro=macro)


def _bench_scale(label: str, family: str, gen_kwargs: dict, collective: str,
                 n: int, both_paths: bool, floor: float | None,
                 repeats: int) -> dict:
    entry: dict = {"label": label, "collective": collective, "n": n,
                   "generator": f"{family}({gen_kwargs})"}

    # Untimed warmup: the first run pays one-off costs (imports, the
    # make_items cache) that would otherwise land on the macro timing.
    _run_collective(family, gen_kwargs, collective, n, None)
    macro_s = []
    outcome = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = _run_collective(family, gen_kwargs, collective, n, None)
        macro_s.append(time.perf_counter() - start)
    assert outcome is not None
    if outcome.runtime.macro is None:
        raise RuntimeError(f"{label}: macro path did not engage")
    entry["leaves"] = outcome.runtime.nprocs
    entry["simulated_time"] = outcome.time
    entry["macro_seconds"] = round(min(macro_s), 3)

    if both_paths:
        start = time.perf_counter()
        obj = _run_collective(family, gen_kwargs, collective, n, False)
        entry["object_seconds"] = round(time.perf_counter() - start, 3)
        identical = (
            obj.runtime.macro is None
            and outcome.time == obj.time
            and outcome.values == obj.values
            and outcome.supersteps == obj.supersteps
            and outcome.runtime.superstep_marks()
            == obj.runtime.superstep_marks()
        )
        entry["bit_identical"] = identical
        entry["speedup"] = round(entry["object_seconds"]
                                 / entry["macro_seconds"], 1)
        if floor is not None:
            entry["speedup_floor"] = floor
    print(f"  {label:26s} p={entry['leaves']:6d} "
          f"macro {entry['macro_seconds']:7.2f}s"
          + (f"  object {entry['object_seconds']:7.2f}s "
             f"({entry['speedup']:.1f}x, identical="
             f"{entry['bit_identical']})" if both_paths else "  (macro only)"))
    return entry


def run_scale(quick: bool) -> dict:
    """Time each scale; dual-path scales also assert bit-equivalence."""
    scales = QUICK_SCALES if quick else SCALES
    repeats = 1 if quick else 2
    entries = [_bench_scale(*scale, repeats) for scale in scales]
    return {
        "macro_speedup_floor": (
            QUICK_SPEEDUP_FLOOR if quick else MACRO_SPEEDUP_FLOOR
        ),
        "large_limit_seconds": LARGE_LIMIT_SECONDS,
        "scales": {entry["label"]: entry for entry in entries},
    }


def check_scale(
    artifact: Path, entry: dict, scope: str, compare: bool = True,
) -> bool:
    """True when the macro engine regresses: divergent results, a
    blown speedup floor or 10^4 ceiling, or a gross slowdown.

    ``compare=False`` (the runner detected a machine mismatch) keeps
    the hard gates but skips the committed-timing comparison.
    """
    regressed = False
    for label, bench in entry["scales"].items():
        if "bit_identical" in bench and not bench["bit_identical"]:
            print(f"  scale {label}: macro/object results DIVERGE "
                  "-> REGRESSION")
            regressed = True
        floor = bench.get("speedup_floor")
        if floor is not None:
            ok = bench["speedup"] >= floor
            print(f"  scale {label}: {bench['speedup']:.1f}x macro speedup "
                  f"(floor {floor:.1f}x) -> {'ok' if ok else 'REGRESSION'}")
            regressed |= not ok
        if bench["leaves"] >= 10_000 and (
            bench["macro_seconds"] > LARGE_LIMIT_SECONDS
        ):
            print(f"  scale {label}: {bench['macro_seconds']:.2f}s over the "
                  f"{LARGE_LIMIT_SECONDS:.0f}s ceiling -> REGRESSION")
            regressed = True
    if not compare:
        print(f"  {artifact.name}: timing comparison refused "
              "(different machine); hard gates above still apply")
        return regressed
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the timing gate")
        return regressed
    committed = json.loads(artifact.read_text()).get(scope, {}).get("scales", {})
    for label, bench in entry["scales"].items():
        baseline = committed.get(label, {}).get("macro_seconds")
        if not baseline:
            print(f"  committed {artifact.name} has no {scope} scale {label}; "
                  "skipping its timing gate")
            continue
        ratio = bench["macro_seconds"] / baseline
        over = ratio > REGRESSION_LIMIT
        print(f"  scale {label}: {bench['macro_seconds']:.2f}s vs committed "
              f"{baseline:.2f}s ({ratio:.2f}x) -> "
              f"{'REGRESSION' if over else 'ok'}")
        regressed |= over
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (128 leaves, no 10^4 scale)")
    parser.add_argument("--check", action="store_true",
                        help="fail on divergent macro results, a blown "
                        "speedup floor, or a gross timing regression")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_scale.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    print("macro-event scale (10^3/10^4-leaf collectives):")
    entry = run_scale(args.quick)
    scope = "quick" if args.quick else "full"
    path = args.output_dir / "BENCH_scale.json"
    if args.check:
        return 1 if check_scale(path, entry, scope) else 0

    doc = {
        "benchmark": "macro-event vs object-event collective wall-clock",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "1k dual-path scales assert bit-identical simulated time, "
            "values, and superstep marks before timing; 10k scales run "
            "the macro path only; macro_seconds is the best of the "
            "repeats, object_seconds a single run"
        ),
        scope: entry,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
