"""Bench `table1`: regenerate the Table-1 parameter inventory.

Paper artifact: Table 1 (the HBSP^k parameter definitions), here
instantiated with the calibrated values of the two machines the paper
discusses (the ten-workstation testbed and the Figure-1 HBSP^2
cluster).
"""

import pytest

from repro.experiments import table1_parameters


def test_table1_parameters(report_benchmark):
    report = report_benchmark(table1_parameters)
    # The fastest machine's r is exactly 1 (Section 3.3's normalisation)
    r_values = report.series["r_0j (testbed)"]
    assert min(r_values.values()) == pytest.approx(1.0)
    # and c is a unit partition.
    assert sum(report.series["c_0j (testbed)"].values()) == pytest.approx(1.0)
