"""Hierarchy-discovery benchmark: ``python benchmarks/bench_discover.py``.

Times the full big-machine pipeline — parametric generation, probe
matrix synthesis, hierarchy inference, topology reconstruction — at
10^3 and 10^4 leaves, writing ``BENCH_discover.json``:

* **1024 leaves** (``fat_tree(4, 16, 16)``) exercises the scipy
  linkage backend over the full float64 matrix with gap columns — the
  calibration-grade path.
* **10000 leaves** (``fat_tree(25, 25, 16)``) exercises the banded
  connected-components backend over a latency-only float32 matrix —
  the scalable path (a 10^8-element matrix; linkage's condensed-form
  O(p^2 log p) is out of reach there).

Both runs assert **exact structural recovery** against the generating
truth; a timing with the wrong answer is worthless.  ``--check`` gates
three things: exact recovery at every scale, the 10^4-leaf acceptance
ceiling (:data:`LARGE_LIMIT_SECONDS`, the ISSUE's "builds + discovers
under a minute on CI"), and a gross total-seconds regression against
the committed artifact (wired into ``bench_runner.py --check``).

``--quick`` drops the 10^4 scale (CI smoke stays seconds); the
acceptance ceiling is therefore only exercised by full runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Acceptance ceiling on the 10^4-leaf generate+synthesize+discover
#: wall-clock (the ISSUE's CI budget).
LARGE_LIMIT_SECONDS = 60.0

#: Regression gate on total_seconds vs the committed artifact.  Wider
#: than bench_runner's 1.25x: the 10^4-leaf run streams ~1 GB of
#: matrix through a shared host, so its wall-clock is far noisier than
#: the in-cache microbenches (observed spread on identical code is
#: several x).  The *hard* gates are exact recovery and the absolute
#: :data:`LARGE_LIMIT_SECONDS` ceiling; this one only catches
#: order-of-magnitude algorithmic regressions.
REGRESSION_LIMIT = 3.0

#: (label, fat_tree kwargs, synthesize kwargs, discover method).
SCALES: tuple[tuple[str, dict, dict, str], ...] = (
    (
        "1k",
        {"pods": 4, "racks_per_pod": 16, "hosts_per_rack": 16},
        {},
        "linkage",
    ),
    (
        "10k",
        {"pods": 25, "racks_per_pod": 25, "hosts_per_rack": 16},
        {"dtype": "float32", "include_gap": False},
        "bands",
    ),
)


def _bench_scale(label: str, build_kwargs: dict, synth_kwargs: dict,
                 method: str) -> dict:
    import numpy as np

    from repro.cluster.discover import (
        discover,
        exact_recovery,
        fat_tree,
        synthesize,
        topology_partitions,
    )

    kwargs = dict(synth_kwargs)
    if "dtype" in kwargs:
        kwargs["dtype"] = getattr(np, kwargs["dtype"])
    start = time.perf_counter()
    topology = fat_tree(seed=0, **build_kwargs)
    built = time.perf_counter()
    matrix = synthesize(topology, **kwargs)
    synthesized = time.perf_counter()
    result = discover(matrix, method=method)
    done = time.perf_counter()
    exact = exact_recovery(topology_partitions(topology), result.partitions)
    entry = {
        "label": label,
        "leaves": matrix.p,
        "method": result.method,
        "levels": result.k,
        "exact_recovery": exact,
        "build_seconds": round(built - start, 3),
        "synthesize_seconds": round(synthesized - built, 3),
        "discover_seconds": round(done - synthesized, 3),
        "total_seconds": round(done - start, 3),
    }
    print(f"  {label:4s} p={entry['leaves']:6d} [{entry['method']}] "
          f"build {entry['build_seconds']:6.2f}s  "
          f"synth {entry['synthesize_seconds']:6.2f}s  "
          f"discover {entry['discover_seconds']:6.2f}s  "
          f"total {entry['total_seconds']:6.2f}s  "
          f"exact={entry['exact_recovery']}")
    return entry


def run_discover(quick: bool) -> dict:
    """Time generate -> synthesize -> discover per scale; assert recovery."""
    scales = SCALES[:1] if quick else SCALES
    entries = [_bench_scale(*scale) for scale in scales]
    return {
        "large_limit_seconds": LARGE_LIMIT_SECONDS,
        "scales": {entry["label"]: entry for entry in entries},
    }


def check_discover(
    artifact: Path, entry: dict, scope: str, compare: bool = True,
) -> bool:
    """True when discovery regresses: wrong answer, over budget, or slow.

    ``compare=False`` (the runner detected a machine mismatch) keeps
    the hard gates but skips the committed-timing comparison.
    """
    regressed = False
    for label, bench in entry["scales"].items():
        if not bench["exact_recovery"]:
            print(f"  discover {label}: exact recovery FAILED -> REGRESSION")
            regressed = True
        if bench["leaves"] >= 10_000 and (
            bench["total_seconds"] > LARGE_LIMIT_SECONDS
        ):
            print(f"  discover {label}: {bench['total_seconds']:.2f}s over the "
                  f"{LARGE_LIMIT_SECONDS:.0f}s acceptance ceiling -> REGRESSION")
            regressed = True
    if not compare:
        print(f"  {artifact.name}: timing comparison refused "
              "(different machine); hard gates above still apply")
        return regressed
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the timing gate")
        return regressed
    committed = json.loads(artifact.read_text()).get(scope, {}).get("scales", {})
    for label, bench in entry["scales"].items():
        baseline = committed.get(label, {}).get("total_seconds")
        if not baseline:
            print(f"  committed {artifact.name} has no {scope} scale {label}; "
                  "skipping its timing gate")
            continue
        ratio = bench["total_seconds"] / baseline
        over = ratio > REGRESSION_LIMIT
        print(f"  discover {label}: {bench['total_seconds']:.2f}s vs committed "
              f"{baseline:.2f}s ({ratio:.2f}x) -> "
              f"{'REGRESSION' if over else 'ok'}")
        regressed |= over
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (drops the 10^4-leaf scale)")
    parser.add_argument("--check", action="store_true",
                        help="fail on wrong recovery, a blown acceptance "
                        "ceiling, or a >3x timing regression")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_discover.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    print("hierarchy discovery (generate -> synthesize -> discover):")
    entry = run_discover(args.quick)
    scope = "quick" if args.quick else "full"
    path = args.output_dir / "BENCH_discover.json"
    if args.check:
        return 1 if check_discover(path, entry, scope) else 0

    doc = {
        "benchmark": "repro.cluster.discover round-trip wall-clock",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "1k = fat_tree(4,16,16), float64 matrix with gap columns, "
            "scipy linkage; 10k = fat_tree(25,25,16), latency-only "
            "float32 matrix, banded components; both assert exact "
            "structural recovery against the generating truth"
        ),
        scope: entry,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
