"""Dynamics benchmark: ``python benchmarks/bench_dynamics.py``.

Measures the claims ``repro.dynamics`` + ``repro.calib`` make, writing
``BENCH_dynamics.json``:

* **Churn overhead** — serving a session under machine churn must cost
  under :data:`CHURN_OVERHEAD_LIMIT` extra wall-clock over the static
  session.  Both sides share prewarmed cost models (the static table
  for the static run, the epoch-expanded table for the churned run) so
  the ratio isolates the dynamics machinery — epoch tracking, interrupt
  scanning, re-dispatch — from kernel pricing.
* **Calibration wall-time** — ``fit_params`` on a realistic replicated
  campaign (the acceptance-test operating point: three sizes, 40 noisy
  replicas, ~1000 step equations) must finish under
  :data:`FIT_CEILING_SECONDS`.
* **Deterministic gates** — an empty plan's session is bit-identical to
  a static one, the noise-free fit round-trips the analytic parameters
  exactly, and the churned session conserves requests
  (``completed + shed + degraded_shed == offered``).  These hold on any
  host and are checked even when timing comparisons are refused.

``--quick`` shrinks the session and the campaign (CI smoke) and widens
the overhead limit — sub-second sessions leave fixed costs nothing to
amortise against — but keeps every deterministic gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Churned-session wall-clock overhead vs the static session (both on
#: prewarmed cost models).
CHURN_OVERHEAD_LIMIT = 0.10
QUICK_CHURN_OVERHEAD_LIMIT = 0.75

#: Wall-clock ceiling for one ``fit_params`` call at the acceptance
#: operating point (3 sizes x 8 roots x 40 replicas).
FIT_CEILING_SECONDS = 10.0

#: Churn rate (leave events per second) for the overhead measurement.
CHURN_RATE = 0.25

#: Wall-clock regression gate vs the committed artifact (wide: the
#: deterministic gates are what protect behaviour).
REGRESSION_LIMIT = 2.0

_SIGMA = 0.1
_SIZES = (16384, 65536, 262144)


def _config(quick: bool):
    from repro.serve import default_config

    return default_config(
        seed=0, duration=20.0 if quick else 1200.0, rate=8.0 if quick else 16.0
    )


def _plan(config):
    from repro.dynamics import churn_plan
    from repro.serve.service import resolve_cluster

    machines = [m.name for m in resolve_cluster(config.cluster).machines]
    # Short outages keep completed work comparable to the static
    # session (~6% machine absence), so the timing ratio measures the
    # dynamics machinery, not shed requests.
    return churn_plan(
        machines,
        rate=CHURN_RATE,
        duration=config.duration,
        seed=0,
        outage_mean=2.0,
    )


def _perturbed_campaign(topology, replicas: int):
    """The acceptance-test campaign: replicated noisy measurements."""
    import dataclasses

    from repro.calib import calibration_campaign
    from repro.util.rng import RngStream

    runs = calibration_campaign(topology, sizes=_SIZES)
    out = []
    stream = RngStream(0, "bench", "noise")
    for rep in range(replicas):
        for i, run in enumerate(runs):
            s = stream.child(str(rep), str(i))
            predicted = tuple(
                (label, level, w, gh * e, L * e)
                for (label, level, w, gh, L), e in (
                    (step, s.lognormal_factor(_SIGMA))
                    for step in run.predicted
                )
            )
            out.append(
                dataclasses.replace(
                    run, predicted=predicted, name=f"{run.name}#r{rep}"
                )
            )
    return out


def run_dynamics(quick: bool) -> dict:
    """Time churned vs static serving and the calibration fit."""
    from repro.calib import calibration_campaign, fit_params
    from repro.cluster import two_lans
    from repro.dynamics import DynamicPlan
    from repro.model import calibrate
    from repro.serve import StageCostModel, run_service, serve_slices

    config = _config(quick)
    plan = _plan(config)

    static_slices, _ = serve_slices(config)
    static_model = StageCostModel(config, static_slices)
    expanded_slices, _ = serve_slices(config, plan)
    dynamic_model = StageCostModel(config, expanded_slices)

    # Interleaved pairs, median of the per-pair ratios: each ratio
    # compares two runs under the same instantaneous host load, so the
    # median tracks the true machinery overhead even on noisy shared
    # hosts where best-of timings from different moments do not.  One
    # untimed warmup pair first — the first dynamic session pays
    # one-time import and code-warmup costs that are not churn
    # machinery.
    run_service(config, costs=static_model)
    run_service(config, dynamics=plan, costs=dynamic_model)
    repeats = 3 if quick else 11
    ratios = []
    static_seconds = float("inf")
    dynamic_seconds = float("inf")
    static_report = dynamic_report = None
    for _ in range(repeats):
        start = time.perf_counter()
        static_report = run_service(config, costs=static_model)
        static_lap = time.perf_counter() - start
        start = time.perf_counter()
        dynamic_report = run_service(
            config, dynamics=plan, costs=dynamic_model
        )
        dynamic_lap = time.perf_counter() - start
        ratios.append(dynamic_lap / static_lap)
        static_seconds = min(static_seconds, static_lap)
        dynamic_seconds = min(dynamic_seconds, dynamic_lap)
    overhead = statistics.median(ratios) - 1.0
    print(f"  churned session {dynamic_seconds:.3f}s vs static "
          f"{static_seconds:.3f}s ({100 * overhead:+.1f}% churn overhead, "
          f"{dynamic_report.epochs} epochs, "
          f"{dynamic_report.redispatched} re-dispatches, "
          f"{dynamic_report.completed}/{static_report.completed} completed)")

    empty_identical = (
        run_service(config, dynamics=DynamicPlan.empty(), costs=static_model)
        == static_report
    )
    conserves = (
        dynamic_report.completed
        + dynamic_report.shed
        + dynamic_report.degraded_shed
        == dynamic_report.offered
    )
    print(f"  empty plan bit-identical: {empty_identical}; "
          f"churn conserves requests: {conserves}")

    topology = two_lans()
    campaign = _perturbed_campaign(topology, replicas=10 if quick else 40)
    start = time.perf_counter()
    fitted = fit_params(campaign, topology, source="predicted")
    fit_seconds = time.perf_counter() - start
    priors = calibrate(topology)
    clean = fit_params(
        calibration_campaign(topology, sizes=_SIZES),
        topology,
        source="predicted",
    )
    fit_exact = abs(clean.g - priors.g) / priors.g <= 1e-9
    print(f"  fit: {len(campaign)} runs, {fitted.equations} equations in "
          f"{fit_seconds:.3f}s (ceiling {FIT_CEILING_SECONDS:.0f}s); "
          f"noise-free round-trip exact: {fit_exact}")

    return {
        "churn_rate": CHURN_RATE,
        "churn_overhead_limit": (
            QUICK_CHURN_OVERHEAD_LIMIT if quick else CHURN_OVERHEAD_LIMIT
        ),
        "fit_ceiling_seconds": FIT_CEILING_SECONDS,
        "static_seconds": round(static_seconds, 4),
        "dynamic_seconds": round(dynamic_seconds, 4),
        "churn_overhead": round(overhead, 4),
        "epochs": dynamic_report.epochs,
        "redispatched": dynamic_report.redispatched,
        "degraded": dynamic_report.degraded,
        "fit_runs": len(campaign),
        "fit_equations": fitted.equations,
        "fit_seconds": round(fit_seconds, 4),
        "empty_plan_identical": empty_identical,
        "churn_conserves_requests": conserves,
        "fit_round_trip_exact": fit_exact,
    }


def check_dynamics(
    artifact: Path, entry: dict, scope: str, compare: bool = True,
) -> bool:
    """True when dynamics regresses: churn overhead past the limit, a
    blown fit ceiling, a broken deterministic gate, or a gross
    wall-clock slowdown vs the committed artifact.

    ``compare=False`` (machine mismatch) keeps the deterministic gates
    and the two ratio/ceiling gates (host-local timings) and skips only
    the artifact comparison.
    """
    regressed = False

    limit = entry["churn_overhead_limit"]
    lean = entry["churn_overhead"] < limit
    print(f"  churn overhead: {100 * entry['churn_overhead']:+.1f}% vs "
          f"static (limit {100 * limit:.0f}%) -> "
          f"{'ok' if lean else 'REGRESSION'}")
    regressed |= not lean

    fast = entry["fit_seconds"] <= entry["fit_ceiling_seconds"]
    print(f"  calibration fit: {entry['fit_seconds']:.3f}s over "
          f"{entry['fit_runs']} runs (ceiling "
          f"{entry['fit_ceiling_seconds']:.0f}s) -> "
          f"{'ok' if fast else 'REGRESSION'}")
    regressed |= not fast

    for gate in ("empty_plan_identical", "churn_conserves_requests",
                 "fit_round_trip_exact"):
        ok = bool(entry[gate])
        print(f"  {gate.replace('_', ' ')}: -> "
              f"{'ok' if ok else 'REGRESSION'}")
        regressed |= not ok

    if not compare:
        print(f"  {artifact.name}: timing comparison refused "
              "(different machine); gates above still apply")
        return regressed
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the timing gate")
        return regressed
    baseline = (
        json.loads(artifact.read_text()).get(scope, {}).get("dynamic_seconds")
    )
    if not baseline:
        print(f"  committed {artifact.name} has no {scope}.dynamic_seconds; "
              "skipping its timing gate")
        return regressed
    ratio = entry["dynamic_seconds"] / baseline
    over = ratio > REGRESSION_LIMIT
    print(f"  churned session: {entry['dynamic_seconds']:.3f}s vs committed "
          f"{baseline:.3f}s ({ratio:.2f}x) -> "
          f"{'REGRESSION' if over else 'ok'}")
    regressed |= over
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (short session, fewer replicas)")
    parser.add_argument("--check", action="store_true",
                        help="fail on blown churn overhead, fit ceiling, "
                        "or a broken deterministic gate")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_dynamics.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    print("dynamic clusters (churn overhead, calibration fit):")
    entry = run_dynamics(args.quick)
    scope = "quick" if args.quick else "full"
    path = args.output_dir / "BENCH_dynamics.json"
    if args.check:
        return 1 if check_dynamics(path, entry, scope) else 0

    doc = {
        "benchmark": "dynamic clusters: churn overhead and calibration fit",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "static/dynamic sessions share prewarmed cost models so "
            "churn_overhead isolates the dynamics machinery; fit_seconds "
            "times one fit_params call at the acceptance operating "
            "point; the three boolean gates are deterministic on any "
            "host"
        ),
        scope: entry,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
