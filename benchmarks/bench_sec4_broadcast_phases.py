"""Bench `sec4-bcast-phases`: the Section 4.4 phase analysis.

Paper artifact: the analytic comparison of the one-phase and two-phase
broadcast on HBSP^1 machines (``g·n·m + L`` vs ``g·n(1+r_s) + 2L``) and
the HBSP^2 super²-step regime split (``r_{1,s}`` vs ``m_{2,0}``),
validated against simulation.

Shape assertions:
* two-phase wins for p past a small threshold and keeps winning more;
* the crossover arrives later for larger r_s;
* the analytic HBSP^2 table shows one-phase winning in the
  ``r_{1,s} > m_{2,0}`` regime and two-phase winning for wide fan-out.
"""

from repro.experiments import sec4_broadcast_phases


def test_sec4_broadcast_phases(report_benchmark):
    report = report_benchmark(sec4_broadcast_phases)
    mild = report.series["sim r_s=1.25"]
    mid = report.series["sim r_s=4"]
    harsh = report.series["sim r_s=12"]
    # Two-phase wins from small p under mild heterogeneity...
    assert mild[3] > 1.0
    assert mild[10] > 2.5
    # ...the crossover arrives later as r_s grows...
    assert mild[4] > mid[4] > harsh[4]
    # ...but two-phase always wins eventually.
    assert harsh[10] > 1.0
    # Regime table is present and shows both outcomes.
    assert "r_1s > m" in report.extra
    assert "r_1s <= m" in report.extra
