"""Substrate performance benchmarks (not a paper artifact).

Real pytest-benchmark micro-benchmarks of the layers the reproduction
is built on: event throughput of the DES engine, message throughput of
the PVM layer, and wall-clock cost of one full collective simulation.
These guard against performance regressions that would make the
full-sweep experiment benches unbearably slow.
"""

import numpy as np

from repro.cluster import ucf_testbed
from repro.collectives import run_gather
from repro.pvm import VirtualMachine
from repro.sim import Engine


def test_engine_event_throughput(benchmark):
    """Pure event-queue throughput: 10k timers."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.timeout(i * 1e-6)
        engine.run()
        return engine.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_engine_process_switching(benchmark):
    """Generator-process context switches: 100 processes x 50 yields."""

    def run():
        engine = Engine()

        def worker():
            for _ in range(50):
                yield engine.timeout(1e-6)

        for _ in range(100):
            engine.process(worker())
        engine.run()
        return engine.events_processed

    assert benchmark(run) > 5000


def test_pvm_message_throughput(benchmark):
    """PVM send/recv round: 200 messages through one receiver."""

    topology = ucf_testbed(4)

    def run():
        vm = VirtualMachine(topology)

        def sender(task, dst, count):
            for i in range(count):
                yield from task.send(dst, np.zeros(64, dtype=np.int32), tag=i)

        def receiver(task, count):
            for _ in range(count):
                yield from task.recv()
            return task.received_messages

        recv_task = vm.spawn(receiver, 0, 200)
        for host in (1, 2, 3):
            vm.spawn(sender, host, recv_task.tid, 67 if host == 1 else 66 + (host == 2))
        vm.run()
        return recv_task.received_messages

    # 67 + 67 + 66 = 200
    assert benchmark(run) == 200


def test_full_gather_simulation(benchmark):
    """One complete gather simulation on the 10-machine testbed."""

    topology = ucf_testbed(10)

    def run():
        return run_gather(topology, 25_600).time

    time = benchmark(run)
    assert time > 0
