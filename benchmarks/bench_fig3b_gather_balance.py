"""Bench `fig3b`: Figure 3(b) — gather improvement T_u/T_b.

Paper series: improvement of BYTEmark-balanced workloads over equal
workloads, fast root, vs number of processors, one series per problem
size.

Shape assertions:
* a clear benefit at p = 2 (the fast root keeps most items local);
* the benefit shrinks toward ~1 as p grows ("virtually no benefit"),
  eroded by the noisy c_j estimates the paper blames.
"""

from repro.experiments import fig3b_gather_balance
from repro.experiments.fig3_gather import PROBLEM_SIZES_KB, PROCESSOR_COUNTS


def test_fig3b_gather_balance(report_benchmark):
    report = report_benchmark(
        fig3b_gather_balance, PROBLEM_SIZES_KB, PROCESSOR_COUNTS
    )
    for label, series in report.series.items():
        assert series[2] > 1.5, f"{label}: balancing must pay off at p=2"
        assert series[10] < 1.35, f"{label}: near-1 at large p"
        assert series[2] > series[6], f"{label}: benefit must decay with p"
