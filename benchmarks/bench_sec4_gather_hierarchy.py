"""Bench `sec4-gather-hierarchy`: Sections 4.2-4.3 analysis.

Paper artifacts:
* §4.3 — "the size of the problem must outweigh the cost of performing
  the extra level of communication and synchronization": the HBSP^2
  gather's overhead relative to a flat HBSP^1 gather of the same
  machines amortises as n grows;
* §4.2 — "If r_{0,j} c_{0,j} > 1, M_{0,j} has a problem size that is
  too large.  Its communication time will dominate": an oversized share
  on the slowest machine dominates the h-relation.
"""

from repro.experiments import sec4_gather_hierarchy


def test_sec4_gather_hierarchy(report_benchmark):
    report = report_benchmark(sec4_gather_hierarchy)
    hier = report.series["hier/flat"]
    sizes = sorted(hier)
    # Monotone amortisation of the hierarchy penalty.
    for small, large in zip(sizes, sizes[1:]):
        assert hier[small] >= hier[large], "penalty must amortise with n"
    assert hier[sizes[0]] > 2 * hier[sizes[-1]]
    # The oversized-share pathology hurts and grows with n.
    oversized = report.series["oversized/balanced"]
    assert all(factor > 1.0 for factor in oversized.values())
    assert oversized[sizes[-1]] > 1.4
