"""Serving-layer benchmark: ``python benchmarks/bench_serve.py``.

Measures the three claims ``repro.serve`` makes, writing
``BENCH_serve.json``:

* **Tail latency under reference load** — one session at the reference
  offered rate (well below the knee) must keep its *simulated* p99
  under :data:`P99_CEILING_SECONDS`.  Simulated time is deterministic,
  so this gate holds on any host.
* **Goodput monotone to the knee** — sweeping offered load, goodput
  must be non-decreasing up to its peak (the knee); open-loop serving
  that loses goodput *before* saturating means admission control or
  placement regressed.
* **Service overhead** — a cold serving session is the kernel-cost
  prewarm (raw DES work) plus the service loop (arrivals, queueing,
  dispatch events).  The loop must stay under
  :data:`OVERHEAD_LIMIT` of the raw ``evaluate()`` of the same job
  universe: the serving layer orchestrates simulations, it must not
  become one.

``--quick`` runs the small built-in demo workload (CI smoke) with a
relaxed overhead limit — tiny universes leave fixed per-session costs
nothing to amortise against — but keeps all three gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Simulated p99 ceiling at the reference offered rate (full scope: the
#: calibrated experiment workload at 8 req/s measures ~0.29 s).
P99_CEILING_SECONDS = 0.6

#: Relaxed ceiling for ``--quick`` (the demo workload's kernels cost
#: ~6 ms, so even heavy queueing stays far below this).
QUICK_P99_CEILING_SECONDS = 0.5

#: Reference offered rate (req/s) the p99 gate measures at.
REFERENCE_RATE = 8.0

#: Service-loop wall-clock overhead vs raw evaluate() of the same job
#: universe.
OVERHEAD_LIMIT = 0.05
QUICK_OVERHEAD_LIMIT = 0.50

#: Wall-clock regression gate vs the committed artifact (wide, like
#: bench_tuning: sub-second sessions on shared hosts are noisy; the
#: hard gates above are what protect behaviour).
REGRESSION_LIMIT = 2.0

#: Offered-load sweep (req/s) for the goodput-monotone gate.
RATES = (2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0)
QUICK_RATES = (2.0, 8.0, 32.0)


def _config(rate: float, quick: bool):
    if quick:
        from repro.serve import default_config

        return default_config(seed=0, duration=20.0, rate=rate)
    from repro.experiments.serving import serving_config

    return serving_config(rate, seed=0)


def _time_session(rate: float, quick: bool, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` cold-session wall-clock and the last report."""
    from repro.serve import run_service

    best = float("inf")
    report = None
    for _ in range(repeats):
        config = _config(rate, quick)
        start = time.perf_counter()
        report = run_service(config)
        best = min(best, time.perf_counter() - start)
    return best, report


def _time_raw_universe(rate: float, quick: bool, repeats: int) -> float:
    """Best-of-``repeats`` raw evaluate() of the same job universe."""
    from repro.perf import evaluate
    from repro.serve import StageCostModel, carve_slices
    from repro.serve.service import resolve_cluster

    best = float("inf")
    for _ in range(repeats):
        config = _config(rate, quick)
        slices = carve_slices(
            resolve_cluster(config.cluster), config.policy.placement
        )
        jobs = StageCostModel(config, slices).jobs()
        start = time.perf_counter()
        evaluate(jobs)
        best = min(best, time.perf_counter() - start)
    return best


def run_serve(quick: bool) -> dict:
    """Sweep offered load, time the reference session vs raw DES."""
    from repro.serve import run_service

    rates = QUICK_RATES if quick else RATES
    curve = {}
    for rate in rates:
        report = run_service(_config(rate, quick))
        curve[str(rate)] = {
            "goodput": report.goodput,
            "p50": report.latency_p50,
            "p99": report.latency_p99,
            "shed_fraction": round(report.shed_fraction, 4),
        }
        print(f"  rate {rate:6.1f} req/s -> goodput {report.goodput:7.3f}  "
              f"p99 {report.latency_p99 * 1e3:8.1f} ms  "
              f"shed {100 * report.shed_fraction:5.1f}%")

    repeats = 1 if quick else 3
    session_seconds, reference = _time_session(REFERENCE_RATE, quick, repeats)
    raw_seconds = _time_raw_universe(REFERENCE_RATE, quick, repeats)
    overhead = session_seconds / raw_seconds - 1.0
    print(f"  reference rate {REFERENCE_RATE:g}: session "
          f"{session_seconds:.3f}s vs raw universe {raw_seconds:.3f}s "
          f"({100 * overhead:+.1f}% service overhead)")
    return {
        "reference_rate": REFERENCE_RATE,
        "p99_ceiling_seconds": (
            QUICK_P99_CEILING_SECONDS if quick else P99_CEILING_SECONDS
        ),
        "overhead_limit": QUICK_OVERHEAD_LIMIT if quick else OVERHEAD_LIMIT,
        "reference_p99": reference.latency_p99,
        "reference_goodput": reference.goodput,
        "session_seconds": round(session_seconds, 4),
        "raw_universe_seconds": round(raw_seconds, 4),
        "service_overhead": round(overhead, 4),
        "curve": curve,
    }


def check_serve(
    artifact: Path, entry: dict, scope: str, compare: bool = True,
) -> bool:
    """True when serving regresses: a blown p99 ceiling, goodput that
    dips before the knee, service overhead past the limit, or a gross
    session-wall-clock slowdown vs the committed artifact.

    ``compare=False`` (machine mismatch) keeps the deterministic gates
    — simulated p99 and goodput shape don't depend on the host — and
    skips the wall-clock comparison (overhead included: it is a ratio
    of two timings on *this* host, so it always applies).
    """
    regressed = False

    ceiling = entry["p99_ceiling_seconds"]
    p99_ok = entry["reference_p99"] <= ceiling
    print(f"  serve reference p99: {entry['reference_p99']:.3f}s "
          f"(ceiling {ceiling:.2f}s at {entry['reference_rate']:g} req/s) -> "
          f"{'ok' if p99_ok else 'REGRESSION'}")
    regressed |= not p99_ok

    rates = sorted(float(rate) for rate in entry["curve"])
    goodputs = [entry["curve"][str(rate)]["goodput"] for rate in rates]
    knee = goodputs.index(max(goodputs))
    monotone = all(
        goodputs[i] <= goodputs[i + 1] for i in range(knee)
    )
    print(f"  serve goodput knee at {rates[knee]:g} req/s "
          f"({goodputs[knee]:.2f} req/s); monotone up to it -> "
          f"{'ok' if monotone else 'REGRESSION (goodput dips before knee)'}")
    regressed |= not monotone

    limit = entry["overhead_limit"]
    lean = entry["service_overhead"] < limit
    print(f"  serve overhead: {100 * entry['service_overhead']:+.1f}% vs raw "
          f"DES (limit {100 * limit:.0f}%) -> "
          f"{'ok' if lean else 'REGRESSION'}")
    regressed |= not lean

    if not compare:
        print(f"  {artifact.name}: timing comparison refused "
              "(different machine); deterministic gates above still apply")
        return regressed
    if not artifact.exists():
        print(f"  no committed {artifact.name}; skipping the timing gate")
        return regressed
    baseline = (
        json.loads(artifact.read_text()).get(scope, {}).get("session_seconds")
    )
    if not baseline:
        print(f"  committed {artifact.name} has no {scope}.session_seconds; "
              "skipping its timing gate")
        return regressed
    ratio = entry["session_seconds"] / baseline
    over = ratio > REGRESSION_LIMIT
    print(f"  serve session: {entry['session_seconds']:.3f}s vs committed "
          f"{baseline:.3f}s ({ratio:.2f}x) -> "
          f"{'REGRESSION' if over else 'ok'}")
    regressed |= over
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (the built-in demo workload)")
    parser.add_argument("--check", action="store_true",
                        help="fail on a blown p99 ceiling, a goodput dip "
                        "before the knee, or overhead past the limit")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where to write BENCH_serve.json")
    args = parser.parse_args(argv)
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    print("open-loop serving (goodput curve, reference p99, overhead):")
    entry = run_serve(args.quick)
    scope = "quick" if args.quick else "full"
    path = args.output_dir / "BENCH_serve.json"
    if args.check:
        return 1 if check_serve(path, entry, scope) else 0

    doc = {
        "benchmark": "open-loop serving goodput, tail latency, overhead",
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
        "note": (
            "curve/goodput/p99 are simulated (deterministic per seed); "
            "session_seconds is the cold session wall-clock (kernel-cost "
            "prewarm + service loop), raw_universe_seconds the bare "
            "evaluate() of the same job universe; their ratio is the "
            "service overhead"
        ),
        scope: entry,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        previous = json.loads(path.read_text())
        for key in ("full", "quick"):
            if key in previous and key not in doc:
                doc[key] = previous[key]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
