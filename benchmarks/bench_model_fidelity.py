"""Bench `model-vs-sim`: Section 3.4's predictability claim.

Paper artifact: the HBSP model family "attempts to provide the
developer with predictable algorithmic performance" (Section 2).  We
run every collective on an HBSP^1 and an HBSP^2 machine and compare
simulated to predicted times.

Shape assertions: high rank correlation between predictions and
simulations, and bounded simulated/predicted ratios (the model omits
pack/unpack CPU costs, so simulation is slower, but never wildly so).
"""

from repro.experiments import model_fidelity


def test_model_fidelity(report_benchmark):
    report = report_benchmark(model_fidelity)
    for note in report.notes:
        if "Spearman" in note:
            rho = float(note.rsplit("=", 1)[1])
            assert rho > 0.7, note
    for label, series in report.series.items():
        for collective, ratio in series.items():
            assert 0.9 < ratio < 10.0, f"{label}/{collective}: ratio {ratio}"
