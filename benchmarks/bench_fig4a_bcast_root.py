"""Bench `fig4a`: Figure 4(a) — broadcast improvement T_s/T_f.

Paper series: improvement of rooting the two-phase broadcast on the
fastest processor, vs number of processors, one series per problem
size.

Shape assertions: the factor stays near 1 ("neglible improvement") —
the broadcast cannot exploit heterogeneity because the slowest machine
must receive all n items; the residual improvement (P_f scattering the
first-phase shares) is positive but small, and smaller than the
gather's improvement at every p.
"""

from repro.experiments import fig3a_gather_root, fig4a_broadcast_root
from repro.experiments.fig3_gather import PROBLEM_SIZES_KB, PROCESSOR_COUNTS


def test_fig4a_broadcast_root(report_benchmark):
    report = report_benchmark(
        fig4a_broadcast_root, PROBLEM_SIZES_KB, PROCESSOR_COUNTS
    )
    for label, series in report.series.items():
        for p, factor in series.items():
            assert 0.9 < factor < 1.35, f"{label} p={p}: not negligible: {factor}"
        for p in PROCESSOR_COUNTS[1:]:
            assert series[p] > 1.0, f"{label}: residual benefit at p={p}"
    # The paper's core contrast: gather exploits heterogeneity, broadcast
    # does not.  Compare at the largest sweep point.
    gather = fig3a_gather_root((PROBLEM_SIZES_KB[0],), (10,))
    assert gather.series[f"{PROBLEM_SIZES_KB[0]} KB"][10] > max(
        series[10] for series in report.series.values()
    )
