"""Bench `planner`: the cost model as an optimisation oracle.

Not a paper artifact — Section 3.4's claim ("the HBSP^k model provides
the user with ways to manipulate these costs") made executable: the
planner picks broadcast phase schemes and roots from predictions alone,
and we verify in simulation that its plans are never (materially) worse
than the alternatives it rejected.
"""

import itertools

from repro.cluster import flat_cluster, smp_sgi_lan, ucf_testbed
from repro.collectives import run_broadcast, run_gather
from repro.model import best_broadcast_phases, best_root, calibrate
from repro.util.tables import AsciiTable

N = 64_000


def test_planner_validated_by_simulation(benchmark):
    cases = [
        ("flat p=2", flat_cluster(2)),
        ("flat p=10", flat_cluster(10)),
        ("testbed", ucf_testbed(10)),
        ("fig1 (HBSP^2)", smp_sgi_lan()),
    ]

    def sweep():
        rows = []
        for label, topology in cases:
            params = calibrate(topology)
            phases, ledger = best_broadcast_phases(params, N)
            planned = run_broadcast(topology, N, phases=phases).time
            worst = max(
                run_broadcast(
                    topology,
                    N,
                    phases={level: c[level - 1] for level in range(1, params.k + 1)},
                ).time
                for c in itertools.product(("one", "two"), repeat=params.k)
            )
            root, _ = best_root(params, N, collective="gather")
            gather_planned = run_gather(topology, N, root=root).time
            gather_worst = max(
                run_gather(topology, N, root=r).time for r in range(params.p)
            )
            rows.append(
                (label, str(phases), planned, worst, gather_planned, gather_worst)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = AsciiTable(
        "[planner] model-planned vs worst configuration (simulated seconds)",
        ["machine", "bcast plan", "bcast planned", "bcast worst",
         "gather planned", "gather worst"],
    )
    for row in rows:
        table.add_row(row)
    print()
    print(table.render())

    for label, _phases, planned, worst, g_planned, g_worst in rows:
        # The plan never loses to the worst alternative, and the gap is
        # real on the heterogeneous machines.
        assert planned <= worst * 1.02, label
        assert g_planned <= g_worst * 1.02, label
