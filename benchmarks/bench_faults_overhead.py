"""Fault-subsystem overhead benchmarks (not a paper artifact).

The fault hooks sit on the hottest paths of the simulator (resource
grants, every send).  These benches pin down what they cost:

* **disabled** (``faults=None``) — the fast path taken by every
  pre-existing experiment.  Must stay within noise (< 3%) of the
  empty-plan-attached run, and both must produce identical results.
* **empty plan attached** — a live injector with nothing to do.
* **active plan** — a straggler, for scale (allowed to be slower).
"""

import time

from repro.cluster import ucf_testbed
from repro.collectives import run_gather
from repro.faults import FaultPlan, straggler_plan

N = 64_000
REPS = 5
OVERHEAD_BUDGET = 0.03


def _best_of(fn, reps=REPS):
    """Min-of-reps wall time: robust against scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_disabled_injector_overhead(benchmark):
    """No-injector runs must not pay for the fault subsystem."""
    topology = ucf_testbed(10)

    def bare():
        return run_gather(topology, N, seed=1).time

    def attached():
        return run_gather(topology, N, seed=1, faults=FaultPlan.empty()).time

    bare_wall, bare_time = benchmark.pedantic(
        lambda: _best_of(bare), rounds=1, iterations=1, warmup_rounds=1
    )
    attached_wall, attached_time = _best_of(attached)

    # Bit-identical simulation results either way.
    assert attached_time == bare_time

    # The disabled path must stay within the overhead budget of the
    # empty-plan path (and vice versa - they differ only in hook
    # checks that always miss).
    slower, faster = max(bare_wall, attached_wall), min(bare_wall, attached_wall)
    overhead = slower / faster - 1.0
    print(f"\nbare={bare_wall * 1e3:.1f} ms  empty-plan={attached_wall * 1e3:.1f} ms  "
          f"spread={overhead * 100:.1f}% (budget {OVERHEAD_BUDGET * 100:.0f}%)")
    assert overhead < OVERHEAD_BUDGET


def test_active_plan_cost(benchmark):
    """For scale: what a live straggler plan costs in wall time."""
    topology = ucf_testbed(10)
    plan = straggler_plan(topology.machines[5].name, factor=4.0)

    def faulted():
        return run_gather(topology, N, seed=1, faults=plan).time

    wall, sim_time = benchmark.pedantic(
        lambda: _best_of(faulted, reps=3), rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\nactive straggler plan: {wall * 1e3:.1f} ms wall, "
          f"{sim_time * 1e3:.3f} ms simulated")
    assert sim_time > 0
