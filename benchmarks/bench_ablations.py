"""Bench `ablations`: the DESIGN.md §7 mechanism ablations.

Not a paper artifact — a reproduction artifact: each of the paper's
anomalous findings is traced to one simulator mechanism by switching
that mechanism off and re-measuring.
"""

from repro.experiments import ablation_report


def test_ablations(report_benchmark):
    report = report_benchmark(ablation_report)
    on = report.series["mechanism on"]
    off = report.series["mechanism off"]
    # The p=2 inversion requires pack asymmetry.
    assert on["pack asymmetry (p=2 Ts/Tf)"] < 1.0
    assert off["pack asymmetry (p=2 Ts/Tf)"] >= 0.98
    # NIC port contention is a real share of gather time.
    assert (
        on["NIC serialization (p=10 T_f seconds)"]
        > off["NIC serialization (p=10 T_f seconds)"]
    )
    # Rank noise erodes/shifts the value of balancing.
    assert on["rank noise (p=6 Tu/Tb)"] != off["rank noise (p=6 Tu/Tb)"]
