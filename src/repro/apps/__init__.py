"""Heterogeneous applications built on the HBSP^k collectives.

The paper's stated future work: "designing HBSP^k applications that
can take advantage of our efficient heterogeneous communication
algorithms" (Section 6).  This package provides three such
applications, each written as an HBSP superstep program against the
public library API:

* :mod:`repro.apps.sample_sort` — parallel sample sort (the classic
  BSP benchmark): scatter, local sort, splitter selection by gather +
  broadcast, bucket exchange by total exchange, local merge;
* :mod:`repro.apps.matvec` — distributed matrix-vector multiplication
  with row blocks proportional to machine speed;
* :mod:`repro.apps.histogram` — a map/reduce-shaped histogram.

Each application runs under either workload policy, so the benchmarks
can quantify how much the paper's balanced-workload rule is worth once
a program has real local *computation* (unlike the pure-communication
collectives of Figures 3 and 4, where balancing barely helps).
"""

from repro.apps.sample_sort import run_sample_sort, sample_sort_program
from repro.apps.matvec import run_matvec, matvec_program
from repro.apps.histogram import histogram_program, run_histogram
from repro.apps.jacobi import jacobi_program, run_jacobi

__all__ = [
    "run_sample_sort",
    "sample_sort_program",
    "run_matvec",
    "matvec_program",
    "run_histogram",
    "histogram_program",
    "run_jacobi",
    "jacobi_program",
]
