"""Parallel sample sort on an HBSP^k machine.

The classic BSP sorting benchmark, adapted to heterogeneity with the
paper's design rules:

1. each processor holds ``counts[pid]`` items (balanced: ``c_j·n``) and
   sorts them locally (compute ∝ m·log m);
2. each processor draws ``p`` regular samples and sends them to the
   fastest processor (a gather of the sample matrix);
3. the root merges the samples, picks ``p−1`` splitters, and
   broadcasts them (two-phase);
4. processors partition their sorted runs by the splitters and perform
   a total exchange — bucket ``i`` goes to processor ``i``;
5. each processor merges its incoming runs; processor ``i``'s items
   are all ≤ processor ``i+1``'s.

Heterogeneity note: under the balanced policy the root places the
splitters at the *c-weighted* quantiles of the sample pool, so bucket
``i`` holds ≈ ``c_i·n`` items — slow machines receive smaller buckets
to merge, not just smaller initial shards.  Under the equal policy the
splitters sit at uniform quantiles, recovering the homogeneous
algorithm.
"""

from __future__ import annotations

import math
import typing as t

import numpy as np

from repro.apps.base import CPU_OPS, AppOutcome
from repro.cluster.topology import ClusterTopology
from repro.collectives.base import make_items, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    resolve_root,
    split_counts,
)
from repro.hbsplib.context import HbspContext

__all__ = ["sample_sort_program", "run_sample_sort"]

_SAMPLES_TAG = 1
_SPLITTERS_TAG = 2

#: Sample-pool oversampling factor (pool size ~ p^2 * this).
_OVERSAMPLE = 4


def _sort_work(m: int) -> float:
    """CPU work units for a local comparison sort of ``m`` items."""
    return CPU_OPS["compare"] * m * max(1.0, math.log2(max(m, 2)))


def sample_sort_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    balanced_buckets: bool = True,
    seed: int = 0,
) -> t.Generator:
    """Per-process sample-sort program.

    Returns ``(held, lo, hi, sorted_ok, checksum)`` for verification:
    concatenating the per-pid outputs in pid order yields the sorted
    multiset of all inputs.
    """
    p = ctx.nprocs
    mine = np.sort(make_items(seed, ctx.pid, counts[ctx.pid]))
    yield from ctx.compute(_sort_work(mine.size))

    # Step 2: regular sampling -> root.  The sample count is
    # proportional to the local shard (target pool size ~ p^2 *
    # OVERSAMPLE), so each pool entry represents the same number of
    # items and pool quantiles approximate *global* quantiles even
    # under unequal shards.
    n = max(1, int(sum(counts)))
    target_pool = p * p * _OVERSAMPLE
    my_samples = max(1, round(mine.size * target_pool / n)) if mine.size else 0
    if my_samples:
        positions = np.linspace(0, mine.size - 1, num=my_samples, dtype=np.int64)
        samples = mine[positions]
    else:
        samples = np.empty(0, dtype=mine.dtype)
    if ctx.pid != root:
        yield from ctx.send(root, samples, tag=_SAMPLES_TAG)
    yield from ctx.sync()

    # Step 3: splitter selection and broadcast.
    if ctx.pid == root:
        pools = [samples] + [m.payload for m in ctx.messages(tag=_SAMPLES_TAG)]
        pool = np.sort(np.concatenate([s for s in pools if s.size]))
        yield from ctx.compute(_sort_work(pool.size))
        if pool.size >= p - 1 and p > 1:
            if balanced_buckets:
                # c-weighted quantiles: bucket i gets ~c_i of the data.
                fractions = np.array(
                    [ctx.fraction_of(j) for j in range(p)], dtype=float
                )
                cuts = np.cumsum(fractions)[:-1]
            else:
                cuts = np.arange(1, p) / p
            positions = np.clip(
                np.round(cuts * (pool.size - 1)).astype(np.int64), 0, pool.size - 1
            )
            splitters = pool[positions]
        else:
            splitters = np.empty(0, dtype=mine.dtype)
        for peer in range(p):
            if peer != ctx.pid:
                yield from ctx.send(peer, splitters, tag=_SPLITTERS_TAG)
    yield from ctx.sync()
    if ctx.pid != root:
        splitters = ctx.messages(tag=_SPLITTERS_TAG)[0].payload

    # Step 4: partition into buckets and exchange.
    boundaries = np.searchsorted(mine, splitters, side="right")
    buckets = np.split(mine, boundaries)
    yield from ctx.compute(CPU_OPS["bucket"] * mine.size)
    for peer, bucket in enumerate(buckets):
        if peer != ctx.pid and bucket.size:
            yield from ctx.send(peer, bucket, tag=100 + ctx.pid)
    yield from ctx.sync()

    # Step 5: merge incoming runs with the local bucket.
    runs = [buckets[ctx.pid]] + [m.payload for m in ctx.messages()]
    held = np.sort(np.concatenate([r for r in runs if r.size])) if any(
        r.size for r in runs
    ) else np.empty(0, dtype=mine.dtype)
    yield from ctx.compute(_sort_work(held.size))

    lo = int(held[0]) if held.size else None
    hi = int(held[-1]) if held.size else None
    sorted_ok = bool(np.all(held[1:] >= held[:-1]))
    checksum = int(held.astype(np.int64).sum()) if held.size else 0
    return (int(held.size), lo, hi, sorted_ok, checksum)


def run_sample_sort(
    topology: ClusterTopology,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
) -> AppOutcome:
    """Sort ``n`` uniformly distributed integers on the machine."""
    runtime = make_runtime(topology, scores=scores, trace=trace)
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    balanced_buckets = (
        workload is WorkloadPolicy.BALANCED
        if isinstance(workload, WorkloadPolicy)
        else True
    )
    result = runtime.run(
        sample_sort_program, counts, root_pid, balanced_buckets, seed
    )
    return AppOutcome(
        name=f"sample_sort(n={n})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        result=result,
        runtime=runtime,
    )
