"""Distributed matrix-vector multiplication on an HBSP^k machine.

``y = A @ x`` with ``A`` an ``n × n`` dense matrix in *row blocks*:
processor ``j`` owns ``counts[j]`` rows (balanced: ``c_j · n``) and
the corresponding slice of ``x``.  One iteration:

1. all-gather the ``x`` slices so everyone holds the full vector
   (each processor contributes ``counts[j]`` entries);
2. local block multiply (compute ∝ rows · n flops);
3. the root gathers the ``y`` slices (for verification / output).

The computation dominates communication for sizeable ``n``, so this is
the regime where the paper's balanced-workload rule pays off in full:
the slowest machine gets proportionally fewer rows and the superstep
barrier stops waiting on it.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.apps.base import CPU_OPS, AppOutcome
from repro.cluster.topology import ClusterTopology
from repro.collectives.base import make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    resolve_root,
    split_counts,
)
from repro.hbsplib.context import HbspContext
from repro.util.rng import RngStream

__all__ = ["matvec_program", "run_matvec", "predict_matvec_cost"]


def predict_matvec_cost(params, counts, *, cpu_rates, root):
    """Closed-form cost of one matvec iteration.

    Three super-steps: the direct all-gather of the ``x`` slices
    (8-byte doubles), the local block multiply (``w`` is the slowest
    machine's ``2·rows·n`` flops), and the gather of the ``y`` slices
    onto the root.
    """
    from repro.apps.base import CPU_OPS
    from repro.model.cost import CostLedger

    n = int(sum(counts))
    ledger = CostLedger(f"matvec(n={n})")
    item_bytes = 8
    loads = []
    for j in range(params.p):
        send = counts[j] * (params.p - 1)
        recv = n - counts[j]
        loads.append((params.r_of(0, j), max(send, recv) * item_bytes))
    ledger.charge_step(
        "super1: all-gather x",
        level=1,
        g=params.g,
        loads=loads,
        L=params.L_of(params.k, 0),
    )
    w = max(
        CPU_OPS["flop"] * counts[j] * n / cpu_rates[j] for j in range(params.p)
    )
    gather_loads = [(params.r_of(0, root), (n - counts[root]) * item_bytes)]
    for j in range(params.p):
        if j != root:
            gather_loads.append((params.r_of(0, j), counts[j] * item_bytes))
    ledger.charge_step(
        "super2: multiply + gather y",
        level=1,
        g=params.g,
        loads=gather_loads,
        w=w,
        L=params.L_of(params.k, 0),
    )
    return ledger


def matvec_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    seed: int = 0,
) -> t.Generator:
    """Per-process matrix-vector program.

    Returns ``(rows, y_checksum)``; the root returns the checksum of
    the full result vector.
    """
    n = int(sum(counts))
    offsets = np.cumsum([0] + [int(c) for c in counts])
    rows = int(counts[ctx.pid])
    # Deterministic block and slice: A's block rows from a pid-derived
    # stream, x's slice from a shared stream cut by offsets.
    block = RngStream(seed, "matvec-A", ctx.pid).generator.random((rows, n))
    x_full = RngStream(seed, "matvec-x").generator.random(n)
    x_slice = x_full[offsets[ctx.pid] : offsets[ctx.pid + 1]]

    # Step 1: all-gather x (direct exchange of slices).
    for peer in range(ctx.nprocs):
        if peer != ctx.pid and x_slice.size:
            yield from ctx.send(peer, x_slice, tag=ctx.pid)
    yield from ctx.sync()
    pieces: dict[int, np.ndarray] = {ctx.pid: x_slice}
    for message in ctx.messages():
        pieces[message.tag] = message.payload
    x = np.concatenate([pieces[j] for j in sorted(pieces)]) if pieces else x_slice

    # Step 2: local block multiply.
    yield from ctx.compute(CPU_OPS["flop"] * rows * n)
    y_slice = block @ x

    # Step 3: gather y at the root.
    if ctx.pid != root and y_slice.size:
        yield from ctx.send(root, y_slice, tag=1000 + ctx.pid)
    yield from ctx.sync()
    if ctx.pid == root:
        parts = {ctx.pid: y_slice}
        for message in ctx.messages():
            parts[message.tag - 1000] = message.payload
        y = np.concatenate([parts[j] for j in sorted(parts)])
        return (rows, float(y.sum()))
    return (rows, float(y_slice.sum()))


def run_matvec(
    topology: ClusterTopology,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
) -> AppOutcome:
    """One distributed ``y = A @ x`` iteration with ``A`` of size n × n."""
    runtime = make_runtime(topology, scores=scores, trace=trace)
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(matvec_program, counts, root_pid, seed)
    cpu_rates = [m.cpu_rate for m in runtime.topology.machines]
    predicted = predict_matvec_cost(
        runtime.params, counts, cpu_rates=cpu_rates, root=root_pid
    )
    return AppOutcome(
        name=f"matvec(n={n})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        result=result,
        runtime=runtime,
        predicted=predicted,
    )
