"""A map/reduce-shaped distributed histogram on an HBSP^k machine.

Each processor holds ``counts[pid]`` data items (balanced: ``c_j·n``),
bins them locally (compute ∝ items), and the per-bin counts are
combined up the machine tree with the hierarchical reduction — so only
``bins`` integers ever cross each network level, regardless of ``n``.

This is the smallest interesting HBSP^k application: map work is
heterogeneity-sensitive (rule 2: balanced workloads), reduce traffic
is hierarchy-sensitive (coordinators combine before forwarding).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.apps.base import CPU_OPS, AppOutcome
from repro.cluster.topology import ClusterTopology
from repro.collectives.base import make_items, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    effective_coordinator,
    resolve_root,
    split_counts,
)
from repro.hbsplib.context import HbspContext

__all__ = ["histogram_program", "run_histogram", "predict_histogram_cost"]


def predict_histogram_cost(params, counts, bins, *, cpu_rates, root):
    """Closed-form histogram cost: the map step's ``w`` (slowest
    machine's binning work) plus the hierarchical reduction of the bin
    vectors."""
    from repro.collectives.reduce import predict_reduce_cost
    from repro.model.cost import CostLedger

    ledger = CostLedger(f"histogram(n={sum(counts)}, bins={bins})")
    w = max(
        CPU_OPS["count"] * counts[j] / cpu_rates[j] for j in range(params.p)
    )
    ledger.charge("map: local binning", level=1, w=w)
    ledger.extend(
        predict_reduce_cost(
            params, bins, root=root, cpu_rates=cpu_rates, item_bytes=8
        ),
        "reduce/",
    )
    return ledger


def histogram_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    bins: int = 64,
    seed: int = 0,
) -> t.Generator:
    """Per-process histogram program.

    Returns ``(items_binned, total_in_histogram)``; the root's total
    equals ``sum(counts)``.
    """
    mine = make_items(seed, ctx.pid, counts[ctx.pid])
    yield from ctx.compute(CPU_OPS["count"] * mine.size)
    local = np.bincount(
        (mine.astype(np.int64) % bins).astype(np.int64), minlength=bins
    ).astype(np.int64)

    # Hierarchical reduction of the bin vectors (cf. collectives.reduce).
    acc = local
    k = ctx.runtime.tree.k
    for level in range(1, k + 1):
        sender = effective_coordinator(ctx, level - 1, root)
        receiver = effective_coordinator(ctx, level, root)
        if ctx.pid == sender and ctx.pid != receiver:
            yield from ctx.send(receiver, acc, tag=level)
        yield from ctx.sync(level)
        if ctx.pid == receiver:
            for message in ctx.messages(tag=level):
                yield from ctx.compute(CPU_OPS["count"] * bins)
                acc = acc + message.payload

    if ctx.pid == effective_coordinator(ctx, k, root):
        return (int(mine.size), int(acc.sum()))
    return (int(mine.size), 0)


def run_histogram(
    topology: ClusterTopology,
    n: int,
    *,
    bins: int = 64,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
) -> AppOutcome:
    """Histogram ``n`` items into ``bins`` buckets at the root."""
    runtime = make_runtime(topology, scores=scores, trace=trace)
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(histogram_program, counts, root_pid, bins, seed)
    cpu_rates = [m.cpu_rate for m in runtime.topology.machines]
    predicted = predict_histogram_cost(
        runtime.params, counts, bins, cpu_rates=cpu_rates, root=root_pid
    )
    return AppOutcome(
        name=f"histogram(n={n}, bins={bins})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        result=result,
        runtime=runtime,
        predicted=predicted,
    )
