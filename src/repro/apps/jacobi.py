"""A 1-D Jacobi solver on an HBSP^k machine (iterative supersteps).

Solves the discrete Poisson problem ``-u'' = f`` on [0, 1] with
``u(0) = u(1) = 0`` by Jacobi iteration.  The grid is split into
contiguous blocks proportional to machine speed; every iteration is
one superstep: exchange halo cells with the pid-order neighbours, then
update the interior (compute ∝ block size).  Every ``check_every``
iterations the processes compute a global residual with an all-reduce
(reduce to the fastest machine + broadcast) and stop early once it
drops below ``tol``.

This is the library's long-running application: hundreds of supersteps
whose per-step communication is tiny (two halo cells) while the
computation is balanced by ``c_j`` — the steady-state regime BSP-style
models are built for.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.apps.base import CPU_OPS, AppOutcome
from repro.cluster.topology import ClusterTopology
from repro.collectives.base import make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    resolve_root,
    split_counts,
)
from repro.errors import CollectiveError
from repro.hbsplib.context import HbspContext

__all__ = ["jacobi_program", "run_jacobi"]

_HALO_L = 1
_HALO_R = 2
_RESIDUAL = 3
_VERDICT = 4

#: CPU work units per grid cell per Jacobi update (2 adds, 1 mul, 1 store).
_OPS_PER_CELL = 4.0


def jacobi_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    max_iterations: int = 200,
    check_every: int = 25,
    tol: float = 1e-2,
) -> t.Generator:
    """Per-process Jacobi program.

    Returns ``(cells, iterations, final_residual, checksum)``; the
    residual is the global max-norm of ``A u - b`` at the last check.
    """
    n = int(sum(counts))
    offsets = np.cumsum([0] + [int(c) for c in counts])
    lo, hi = int(offsets[ctx.pid]), int(offsets[ctx.pid + 1])
    cells = hi - lo
    h = 1.0 / (n + 1)
    # f = 1 everywhere; the solution is u(x) = x(1-x)/2.
    f_h2 = h * h  # f_i * h^2
    u = np.zeros(cells)
    left_neighbor = ctx.pid - 1 if ctx.pid > 0 else None
    right_neighbor = ctx.pid + 1 if ctx.pid < ctx.nprocs - 1 else None

    iterations = 0
    residual = float("inf")
    while iterations < max_iterations:
        # Halo exchange.
        if left_neighbor is not None and cells:
            yield from ctx.send(left_neighbor, float(u[0]), tag=_HALO_R)
        if right_neighbor is not None and cells:
            yield from ctx.send(right_neighbor, float(u[-1]), tag=_HALO_L)
        yield from ctx.sync()
        left_halo = 0.0
        right_halo = 0.0
        for message in ctx.messages(tag=_HALO_L):
            left_halo = message.payload
        for message in ctx.messages(tag=_HALO_R):
            right_halo = message.payload

        # Jacobi update of the block.  The convergence measure is the
        # true equation residual max|(u_{i-1} - 2u_i + u_{i+1})/h² + f|
        # (per-iteration *change* would look converged immediately,
        # because each Jacobi step only moves values by O(h²)).
        yield from ctx.compute(_OPS_PER_CELL * cells)
        padded = np.concatenate(([left_halo], u, [right_halo]))
        local_residual = (
            float(np.abs((padded[:-2] - 2 * u + padded[2:]) / (h * h) + 1.0).max())
            if cells
            else 0.0
        )
        u = 0.5 * (padded[:-2] + padded[2:] + f_h2)
        iterations += 1

        # Periodic global convergence check (reduce + broadcast).
        if iterations % check_every == 0 or iterations == max_iterations:
            if ctx.pid != root:
                yield from ctx.send(root, local_residual, tag=_RESIDUAL)
            yield from ctx.sync()
            if ctx.pid == root:
                worst = max(
                    [local_residual]
                    + [m.payload for m in ctx.messages(tag=_RESIDUAL)]
                )
                for peer in range(ctx.nprocs):
                    if peer != ctx.pid:
                        yield from ctx.send(peer, worst, tag=_VERDICT)
            yield from ctx.sync()
            if ctx.pid == root:
                residual = worst
            else:
                residual = ctx.messages(tag=_VERDICT)[0].payload
            if residual < tol:
                break

    checksum = float(u.sum()) if cells else 0.0
    return (cells, iterations, residual, checksum)


def run_jacobi(
    topology: ClusterTopology,
    n: int,
    *,
    max_iterations: int = 200,
    check_every: int = 25,
    tol: float = 1e-2,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    trace: bool = False,
) -> AppOutcome:
    """Solve the n-point 1-D Poisson problem by distributed Jacobi."""
    runtime = make_runtime(topology, scores=scores, trace=trace)
    if n < 4 * runtime.nprocs:
        raise CollectiveError(
            f"need n >= 4p grid points (n={n}, p={runtime.nprocs})"
        )
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(
        jacobi_program, counts, root_pid, max_iterations, check_every, tol
    )
    return AppOutcome(
        name=f"jacobi(n={n}, max_iter={max_iterations})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        result=result,
        runtime=runtime,
    )
