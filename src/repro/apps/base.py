"""Shared plumbing for the application layer."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.hbsplib.runtime import HbspResult, HbspRuntime
from repro.model.cost import CostLedger

__all__ = ["AppOutcome", "CPU_OPS"]


#: CPU work-unit charges for application computation, per element.
#: One work unit corresponds to one simple machine operation on the
#: calibrated ``cpu_rate`` scale (see repro.cluster.machine).
CPU_OPS = {
    "compare": 1.0,       # one comparison in sort/merge/partition
    "flop": 2.0,          # one multiply-add
    "bucket": 2.0,        # binary-search bucket assignment step
    "count": 1.0,         # one histogram increment
}


@dataclasses.dataclass
class AppOutcome:
    """Result of one application run on the simulated machine.

    Attributes
    ----------
    name:
        Application + configuration summary.
    time:
        Simulated makespan in virtual seconds.
    supersteps:
        Synchronisations performed.
    values:
        Per-pid program return values (application-specific
        verification data).
    result:
        The raw :class:`~repro.hbsplib.HbspResult`.
    runtime:
        The runtime (topology, params, fractions).
    predicted:
        Closed-form cost ledger for the same configuration, where the
        application provides one (``None`` otherwise).
    """

    name: str
    time: float
    supersteps: int
    values: dict[int, t.Any]
    result: HbspResult
    runtime: HbspRuntime
    predicted: CostLedger | None = None

    @property
    def predicted_time(self) -> float | None:
        """Total of the analytic ledger (``None`` if not predicted)."""
        return self.predicted.total if self.predicted is not None else None

    def __repr__(self) -> str:
        return (
            f"AppOutcome({self.name!r}, time={self.time:.6g}, "
            f"supersteps={self.supersteps})"
        )
