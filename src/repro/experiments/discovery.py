"""Round-trip hierarchy-discovery validation (new subsystem experiment).

For every generator family (:mod:`repro.cluster.discover.generators`):
generate a known topology, synthesize its probe matrix, add seeded
multiplicative measurement noise of increasing strength, run
:func:`~repro.cluster.discover.discover`, and score the recovered
hierarchy against the truth.  The reported quantity is the **recovery
score** ``1 - hierarchy_distance`` (1.0 = every level's partition
recovered exactly; see :mod:`repro.cluster.discover.score`).

Expected shape: every family holds at 1.0 with zero noise (the exact
recovery guarantee the property tests enforce) and degrades gracefully
— latency bands are an order of magnitude apart, so recovery survives
sigma well past realistic ping jitter.
"""

from __future__ import annotations

from repro.cluster.discover import (
    discover,
    exact_recovery,
    hierarchy_distance,
    synthesize,
    topology_partitions,
)
from repro.cluster.discover.generators import GENERATORS
from repro.experiments.improvement import ExperimentReport
from repro.util.rng import derive_seed

__all__ = ["discovery_roundtrip", "FAMILY_SPECS", "NOISE_LEVELS"]

#: Family -> generator kwargs used by the experiment (kept small so the
#: whole sweep runs in seconds; the benchmarks cover 10^3-10^4 leaves).
FAMILY_SPECS: dict[str, dict[str, int]] = {
    "fat_tree": {"pods": 3, "racks_per_pod": 3, "hosts_per_rack": 4},
    "multi_rack": {"racks": 6, "hosts_per_rack": 8},
    "cloud_spot_mix": {"regions": 2, "zones_per_region": 3, "instances_per_zone": 6},
    "multicore_nodes": {"racks": 3, "nodes_per_rack": 4, "cores_per_node": 4},
}

#: Multiplicative noise strengths swept per family (lognormal sigma).
NOISE_LEVELS: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)


def discovery_roundtrip(seed: int = 2001) -> ExperimentReport:
    """Generate -> synthesize(+noise) -> discover -> score, per family.

    One series per generator family; x is the noise sigma, y the
    recovery score ``1 - hierarchy_distance`` against the generating
    truth.  Deterministic in ``seed`` (noise draws derive from it).
    """
    series: dict[str, dict[float, float]] = {}
    exact_at_zero: list[str] = []
    for family, spec in FAMILY_SPECS.items():
        topology = GENERATORS[family](seed=seed, **spec)
        truth = topology_partitions(topology)
        points: dict[float, float] = {}
        for noise in NOISE_LEVELS:
            matrix = synthesize(
                topology,
                noise=noise,
                seed=derive_seed(seed, "discovery", family, str(noise)),
            )
            result = discover(matrix)
            points[noise] = 1.0 - hierarchy_distance(truth, result.partitions)
            if noise == 0.0 and exact_recovery(truth, result.partitions):
                exact_at_zero.append(family)
        series[family] = points
    notes = [
        "y = 1 - hierarchy_distance(truth, recovered): mean per-level",
        "partition agreement (Rand index), 1.0 = exact at every level.",
        f"exact recovery at sigma=0: {', '.join(exact_at_zero) or 'NONE (bug!)'}",
        "Expected: 1.0 at sigma=0 for every family, graceful decay after",
        "(levels sit an order of magnitude apart, so small ping jitter",
        "cannot merge or split bands).",
    ]
    return ExperimentReport(
        experiment_id="discovery",
        title="hierarchy discovery round-trip: recovery score vs probe noise",
        x_name="noise",
        series=series,
        notes=notes,
    )
