"""The experiment harness: regenerates every figure and table.

Each experiment function returns an :class:`ExperimentReport` whose
``render()`` prints the same rows/series the paper reports (improvement
factors per processor count, one series per problem size).  The
``benchmarks/`` directory wraps these in pytest-benchmark and asserts
the qualitative shapes; ``python -m repro.experiments <id>`` runs one
from the command line.

Experiment ids (see DESIGN.md §4): ``table1``, ``fig3a``, ``fig3b``,
``fig4a``, ``fig4b``, ``sec4-bcast-phases``, ``sec4-gather-hierarchy``,
``model-vs-sim``, ``ablations``, ``scaling``, ``bsp-vs-hbsp``,
``sensitivity``, ``robustness``, ``discovery``.
"""

from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.experiments.fig3_gather import fig3a_gather_root, fig3b_gather_balance
from repro.experiments.fig4_broadcast import (
    fig4a_broadcast_root,
    fig4b_broadcast_balance,
)
from repro.experiments.ablations import (
    ablation_nic_serialization,
    ablation_pack_asymmetry,
    ablation_rank_noise,
    ablation_report,
    symmetric_pack_topology,
)
from repro.experiments.analysis import (
    model_fidelity,
    sec4_broadcast_phases,
    sec4_gather_hierarchy,
    table1_parameters,
)
from repro.experiments.bsp_vs_hbsp import bsp_vs_hbsp
from repro.experiments.discovery import discovery_roundtrip
from repro.experiments.robustness import robustness_plans, robustness_report
from repro.experiments.scaling import app_scaling
from repro.experiments.sensitivity import calibration_sensitivity
from repro.experiments.tuning import tuning_improvement
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentReport",
    "improvement_factor",
    "fig3a_gather_root",
    "fig3b_gather_balance",
    "fig4a_broadcast_root",
    "fig4b_broadcast_balance",
    "table1_parameters",
    "sec4_broadcast_phases",
    "sec4_gather_hierarchy",
    "model_fidelity",
    "ablation_report",
    "ablation_pack_asymmetry",
    "ablation_nic_serialization",
    "ablation_rank_noise",
    "symmetric_pack_topology",
    "app_scaling",
    "bsp_vs_hbsp",
    "calibration_sensitivity",
    "tuning_improvement",
    "robustness_plans",
    "robustness_report",
    "discovery_roundtrip",
    "EXPERIMENTS",
    "run_experiment",
]
