"""Figure 3: gather performance on the (simulated) UCF testbed.

* **Fig. 3(a)** — improvement factor ``T_s / T_f``: the benefit of
  rooting the gather on the fastest processor instead of the slowest,
  with equal workloads (``c_j = 1/p``).
* **Fig. 3(b)** — improvement factor ``T_u / T_b``: the benefit of
  BYTEmark-proportional (balanced) workloads over equal ones, with the
  fastest processor as root (``T_u = T_f``).

The paper sweeps 2–10 workstations and problem sizes of 100–1000
KBytes of uniformly distributed integers.
"""

from __future__ import annotations

import typing as t

from repro.bytemark.suite import simulate_scores
from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.perf import SimJob, evaluate
from repro.util.units import BYTES_PER_INT, kb

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.collectives.schedules import SchedulePolicy

__all__ = [
    "PROBLEM_SIZES_KB",
    "PROCESSOR_COUNTS",
    "fig3a_gather_root",
    "fig3b_gather_balance",
]

#: The paper's input range: "100 KBytes to 1000 KBytes of uniformly
#: distributed integers".
PROBLEM_SIZES_KB: tuple[int, ...] = (100, 250, 500, 750, 1000)

#: The testbed had ten workstations; root-vs-root comparisons need two.
PROCESSOR_COUNTS: tuple[int, ...] = tuple(range(2, 11))

#: Measurement-noise shape for the BYTEmark-derived ``c_j`` (Fig. 3(b));
#: the paper's non-dedicated testbed mis-estimated the second-fastest
#: machine's fraction, and this is the knob that reproduces such errors.
DEFAULT_NOISE_SIGMA = 0.3


def _items(size_kb: int) -> int:
    return kb(size_kb) // BYTES_PER_INT


def fig3a_gather_root(
    sizes_kb: t.Sequence[int] = PROBLEM_SIZES_KB,
    processor_counts: t.Sequence[int] = PROCESSOR_COUNTS,
    *,
    seed: int = 0,
    schedule: "SchedulePolicy | str | None" = None,
) -> ExperimentReport:
    """Fig. 3(a): gather ``T_s/T_f`` vs ``p``, one series per size.

    Equal workloads; only the root changes (``P_s`` vs ``P_f``).
    ``schedule="tuned"`` runs every grid point under the auto-tuned
    plan for its ``(machine, n, root)`` instead of the paper's flat
    schedule.
    """
    from repro.collectives.schedules import resolve_plan

    grid = [(size_kb, p) for size_kb in sizes_kb for p in processor_counts]
    jobs = []
    for size_kb, p in grid:
        topology = ucf_testbed(p)
        for root in (RootPolicy.SLOWEST, RootPolicy.FASTEST):
            kwargs: dict[str, t.Any] = {}
            plan = resolve_plan(
                topology, "gather", _items(size_kb), schedule, root=root
            )
            if plan is not None:
                kwargs["plan"] = plan
            jobs.append(
                SimJob.collective(
                    "gather", topology, _items(size_kb), root=root,
                    workload=WorkloadPolicy.EQUAL, seed=seed, **kwargs,
                )
            )
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (size_kb, p) in enumerate(grid):
        t_s, t_f = results[2 * index].time, results[2 * index + 1].time
        series.setdefault(f"{size_kb} KB", {})[p] = improvement_factor(t_s, t_f)
    return ExperimentReport(
        experiment_id="fig3a",
        title="Gather performance, T_s/T_f (fast root vs slow root)",
        x_name="p",
        series=series,
        notes=[
            "expected shape: factor grows with p, roughly flat across sizes",
            "expected anomaly: factor < 1 at p=2 (slow root wins: the only "
            "transfer is P_f -> P_s either way, and packing is cheaper on P_f)",
        ],
    )


def fig3b_gather_balance(
    sizes_kb: t.Sequence[int] = PROBLEM_SIZES_KB,
    processor_counts: t.Sequence[int] = PROCESSOR_COUNTS,
    *,
    seed: int = 0,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    score_seed: int = 2001,
) -> ExperimentReport:
    """Fig. 3(b): gather ``T_u/T_b`` vs ``p``, one series per size.

    The fastest processor is always the root; the workload is either
    equal (``T_u``) or proportional to noisy BYTEmark scores (``T_b``).
    """
    grid = [(size_kb, p) for size_kb in sizes_kb for p in processor_counts]
    jobs = []
    for size_kb, p in grid:
        topology = ucf_testbed(p)
        scores = simulate_scores(topology, noise_sigma=noise_sigma, seed=score_seed)
        for workload in (WorkloadPolicy.EQUAL, WorkloadPolicy.BALANCED):
            jobs.append(
                SimJob.collective(
                    "gather", topology, _items(size_kb), root=RootPolicy.FASTEST,
                    workload=workload, scores=scores, seed=seed,
                )
            )
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (size_kb, p) in enumerate(grid):
        t_u, t_b = results[2 * index].time, results[2 * index + 1].time
        series.setdefault(f"{size_kb} KB", {})[p] = improvement_factor(t_u, t_b)
    return ExperimentReport(
        experiment_id="fig3b",
        title="Gather performance, T_u/T_b (balanced vs equal workloads)",
        x_name="p",
        series=series,
        notes=[
            "expected shape: clear benefit only at p=2; near 1 as p grows",
            "driver: the root must drain ~n bytes regardless, and noisy "
            "c_j estimates (esp. the second-fastest machine's) eat the rest",
        ],
    )
