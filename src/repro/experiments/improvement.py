"""Improvement-factor machinery and report containers.

Section 5.1: "Experimental results are given in terms of an improvement
factor.  Let ``T_A`` and ``T_B`` represent the execution time of
algorithm A and algorithm B ... The improvement factor of using
algorithm B over algorithm A is ``T_A / T_B``."
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ExperimentError
from repro.util.tables import format_series

__all__ = ["improvement_factor", "ExperimentReport"]


def improvement_factor(t_a: float, t_b: float) -> float:
    """The improvement of algorithm B over algorithm A: ``T_A / T_B``.

    A factor above 1 means B is faster.
    """
    if t_a < 0 or t_b <= 0:
        raise ExperimentError(
            f"times must be positive (t_a={t_a!r}, t_b={t_b!r})"
        )
    return t_a / t_b


@dataclasses.dataclass
class ExperimentReport:
    """One regenerated figure/table.

    Attributes
    ----------
    experiment_id:
        Short id matching DESIGN.md's experiment index (``"fig3a"``...).
    title:
        Human-readable title, including the factor definition.
    x_name:
        Name of the swept x-axis (``"p"`` for the figures).
    series:
        ``{series label: {x: y}}`` — one series per problem size, as in
        the paper's plots.
    notes:
        Free-form lines describing what to look for (the expected
        qualitative shape) and any caveats.
    extra:
        Optional appendix text (pre-rendered tables etc.).
    """

    experiment_id: str
    title: str
    x_name: str
    series: dict[str, dict[t.Any, float]]
    notes: list[str] = dataclasses.field(default_factory=list)
    extra: str = ""

    def render(self, *, plot: bool = False) -> str:
        """Render the report: table (or ASCII plot) + notes."""
        if plot:
            from repro.util.plot import ascii_plot

            parts = [
                ascii_plot(
                    self.series,
                    title=f"[{self.experiment_id}] {self.title}",
                    x_name=self.x_name,
                    y_name="improvement factor",
                )
            ]
        else:
            parts = [format_series(f"[{self.experiment_id}] {self.title}", self.x_name, self.series)]
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        if self.extra:
            parts.append(self.extra)
        return "\n".join(parts)

    # -- queries used by benchmark assertions ---------------------------------
    def xs(self) -> list:
        """All x values present in any series (first-seen order)."""
        out: list = []
        for values in self.series.values():
            for x in values:
                if x not in out:
                    out.append(x)
        return out

    def values_at(self, x: t.Any) -> dict[str, float]:
        """``{series label: y}`` at one x."""
        return {
            label: values[x]
            for label, values in self.series.items()
            if x in values
        }

    def mean_factor(self, x: t.Any) -> float:
        """Mean of all series at one x (the paper's per-p tendency)."""
        values = list(self.values_at(x).values())
        if not values:
            raise ExperimentError(f"no series has x={x!r}")
        return sum(values) / len(values)

    def __str__(self) -> str:
        return self.render()
