"""Calibration sensitivity: do the conclusions survive other testbeds?

The simulated testbed's knobs (CPU spread, NIC spread, pack cost) are
*our* calibration, not the paper's measurements.  A reproduction is
only trustworthy if the qualitative findings hold across reasonable
settings of those knobs.  This experiment re-measures the three
headline findings under swept calibrations:

* ``gather@p``   — Fig. 3(a)'s T_s/T_f at p = 8 (should stay > 1);
* ``gather@2``   — the p = 2 inversion (should stay < 1 while packing
  is asymmetric, vanish as pack cost → unpack cost);
* ``bcast@p``    — Fig. 4(a)'s T_s/T_f at p = 8 (should stay near 1,
  below the gather's factor).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.cluster.presets import ETHERNET_100
from repro.cluster.topology import Cluster, ClusterTopology
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.model.kernels import BroadcastKernel, GatherKernel, equal_counts
from repro.model.params import calibrate
from repro.perf import SimJob, evaluate
from repro.util.tables import AsciiTable

__all__ = ["calibration_sensitivity"]


def _cluster(
    p: int,
    *,
    cpu_spread: float = 4.0,
    nic_spread: float = 1.25,
    pack_cost: float = 2.0,
    unpack_cost: float = 0.8,
) -> ClusterTopology:
    machines = []
    for j in range(p):
        frac = j / (p - 1) if p > 1 else 0.0
        machines.append(
            MachineSpec(
                f"m{j}",
                cpu_rate=1e8 / cpu_spread**frac,
                nic_gap=8e-8 * nic_spread**frac,
                pack_cost=pack_cost,
                unpack_cost=unpack_cost,
                msg_overhead=5000.0,
            )
        )
    return ClusterTopology(Cluster("lan", ETHERNET_100, machines))


def _finding_jobs(
    topology_large: ClusterTopology, topology_p2: ClusterTopology
) -> list[SimJob]:
    """Six sims per calibration: gather@p, gather@2, bcast@p pairs."""
    n = 128_000
    jobs = []
    for topology in (topology_large, topology_p2):
        for root in (RootPolicy.SLOWEST, RootPolicy.FASTEST):
            jobs.append(SimJob.collective(
                "gather", topology, n, root=root, workload=WorkloadPolicy.EQUAL
            ))
    for root in (RootPolicy.SLOWEST, RootPolicy.FASTEST):
        jobs.append(SimJob.collective("broadcast", topology_large, n, root=root))
    return jobs


def _model_findings(
    topology_large: ClusterTopology, topology_p2: ClusterTopology, n: int
) -> dict[str, float]:
    """The cost model's analog of :func:`_findings`, kernel-batched.

    Per calibration: one gather grid over both roots per topology and
    one broadcast grid over both roots — the slowest/fastest ratio the
    sim series measure, without any DES.
    """
    out: dict[str, float] = {}
    ns = np.array([n, n], dtype=np.int64)
    for label, topology in (("gather@p", topology_large), ("gather@2", topology_p2)):
        params = calibrate(topology)
        roots = np.array(
            [params.slowest_index(0), params.fastest_index(0)], dtype=np.int64
        )
        totals = GatherKernel(params).evaluate(
            ns, roots=roots, counts=equal_counts(params, ns)
        ).totals
        out[label] = improvement_factor(float(totals[0]), float(totals[1]))
    params = calibrate(topology_large)
    roots = np.array(
        [params.slowest_index(0), params.fastest_index(0)], dtype=np.int64
    )
    totals = BroadcastKernel(params).evaluate(ns, roots=roots).totals
    out["bcast@p"] = improvement_factor(float(totals[0]), float(totals[1]))
    return out


def _findings(results: t.Sequence) -> dict[str, float]:
    g_s, g_f, g2_s, g2_f, b_s, b_f = (result.time for result in results)
    return {
        "gather@p": improvement_factor(g_s, g_f),
        "gather@2": improvement_factor(g2_s, g2_f),
        "bcast@p": improvement_factor(b_s, b_f),
    }


def calibration_sensitivity(p: int = 8) -> ExperimentReport:
    """Headline findings under swept calibration knobs."""
    sweeps: dict[str, dict] = {
        "baseline": {},
        "cpu spread 2x": {"cpu_spread": 2.0},
        "cpu spread 8x": {"cpu_spread": 8.0},
        "nic spread 1x": {"nic_spread": 1.0},
        "nic spread 2x": {"nic_spread": 2.0},
        "pack 2x costlier": {"pack_cost": 4.0},
        "pack = unpack": {"pack_cost": 1.4, "unpack_cost": 1.4},
    }
    jobs = []
    for overrides in sweeps.values():
        jobs.extend(_finding_jobs(_cluster(p, **overrides), _cluster(2, **overrides)))
    results = evaluate(jobs)
    series: dict[str, dict[str, float]] = {}
    for index, label in enumerate(sweeps):
        series[label] = _findings(results[6 * index:6 * index + 6])
    # Appendix: the analytic cost model's version of the same table
    # (kernel-evaluated, no DES) — how much of each finding the clean
    # h-relation algebra already explains before runtime mechanisms.
    table = AsciiTable(
        "cost-model analog (vectorized kernels, T_slowroot/T_fastroot)",
        ["calibration", "gather@p", "gather@2", "bcast@p"],
    )
    for label, overrides in sweeps.items():
        model = _model_findings(
            _cluster(p, **overrides), _cluster(2, **overrides), 128_000
        )
        table.add_row(
            [label, model["gather@p"], model["gather@2"], model["bcast@p"]]
        )
    return ExperimentReport(
        experiment_id="sensitivity",
        title=f"Headline findings vs calibration knobs (p={p})",
        x_name="finding",
        series=series,
        notes=[
            "gather@p stays > 1 and bcast@p stays below it under every "
            "calibration: the paper's core contrast is robust",
            "gather@2 < 1 (the inversion) requires pack asymmetry and "
            "vanishes in the 'pack = unpack' row — matching the ablation",
            "both factors grow with either spread (more heterogeneity, "
            "more to exploit) but their ordering never flips",
            "the appendix table is the cost model's no-DES analog: the "
            "model sees the root-choice effect but not the pack-asymmetry "
            "inversion (gather@2 ~ 1), which needs the simulator's CPU "
            "mechanisms",
        ],
        extra=table.render(),
    )
