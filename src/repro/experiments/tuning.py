"""Tuned-vs-default schedules across the generator families.

The auto-tuner (:mod:`repro.tuning`) claims the expanded schedule
space — per-level flat/binomial fan-out, one-/two-phase selection,
segmentation — contains plans the paper's hand-picked defaults leave
on the table, and that its analytic-prune + DES-validate pipeline
finds them.  This experiment measures exactly that, on the PR-5
"big machine" generator families: for each family and problem size we
tune the collective, then report the Section-5.1 improvement factor

    T_default / T_tuned

(both DES-simulated; a factor above 1 means the tuned plan is faster).
Because the tuner always DES-validates the default plan alongside the
analytic shortlist and picks the winner on *simulated* time, the
factor is >= 1 by construction — the interesting question is where it
is meaningfully above 1 (latency-dominated broadcasts at small ``n``,
bimodal cloud machines) and where the defaults were already right
(bandwidth-dominated large-``n`` regimes, most gathers).

Decisions are tuned into a throwaway cache so the experiment is
self-contained; the persistent user cache is untouched.
"""

from __future__ import annotations

import tempfile
import typing as t

from repro.cluster.discover.generators import GENERATORS
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.tuning.cache import DecisionCache

__all__ = ["tuning_improvement", "TUNING_SCENARIOS"]

#: Family label -> (generator name, small-but-representative kwargs).
#: Sizes are kept modest so ``python -m repro.experiments all`` stays
#: fast; the benchmark suite exercises the 10^2..10^4-leaf end.
TUNING_SCENARIOS: dict[str, tuple[str, dict]] = {
    "fat_tree": ("fat_tree", dict(pods=2, racks_per_pod=2, hosts_per_rack=4)),
    "multi_rack": ("multi_rack", dict(racks=4, hosts_per_rack=4)),
    "cloud_spot_mix": (
        "cloud_spot_mix",
        dict(regions=2, zones_per_region=2, instances_per_zone=4),
    ),
    "multicore_nodes": (
        "multicore_nodes",
        dict(racks=2, nodes_per_rack=4, cores_per_node=2),
    ),
}


def tuning_improvement(
    ns: t.Sequence[int] = (64, 1_000, 20_000),
    families: t.Sequence[str] = tuple(TUNING_SCENARIOS),
    *,
    op: str = "broadcast",
    seed: int = 0,
) -> ExperimentReport:
    """Improvement factor of the tuned schedule over the default."""
    from repro.tuning.tuner import tune

    series: dict[str, dict[int, float]] = {}
    winners: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-tuning-") as scratch:
        cache = DecisionCache(scratch)
        for family in families:
            generator, kwargs = TUNING_SCENARIOS[family]
            topology = GENERATORS[generator](seed=seed, **kwargs)
            values: dict[int, float] = {}
            for n in ns:
                decision = tune(topology, op, int(n), seed=seed, cache=cache)
                values[int(n)] = improvement_factor(
                    decision.default_time, decision.simulated_time
                )
                if not decision.plan.is_default:
                    winners.append(
                        f"{family} n={n}: {decision.plan.key} "
                        f"({100 * decision.improvement:.1f}% faster)"
                    )
            series[family] = values
    notes = [
        "factor = T_default / T_tuned, both DES-simulated; >= 1 by "
        "construction (the default plan is always in the validated "
        "shortlist)",
        "expect the big wins at small n (latency-dominated: one-phase/"
        "binomial beat the default two-phase) and on the bimodal cloud "
        "machine; at large n the bandwidth-optimal defaults hold",
    ]
    if winners:
        notes.append("non-default winners: " + "; ".join(winners))
    else:
        notes.append("defaults were optimal everywhere (no tuned win)")
    return ExperimentReport(
        experiment_id="tuning",
        title=f"auto-tuned vs default {op} schedule (T_default / T_tuned)",
        x_name="n",
        series=series,
        notes=notes,
    )
