"""Goodput-vs-offered-load and latency-percentile curves for repro.serve.

The serving layer's headline claim is the classic open-loop shape: as
offered load rises, goodput tracks it 1:1 until the shared cluster
saturates (the *knee*), then flattens while admission control sheds
the excess and tail latency pins against the queue bound.  This
experiment sweeps one seeded session per offered rate over a fixed
mixed workload on the two-LAN campus machine and reports four series
against offered load: goodput, p50 latency, p99 latency, and the shed
fraction.

Determinism: arrivals and per-request latencies are pure functions of
the config seed (see :mod:`repro.serve.arrivals`), and every kernel
makespan flows through :func:`repro.perf.evaluate`'s deterministic
merge — one prewarmed :class:`~repro.serve.costs.StageCostModel` is
shared across all rate points, so under ``--jobs N`` the whole job
universe fans out in a single batch and the report is bit-identical at
any ``N``.
"""

from __future__ import annotations

import typing as t

from repro.experiments.improvement import ExperimentReport
from repro.serve.config import ArrivalSpec, PolicySpec, RequestKind, ServiceConfig

__all__ = ["serving_curves", "serving_config", "SERVING_RATES"]

#: Offered-load grid (requests per simulated second).  The knee of the
#: default workload on two-lans:3 sits around 24-32 req/s.
SERVING_RATES: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0)


def serving_config(
    rate: float,
    *,
    seed: int = 0,
    duration: float = 20.0,
    process: str = "poisson",
) -> ServiceConfig:
    """The experiment's session at one offered rate.

    Problem sizes are chosen so a single request costs ~80-150 ms of
    simulated time per subtree — large enough that the 2-slice machine
    saturates inside the swept rate range, small enough that the whole
    sweep's job universe prewars in well under a second of wall-clock.
    """
    return ServiceConfig(
        cluster="two-lans:3",
        arrival=ArrivalSpec(process=process, rate=rate, period=10.0, amplitude=0.6),
        workload=(
            RequestKind.from_dict(
                {"template": "interactive", "n": 300_000, "weight": 3}
            ),
            RequestKind.from_dict(
                {"template": "analytics", "n": 500_000, "weight": 2}
            ),
            RequestKind.from_dict({"template": "sort", "n": 400_000, "weight": 1}),
        ),
        policy=PolicySpec(queue_limit=32, max_batch=4, slo=2.0),
        duration=duration,
        seed=seed,
    )


def serving_curves(
    rates: t.Sequence[float] = SERVING_RATES,
    *,
    seed: int = 0,
    process: str = "poisson",
) -> ExperimentReport:
    """Sweep offered load; report goodput, latency percentiles, shed."""
    from repro.serve.costs import StageCostModel
    from repro.serve.placement import carve_slices
    from repro.serve.service import resolve_cluster, run_service

    base = serving_config(rates[0], seed=seed, process=process)
    slices = carve_slices(resolve_cluster(base.cluster), base.policy.placement)
    # One shared cost model: the job universe is independent of the
    # arrival rate, so every rate point reuses one prewarmed batch.
    model = StageCostModel(base, slices)

    goodput: dict[float, float] = {}
    p50: dict[float, float] = {}
    p99: dict[float, float] = {}
    shed: dict[float, float] = {}
    knee_rate, knee_goodput = rates[0], 0.0
    for rate in rates:
        report = run_service(
            serving_config(rate, seed=seed, process=process), costs=model
        )
        goodput[rate] = report.goodput
        p50[rate] = report.latency_p50
        p99[rate] = report.latency_p99
        shed[rate] = report.shed_fraction
        if report.goodput > knee_goodput:
            knee_rate, knee_goodput = rate, report.goodput
    return ExperimentReport(
        experiment_id="serve",
        title=(
            "open-loop serving on two-lans:3 — goodput and latency vs "
            "offered load"
        ),
        x_name="offered (req/s)",
        series={
            "goodput (req/s)": goodput,
            "p50 latency (s)": p50,
            "p99 latency (s)": p99,
            "shed fraction": shed,
        },
        notes=[
            "open-loop arrivals: load keeps coming whether or not the "
            "cluster keeps up (Poisson by default; --seed reseeds the "
            "whole session)",
            "goodput counts completions within the 2 s SLO per second of "
            "offered-arrival window; below the knee it tracks offered "
            "load ~1:1",
            f"knee: goodput peaks at {knee_goodput:.3g} req/s around "
            f"{knee_rate:g} req/s offered; past it admission control "
            "sheds the excess and p99 pins against the bounded queue",
            "bit-identical at any --jobs N: the kernel-cost universe is "
            "prewarmed through one evaluate() batch, the service loop "
            "replays it serially",
        ],
    )
