"""Heterogeneous scaling: application speedup vs machine count.

The dissertation the paper summarises evaluates applications on growing
machine subsets; this experiment does the same on the simulated
testbed.  For each application and each ``p``, we report the
*heterogeneous speedup*

    S(p) = T_fastest_alone / T_p

(time on the single fastest machine over time on the p-machine
cluster) and the *efficiency* against the cluster's aggregate speed

    E(p) = S(p) / (sum of the p machines' speeds / fastest speed).

A perfectly balanced, communication-free program would hold E(p) = 1;
the gap is the communication + synchronisation overhead the model
prices.
"""

from __future__ import annotations

import typing as t

from repro.apps import run_histogram, run_jacobi, run_matvec, run_sample_sort
from repro.cluster.presets import ucf_testbed
from repro.experiments.improvement import ExperimentReport

__all__ = ["app_scaling"]

#: Per-application runner and problem size for the sweep.
_APPS: dict[str, tuple[t.Callable[..., t.Any], dict]] = {
    "sample_sort": (run_sample_sort, {"n": 200_000}),
    "matvec": (run_matvec, {"n": 1_000}),
    "histogram": (run_histogram, {"n": 2_000_000}),
    "jacobi": (run_jacobi, {"n": 500_000, "max_iterations": 10, "check_every": 100}),
}


def _run(app: str, topology) -> float:
    runner, config = _APPS[app]
    config = dict(config)
    n = config.pop("n")
    return runner(topology, n, **config).time


def app_scaling(
    processor_counts: t.Sequence[int] = (1, 2, 4, 6, 8, 10),
    apps: t.Sequence[str] = tuple(_APPS),
    *,
    metric: str = "speedup",
) -> ExperimentReport:
    """Speedup (or efficiency) of each application vs ``p``.

    ``metric="speedup"`` reports ``S(p)``; ``"efficiency"`` reports
    ``E(p)`` against the heterogeneous capacity bound.
    """
    if metric not in ("speedup", "efficiency"):
        raise ValueError(f"metric must be 'speedup' or 'efficiency', got {metric!r}")
    baselines = {app: _run(app, ucf_testbed(1)) for app in apps}
    series: dict[str, dict[int, float]] = {app: {} for app in apps}
    for p in processor_counts:
        topology = ucf_testbed(p)
        fastest_rate = max(m.cpu_rate for m in topology.machines)
        capacity = sum(m.cpu_rate for m in topology.machines) / fastest_rate
        for app in apps:
            speedup = baselines[app] / _run(app, topology)
            series[app][p] = speedup if metric == "speedup" else speedup / capacity
    return ExperimentReport(
        experiment_id="scaling",
        title=f"Application {metric} on the heterogeneous testbed",
        x_name="p",
        series=series,
        notes=[
            "S(p) = T(fastest machine alone) / T(p machines), balanced workloads",
            "the capacity bound at p=10 is ~5.2x (10 machines spanning a 4x "
            "speed range), so even ideal scaling stays well below p",
            "compute-heavy apps (histogram, jacobi) scale best; "
            "communication-bound ones (sample_sort's exchange, matvec's "
            "vector all-gather) saturate early — adding one slow machine "
            "at p=2 can even hurt",
        ],
    )
