"""Heterogeneous scaling: application speedup vs machine count.

The dissertation the paper summarises evaluates applications on growing
machine subsets; this experiment does the same on the simulated
testbed.  For each application and each ``p``, we report the
*heterogeneous speedup*

    S(p) = T_fastest_alone / T_p

(time on the single fastest machine over time on the p-machine
cluster) and the *efficiency* against the cluster's aggregate speed

    E(p) = S(p) / (sum of the p machines' speeds / fastest speed).

A perfectly balanced, communication-free program would hold E(p) = 1;
the gap is the communication + synchronisation overhead the model
prices.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.presets import ucf_testbed
from repro.experiments.improvement import ExperimentReport
from repro.model.kernels import BroadcastKernel, GatherKernel
from repro.model.params import calibrate
from repro.perf import SimJob, evaluate
from repro.util.tables import AsciiTable

__all__ = ["app_scaling"]

#: Per-application problem-size configuration for the sweep.
_APPS: dict[str, dict] = {
    "sample_sort": {"n": 200_000},
    "matvec": {"n": 1_000},
    "histogram": {"n": 2_000_000},
    "jacobi": {"n": 500_000, "max_iterations": 10, "check_every": 100},
}


def _job(app: str, topology) -> SimJob:
    config = dict(_APPS[app])
    return SimJob.app(app, topology, config.pop("n"), **config)


def app_scaling(
    processor_counts: t.Sequence[int] = (1, 2, 4, 6, 8, 10),
    apps: t.Sequence[str] = tuple(_APPS),
    *,
    metric: str = "speedup",
) -> ExperimentReport:
    """Speedup (or efficiency) of each application vs ``p``.

    ``metric="speedup"`` reports ``S(p)``; ``"efficiency"`` reports
    ``E(p)`` against the heterogeneous capacity bound.
    """
    if metric not in ("speedup", "efficiency"):
        raise ValueError(f"metric must be 'speedup' or 'efficiency', got {metric!r}")
    apps = tuple(apps)
    jobs = [_job(app, ucf_testbed(1)) for app in apps]
    for p in processor_counts:
        topology = ucf_testbed(p)
        jobs.extend(_job(app, topology) for app in apps)
    results = evaluate(jobs)
    baselines = {app: results[index].time for index, app in enumerate(apps)}
    series: dict[str, dict[int, float]] = {app: {} for app in apps}
    for block, p in enumerate(processor_counts):
        topology = ucf_testbed(p)
        fastest_rate = max(m.cpu_rate for m in topology.machines)
        capacity = sum(m.cpu_rate for m in topology.machines) / fastest_rate
        for offset, app in enumerate(apps):
            time = results[(1 + block) * len(apps) + offset].time
            speedup = baselines[app] / time
            series[app][p] = speedup if metric == "speedup" else speedup / capacity
    # Appendix: what the cost model prices communication at per p —
    # the analytic gather/broadcast cost (vectorized kernels, no DES)
    # next to the capacity bound the speedups are judged against.
    n_comm = 128_000
    table = AsciiTable(
        f"analytic communication cost vs p (kernels, n={n_comm} items)",
        ["p", "capacity bound", "gather seconds", "broadcast seconds"],
    )
    ns = np.array([n_comm], dtype=np.int64)
    for p in processor_counts:
        topology = ucf_testbed(p)
        fastest_rate = max(m.cpu_rate for m in topology.machines)
        capacity = sum(m.cpu_rate for m in topology.machines) / fastest_rate
        params = calibrate(topology)
        gather_cost = float(GatherKernel(params).evaluate(ns).totals[0])
        bcast_cost = float(BroadcastKernel(params).evaluate(ns).totals[0])
        table.add_row([p, capacity, gather_cost, bcast_cost])
    return ExperimentReport(
        experiment_id="scaling",
        title=f"Application {metric} on the heterogeneous testbed",
        x_name="p",
        series=series,
        notes=[
            "S(p) = T(fastest machine alone) / T(p machines), balanced workloads",
            "the capacity bound at p=10 is ~5.2x (10 machines spanning a 4x "
            "speed range), so even ideal scaling stays well below p",
            "compute-heavy apps (histogram, jacobi) scale best; "
            "communication-bound ones (sample_sort's exchange, matvec's "
            "vector all-gather) saturate early — adding one slow machine "
            "at p=2 can even hurt",
            "the appendix prices the collectives analytically: the "
            "model's communication cost grows with p while the capacity "
            "bound saturates — the scissors behind the efficiency fall",
        ],
        extra=table.render(),
    )
