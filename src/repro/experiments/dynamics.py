"""Graceful degradation under churn: goodput and p99 vs churn rate.

The robustness story of :mod:`repro.dynamics` is that a serving session
degrades *gracefully* when machines leave and rejoin mid-run: requests
caught on a dying slice are re-dispatched onto the surviving members
(bounded retries, then shed), placement re-plans per membership epoch,
and the visible cost is a latency tail and a degraded-completion
fraction — not a cliff.  This experiment sweeps seeded Poisson churn
(:func:`repro.dynamics.churn_plan`) at a fixed offered load on the
two-LAN campus machine and reports goodput, p99 latency, the fraction
of completions served on a degraded slice, and the shed fraction
against the churn rate.  Churn rate 0 is the empty plan — bit-identical
to the static session, so the leftmost point doubles as the no-op
baseline.

Determinism: the churn timeline is a pure function of ``(machines,
rate, duration, seed)`` via ``RngStream(seed, "dynamics", "churn")``,
arrivals are pure functions of the config seed, and each churn point
prewars its own expanded slice table (degraded variants differ per
plan) through one deterministic :func:`repro.perf.evaluate` batch.
"""

from __future__ import annotations

import typing as t

from repro.experiments.improvement import ExperimentReport
from repro.experiments.serving import serving_config

__all__ = ["dynamics_curves", "CHURN_RATES", "DYNAMICS_OFFERED_RATE"]

#: Churn grid in leave events per simulated second.  At 20 s sessions
#: this spans "nothing happens" to "a machine dies every second".
CHURN_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)

#: Offered load for every point: just below the static knee, so lost
#: capacity shows up as queueing/shedding rather than idle headroom.
DYNAMICS_OFFERED_RATE = 16.0


def dynamics_curves(
    churn_rates: t.Sequence[float] = CHURN_RATES,
    *,
    seed: int = 0,
    offered_rate: float = DYNAMICS_OFFERED_RATE,
) -> ExperimentReport:
    """Sweep churn rate; report goodput, p99, degraded and shed fractions."""
    from repro.dynamics import churn_plan
    from repro.serve.service import resolve_cluster, run_service

    base = serving_config(offered_rate, seed=seed)
    machines = [m.name for m in resolve_cluster(base.cluster).machines]

    goodput: dict[float, float] = {}
    p99: dict[float, float] = {}
    degraded: dict[float, float] = {}
    shed: dict[float, float] = {}
    max_epochs = 1
    for rate in churn_rates:
        plan = churn_plan(
            machines, rate=rate, duration=base.duration, seed=seed
        )
        report = run_service(base, dynamics=plan)
        goodput[rate] = report.goodput
        p99[rate] = report.latency_p99
        degraded[rate] = (
            report.degraded / report.completed if report.completed else 0.0
        )
        shed[rate] = (
            (report.shed + report.degraded_shed) / report.offered
            if report.offered
            else 0.0
        )
        max_epochs = max(max_epochs, report.epochs)
    return ExperimentReport(
        experiment_id="dynamics",
        title=(
            "serving under churn on two-lans:3 — goodput and p99 vs "
            "churn rate"
        ),
        x_name="churn (leaves/s)",
        series={
            "goodput (req/s)": goodput,
            "p99 latency (s)": p99,
            "degraded fraction": degraded,
            "shed fraction": shed,
        },
        notes=[
            f"fixed offered load {offered_rate:g} req/s; churn is seeded "
            "Poisson leave/rejoin (churn_plan), outage mean duration/10",
            "churn 0 is the empty DynamicPlan — bit-identical to the "
            "static session, the graceful-degradation baseline",
            "degraded fraction counts completions served on a reduced "
            "slice variant; shed fraction adds requests dropped after "
            "exhausting max_redispatch to admission-control sheds",
            f"membership epochs peak at {max_epochs} across the sweep; "
            "placement re-plans against each epoch's surviving members",
        ],
    )
