"""Robustness: Fig. 3/4 improvement factors under injected faults.

The paper's testbed is explicitly *non-dedicated*: "the network of
workstations used in the experiments was not dedicated" and observed
times fluctuate with other users' load.  This experiment asks whether
the paper's two headline effects survive that reality:

* ``T_s/T_f`` — rooting on the fastest processor still wins;
* ``T_u/T_b`` — BYTEmark-balanced workloads still win (where they did);

re-measured under deterministic fault plans from :mod:`repro.faults`:

* **straggler** — one mid-ranked workstation slowed 4x for the whole
  run (someone else's job landed on it);
* **congestion** — the shared Ethernet's effective gap tripled and
  2 ms of extra latency added (cross-traffic);
* **flaky** — stochastic message drops/delays, survived via a
  retry :class:`~repro.pvm.DeliveryPolicy` (timeout + bounded
  exponential backoff).

Every factor should remain finite and the whole report is a pure
function of ``seed`` — re-running with the same seed reproduces it
bit-for-bit.
"""

from __future__ import annotations

import typing as t

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.perf import SimJob, evaluate
from repro.faults import (
    DeliveryPolicy,
    FaultPlan,
    congestion_plan,
    flaky_network_plan,
    straggler_plan,
)
from repro.util.units import BYTES_PER_INT, kb

__all__ = [
    "ROBUSTNESS_SIZE_KB",
    "ROBUSTNESS_PROCESSOR_COUNTS",
    "robustness_plans",
    "robustness_report",
]

#: One representative problem size (the paper's mid-range point).
ROBUSTNESS_SIZE_KB = 250

#: Swept processor counts (subset of the testbed's 2-10 range).
ROBUSTNESS_PROCESSOR_COUNTS: tuple[int, ...] = (2, 4, 6, 8, 10)

#: Retry policy used under the flaky plan: generous timeout, 3 retries.
FLAKY_DELIVERY = DeliveryPolicy.retry(3, timeout=0.25)


def _items(size_kb: int) -> int:
    return kb(size_kb) // BYTES_PER_INT


def robustness_plans(topology) -> dict[str, tuple[FaultPlan, DeliveryPolicy | None]]:
    """The scenario table: label -> (plan, delivery policy).

    The straggler is a mid-ranked machine (slowing the fastest or
    slowest would change *which* machine the root policies pick, not
    just how long things take); congestion hits the shared LAN.
    """
    machines = topology.machines
    straggler = machines[len(machines) // 2].name
    network = topology.clusters[0].network.name
    return {
        "baseline": (FaultPlan.empty(), None),
        "straggler": (straggler_plan(straggler, factor=4.0), None),
        "congestion": (
            congestion_plan(network, gap_factor=3.0, extra_latency=2e-3),
            None,
        ),
        "flaky": (
            flaky_network_plan(network, drop_prob=0.02, delay_prob=0.05,
                               delay_mean=5e-3),
            FLAKY_DELIVERY,
        ),
    }


def robustness_report(
    processor_counts: t.Sequence[int] = ROBUSTNESS_PROCESSOR_COUNTS,
    *,
    size_kb: int = ROBUSTNESS_SIZE_KB,
    seed: int = 1,
) -> ExperimentReport:
    """Improvement factors under fault plans, one series per scenario.

    Four metric blocks (gather/broadcast x T_s/T_f, T_u/T_b), each
    with one series per fault scenario; the baseline series reproduces
    the fault-free figures at this size.
    """
    n = _items(size_kb)
    # Six sims per (p, scenario) grid point: gather {slow root, fast
    # root, balanced}, broadcast {slow root, fast root, balanced}.
    grid: list[tuple[int, str]] = []
    jobs: list[SimJob] = []
    for p in processor_counts:
        topology = ucf_testbed(p)
        for label, (plan, delivery) in robustness_plans(topology).items():
            grid.append((p, label))
            kwargs: dict[str, t.Any] = dict(
                seed=seed, faults=plan, fault_seed=seed, delivery=delivery
            )
            jobs.append(SimJob.collective(
                "gather", topology, n, root=RootPolicy.SLOWEST,
                workload=WorkloadPolicy.EQUAL, **kwargs))
            jobs.append(SimJob.collective(
                "gather", topology, n, root=RootPolicy.FASTEST,
                workload=WorkloadPolicy.EQUAL, **kwargs))
            jobs.append(SimJob.collective(
                "gather", topology, n, root=RootPolicy.FASTEST,
                workload=WorkloadPolicy.BALANCED, **kwargs))
            jobs.append(SimJob.collective(
                "broadcast", topology, n, root=RootPolicy.SLOWEST, **kwargs))
            jobs.append(SimJob.collective(
                "broadcast", topology, n, root=RootPolicy.FASTEST, **kwargs))
            jobs.append(SimJob.collective(
                "broadcast", topology, n, root=RootPolicy.FASTEST,
                balanced_shares=True, **kwargs))
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (p, label) in enumerate(grid):
        t_s, t_f, t_b, b_s, b_f, b_b = (
            result.time for result in results[6 * index:6 * index + 6]
        )
        series.setdefault(f"gather Ts/Tf [{label}]", {})[p] = (
            improvement_factor(t_s, t_f)
        )
        series.setdefault(f"gather Tu/Tb [{label}]", {})[p] = (
            improvement_factor(t_f, t_b)
        )
        series.setdefault(f"bcast Ts/Tf [{label}]", {})[p] = (
            improvement_factor(b_s, b_f)
        )
        series.setdefault(f"bcast Tu/Tb [{label}]", {})[p] = (
            improvement_factor(b_f, b_b)
        )
    return ExperimentReport(
        experiment_id="robustness",
        title=(
            f"Fig. 3/4 improvement factors under fault injection "
            f"({size_kb} KB, seed={seed})"
        ),
        x_name="p",
        series=series,
        notes=[
            "baseline series = the fault-free Fig. 3/4 points at this size",
            "expected: Ts/Tf stays > 1 for p > 2 under every scenario "
            "(the fast-root advantage survives stragglers and congestion)",
            "flaky scenario runs with retry(3, timeout=0.25s) delivery; "
            "drops cost a timeout + backoff, inflating absolute times "
            "but the *factors* stay finite",
            "deterministic: same seed -> bit-identical report",
        ],
    )
