"""Section 3/4 analysis experiments: Table 1, phase comparisons,
hierarchy penalties, and model fidelity.

These regenerate the paper's *analytic* artifacts (the Table 1
parameter inventory and the Section-4 cost comparisons) and validate
the Section 3.4 claim that the cost model predicts program behaviour.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.presets import (
    ETHERNET_100,
    flat_cluster,
    multi_lan,
    smp_sgi_lan,
    two_lans,
    ucf_testbed,
)
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.perf import SimJob, evaluate
from repro.model.kernels import BroadcastKernel, GatherKernel
from repro.model.params import calibrate
from repro.model.predict import (
    paper_broadcast_hbsp1_one_phase,
    paper_broadcast_hbsp1_two_phase,
    paper_broadcast_hbsp2_super2_one_phase,
    paper_broadcast_hbsp2_super2_two_phase,
)
from repro.util.tables import AsciiTable
from repro.util.units import BYTES_PER_INT, kb

__all__ = [
    "table1_parameters",
    "sec4_broadcast_phases",
    "sec4_gather_hierarchy",
    "model_fidelity",
]


def _items(size_kb: float) -> int:
    return int(kb(size_kb)) // BYTES_PER_INT


def table1_parameters() -> ExperimentReport:
    """Table 1: the model parameters of the calibrated machines.

    Renders the full ``(m, g, r, L, c)`` inventory for the HBSP^1
    testbed and the Figure-1 HBSP^2 machine.
    """
    testbed = ucf_testbed(10)
    fig1 = smp_sgi_lan()
    p_testbed = calibrate(testbed)
    p_fig1 = calibrate(fig1)
    series = {
        "r_0j (testbed)": {
            m.name: p_testbed.r_of(0, j) for j, m in enumerate(testbed.machines)
        },
        "c_0j (testbed)": {
            m.name: p_testbed.c_of(0, j) for j, m in enumerate(testbed.machines)
        },
    }
    extra = "\n\n".join([p_testbed.describe(), p_fig1.describe()])
    return ExperimentReport(
        experiment_id="table1",
        title="Model parameters (g, r, L, c) of the calibrated machines",
        x_name="machine",
        series=series,
        notes=[
            "r is normalised so the fastest machine has r = 1 (Section 3.3)",
            "c is proportional to machine speed and sums to 1 on level 0",
        ],
        extra=extra,
    )


def sec4_broadcast_phases(
    processor_counts: t.Sequence[int] = tuple(range(2, 11)),
    size_kb: int = 500,
    *,
    seed: int = 0,
) -> ExperimentReport:
    """Section 4.4: one-phase vs two-phase broadcast, analysis + simulation.

    Reports the improvement factor ``T_one/T_two`` per ``p`` for three
    NIC-slowness regimes of an HBSP^1 cluster, plus the HBSP^2
    super²-step regime split (``r_{1,s}`` vs ``m_{2,0}``) as an
    analytic appendix.
    """
    n = _items(size_kb)
    regimes = (("r_s=1.25", 1.25), ("r_s=4", 4.0), ("r_s=12", 12.0))
    grid = [(label, slow, p) for label, slow in regimes for p in processor_counts]
    jobs = []
    for _label, nic_slowdown, p in grid:
        topology = flat_cluster(p, nic_slowdown=nic_slowdown)
        for phases in ("one", "two"):
            jobs.append(
                SimJob.collective("broadcast", topology, n, phases=phases, seed=seed)
            )
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (label, _slow, p) in enumerate(grid):
        t_one, t_two = results[2 * index].time, results[2 * index + 1].time
        series.setdefault(f"sim {label}", {})[p] = improvement_factor(t_one, t_two)
    # Exact-model counterpart of each sim series: both phase schemes of
    # every calibrated cluster, each topology one batched kernel grid.
    for label, nic_slowdown, p in grid:
        params = calibrate(flat_cluster(p, nic_slowdown=nic_slowdown))
        model = BroadcastKernel(params).evaluate(
            np.array([n, n], dtype=np.int64), phases=["one", "two"]
        )
        m_one, m_two = model.totals
        series.setdefault(f"model {label}", {})[p] = improvement_factor(
            float(m_one), float(m_two)
        )

    # Analytic appendix: the paper's simplified HBSP^1 formulas and the
    # HBSP^2 super2-step comparison in both regimes.
    table = AsciiTable(
        "analytic one- vs two-phase (paper formulas, 500 KB)",
        ["machine", "p", "one-phase", "two-phase", "one/two"],
    )
    for p in processor_counts:
        params = calibrate(flat_cluster(p, nic_slowdown=4.0))
        one = paper_broadcast_hbsp1_one_phase(params, n)
        two = paper_broadcast_hbsp1_two_phase(params, n)
        table.add_row([f"HBSP^1 r_s=4 p={p}", p, one, two, one / two])
    table2 = AsciiTable(
        "analytic HBSP^2 super2-step (regimes of Section 4.4)",
        ["r_1s", "m_20", "regime", "one-phase", "two-phase", "one/two"],
    )
    # The paper's case split: if r_{1,s} > m_{2,0} the one-phase step
    # costs g·r_{1,s}·n (sender-bound disappears) and two-phase loses;
    # otherwise one-phase pays g·n·m and two-phase wins for m > r_1s+1.
    # r_{1,s} is the slowest *coordinator*, so the slow LANs must be
    # uniformly slow (a slow LAN with one fast machine has a fast
    # coordinator) — hence the per-LAN slowdown construction here.
    from repro.cluster.machine import MachineSpec
    from repro.cluster.topology import Cluster, ClusterTopology

    def _campus_with_slow_lans(lan_count: int, worst_r: float) -> ClusterTopology:
        lans = []
        for i in range(lan_count):
            factor = worst_r ** (i / max(1, lan_count - 1))
            machines = [
                MachineSpec(
                    f"lan{i}-m{j}",
                    cpu_rate=1e8 / factor,
                    nic_gap=8e-8 * factor,
                )
                for j in range(3)
            ]
            lans.append(Cluster(f"lan{i}", ETHERNET_100, machines))
        from repro.cluster.presets import CAMPUS_ATM

        return ClusterTopology(Cluster("campus", CAMPUS_ATM, lans))

    for lan_count in (2, 4, 8):
        for worst_r in (1.25, 6.0, 20.0):
            topo2 = _campus_with_slow_lans(lan_count, worst_r)
            params2 = calibrate(topo2)
            one2 = paper_broadcast_hbsp2_super2_one_phase(params2, n)
            two2 = paper_broadcast_hbsp2_super2_two_phase(params2, n)
            r_1s = params2.slowest_r(1)
            m_20 = params2.m_of(2, 0)
            table2.add_row(
                [
                    r_1s,
                    m_20,
                    "r_1s > m" if r_1s > m_20 else "r_1s <= m",
                    one2,
                    two2,
                    one2 / two2,
                ]
            )
    return ExperimentReport(
        experiment_id="sec4-bcast-phases",
        title="One-phase vs two-phase broadcast, T_one/T_two",
        x_name="p",
        series=series,
        notes=[
            "expected: two-phase wins (factor > 1) once p exceeds a small "
            "threshold, and the win grows with p (one-phase costs ~g*n*p)",
            "expected: the crossover arrives later for larger r_s, per the "
            "paper's r_{1,s} vs m regime analysis",
        ],
        extra="\n\n".join([table.render(), table2.render()]),
    )


def sec4_gather_hierarchy(
    sizes_kb: t.Sequence[float] = (10, 50, 100, 250, 500, 1000),
    *,
    seed: int = 0,
) -> ExperimentReport:
    """Sections 4.2–4.3: h-relation balance and the hierarchy penalty.

    Series 1 — ``T_hbsp2 / T_hbsp1``: the same ten machines as one flat
    Ethernet vs two LANs behind a campus backbone; the ratio shrinks as
    ``n`` grows ("the problem size must outweigh the cost of performing
    the extra level of communication and synchronization").

    Series 2 — ``T_oversized / T_balanced``: the Section 4.2 pathology
    where a slow machine's ``c_j`` is too large (``r_j·c_j > 1``), so
    its send dominates the h-relation.
    """
    from repro.cluster.network import NetworkSpec

    flat = flat_cluster(10)
    # Same wire bandwidth as the flat Ethernet, but an order of
    # magnitude more latency and synchronisation overhead: the penalty
    # is pure hierarchy cost, so the ratio falls toward 1-ish as the
    # problem grows and the fixed costs amortise (Section 4.3).
    slow_sync_backbone = NetworkSpec(
        "campus-sync", gap=8e-8, latency=5e-3, sync_base=2e-2, sync_per_member=2e-3
    )
    hier = two_lans(5, backbone=slow_sync_backbone)
    testbed = ucf_testbed(6)
    p = testbed.num_machines
    # The oversized-share pathology pins half the items on the slowest
    # machine; that pid is a property of the topology's calibration, so
    # resolve it once without simulating anything.
    from repro.hbsplib.runtime import HbspRuntime

    slow = HbspRuntime(testbed).slowest_pid
    grid = list(sizes_kb)
    jobs = []
    for size_kb in grid:
        n = _items(size_kb)
        jobs.append(SimJob.collective("gather", flat, n, seed=seed))
        jobs.append(SimJob.collective("gather", hier, n, seed=seed))
        jobs.append(SimJob.collective("gather", testbed, n, seed=seed))
        # Oversized share: give the slowest machine 50% of the items.
        counts = [0] * p
        counts[slow] = n // 2
        rest, extra = divmod(n - counts[slow], p - 1)
        others = [j for j in range(p) if j != slow]
        for idx, j in enumerate(others):
            counts[j] = rest + (1 if idx < extra else 0)
        jobs.append(SimJob.collective("gather", testbed, n, workload=counts, seed=seed))
    results = evaluate(jobs)
    series: dict[str, dict[float, float]] = {"hier/flat": {}, "oversized/balanced": {}}
    for index, size_kb in enumerate(grid):
        t_flat, t_hier, balanced, oversized = results[4 * index:4 * index + 4]
        series["hier/flat"][size_kb] = t_hier.time / t_flat.time
        series["oversized/balanced"][size_kb] = oversized.time / balanced.time
    # Model-side curve: the same hier/flat ratio from the analytic cost
    # kernels — every size of both machines in one batched pass each.
    ns = np.array([_items(size_kb) for size_kb in grid], dtype=np.int64)
    hier_kernel = GatherKernel(calibrate(hier))
    flat_totals = GatherKernel(calibrate(flat)).evaluate(ns).totals
    hier_totals = hier_kernel.evaluate(ns).totals
    series["model hier/flat"] = {
        size_kb: float(t_hier / t_flat)
        for size_kb, t_hier, t_flat in zip(grid, hier_totals, flat_totals)
    }

    # Analytic appendix: per-level ledger of the hierarchical gather.
    ledger = hier_kernel.evaluate(
        np.array([_items(500)], dtype=np.int64)
    ).ledger(0)
    return ExperimentReport(
        experiment_id="sec4-gather-hierarchy",
        title="Gather: hierarchy penalty and unbalanced h-relations",
        x_name="KB",
        series=series,
        notes=[
            "expected: hier/flat falls as n grows (the extra level's L and "
            "latency overheads amortise; same wire bandwidth both ways)",
            "expected: oversized/balanced > 1 (the overloaded slow sender "
            "dominates the heterogeneous h-relation, Section 4.2)",
        ],
        extra=ledger.describe(),
    )


def _rankdata(values: t.Sequence[float]) -> np.ndarray:
    """Ranks 1..n with ties sharing their average rank."""
    arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=np.float64)
    start = 0
    while start < arr.size:
        stop = start
        while stop + 1 < arr.size and arr[order[stop + 1]] == arr[order[start]]:
            stop += 1
        ranks[order[start:stop + 1]] = (start + stop) / 2 + 1
        start = stop + 1
    return ranks


def _spearman(x: t.Sequence[float], y: t.Sequence[float]) -> float:
    """Spearman rank correlation (Pearson's on tie-averaged ranks).

    Equivalent to ``scipy.stats.spearmanr`` for 1-D samples, without
    dragging in the scipy import — which would otherwise dominate this
    experiment's wall time.
    """
    return float(np.corrcoef(_rankdata(x), _rankdata(y))[0, 1])


def model_fidelity(
    size_kb: int = 250,
    *,
    seed: int = 0,
) -> ExperimentReport:
    """Section 3.4: does the cost model predict simulated behaviour?

    Runs every collective on three machines (HBSP^1/HBSP^2/varied) and
    reports the simulated/predicted time ratio per case plus the
    Spearman rank correlation between the two across cases (the
    'predictability' the HBSP model family aims for).
    """
    n = _items(size_kb)
    cases: list[tuple[str, str, int, dict]] = [
        ("gather", "gather", n, {}),
        ("broadcast-1p", "broadcast", n, {"phases": "one"}),
        ("broadcast-2p", "broadcast", n, {"phases": "two"}),
        ("scatter", "scatter", n, {}),
        ("reduce", "reduce", n // 10, {}),
        ("allgather", "allgather", n, {"strategy": "direct"}),
        ("alltoall", "alltoall", n, {}),
        ("scan", "scan", n // 10, {}),
    ]
    topologies = (
        ("HBSP^1 testbed", ucf_testbed(8)),
        ("HBSP^2 fig1", smp_sgi_lan()),
    )
    jobs = [
        SimJob.collective(op, topology, count, seed=seed, **kwargs)
        for _topo_label, topology in topologies
        for _name, op, count, kwargs in cases
    ]
    results = evaluate(jobs)
    series: dict[str, dict[str, float]] = {}
    notes: list[str] = []
    for block, (topo_label, _topology) in enumerate(topologies):
        simulated: list[float] = []
        predicted: list[float] = []
        points: dict[str, float] = {}
        for offset, (name, _op, _count, _kwargs) in enumerate(cases):
            result = results[block * len(cases) + offset]
            simulated.append(result.time)
            predicted.append(result.predicted_time)
            points[name] = result.time / result.predicted_time
        series[topo_label] = points
        rho = _spearman(simulated, predicted)
        notes.append(f"{topo_label}: Spearman rank correlation sim~pred = {rho:.3f}")
    notes.append(
        "ratios > 1 are expected: the model omits pack/unpack CPU time and "
        "per-message overheads; what matters is stable ordering (rank corr.)"
    )
    return ExperimentReport(
        experiment_id="model-vs-sim",
        title="Cost-model fidelity: simulated time / predicted time",
        x_name="collective",
        series=series,
        notes=notes,
    )
