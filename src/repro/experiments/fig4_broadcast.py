"""Figure 4: one-to-all broadcast performance on the simulated testbed.

* **Fig. 4(a)** — improvement factor ``T_s / T_f`` of rooting the
  two-phase broadcast on the fastest processor.
* **Fig. 4(b)** — improvement factor ``T_u / T_b`` of balancing the
  two-phase first-phase shares by ``c_j``.

The HBSP^k analysis predicts both factors stay near 1: "the broadcast
operation ... effectively cannot exploit heterogeneity.  Since the
slowest processor must receive ``n`` items, its cost will dictate the
complexity of the algorithm."
"""

from __future__ import annotations

import typing as t

from repro.bytemark.suite import simulate_scores
from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy
from repro.perf import SimJob, evaluate
from repro.experiments.fig3_gather import (
    DEFAULT_NOISE_SIGMA,
    PROBLEM_SIZES_KB,
    PROCESSOR_COUNTS,
    _items,
)
from repro.experiments.improvement import ExperimentReport, improvement_factor

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.collectives.schedules import SchedulePolicy

__all__ = ["fig4a_broadcast_root", "fig4b_broadcast_balance"]


def fig4a_broadcast_root(
    sizes_kb: t.Sequence[int] = PROBLEM_SIZES_KB,
    processor_counts: t.Sequence[int] = PROCESSOR_COUNTS,
    *,
    seed: int = 0,
    schedule: "SchedulePolicy | str | None" = None,
) -> ExperimentReport:
    """Fig. 4(a): two-phase broadcast ``T_s/T_f`` vs ``p``.

    ``schedule="tuned"`` replaces the fixed two-phase schedule with the
    auto-tuned plan for each ``(machine, n, root)`` grid point.
    """
    from repro.collectives.schedules import resolve_plan

    grid = [(size_kb, p) for size_kb in sizes_kb for p in processor_counts]
    jobs = []
    for size_kb, p in grid:
        topology = ucf_testbed(p)
        for root in (RootPolicy.SLOWEST, RootPolicy.FASTEST):
            kwargs: dict[str, t.Any] = {}
            plan = resolve_plan(
                topology, "broadcast", _items(size_kb), schedule, root=root
            )
            if plan is not None:
                kwargs["plan"] = plan
            jobs.append(
                SimJob.collective(
                    "broadcast", topology, _items(size_kb), root=root,
                    phases="two", seed=seed, **kwargs,
                )
            )
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (size_kb, p) in enumerate(grid):
        t_s, t_f = results[2 * index].time, results[2 * index + 1].time
        series.setdefault(f"{size_kb} KB", {})[p] = improvement_factor(t_s, t_f)
    return ExperimentReport(
        experiment_id="fig4a",
        title="Broadcast performance, T_s/T_f (fast root vs slow root)",
        x_name="p",
        series=series,
        notes=[
            "expected shape: negligible improvement (factor stays near 1)",
            "residual benefit comes from P_f distributing the n/p shares "
            "during the first phase — exactly the paper's reading",
        ],
    )


def fig4b_broadcast_balance(
    sizes_kb: t.Sequence[int] = PROBLEM_SIZES_KB,
    processor_counts: t.Sequence[int] = PROCESSOR_COUNTS,
    *,
    seed: int = 0,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    score_seed: int = 2001,
) -> ExperimentReport:
    """Fig. 4(b): two-phase broadcast ``T_u/T_b`` vs ``p``.

    ``T_b`` distributes the first-phase shares proportionally to the
    noisy BYTEmark ``c_j`` (``P_j`` receives ``c_j·n`` in phase one);
    ``T_u`` uses equal shares.
    """
    grid = [(size_kb, p) for size_kb in sizes_kb for p in processor_counts]
    jobs = []
    for size_kb, p in grid:
        topology = ucf_testbed(p)
        scores = simulate_scores(topology, noise_sigma=noise_sigma, seed=score_seed)
        for balanced in (False, True):
            jobs.append(
                SimJob.collective(
                    "broadcast", topology, _items(size_kb), root=RootPolicy.FASTEST,
                    phases="two", balanced_shares=balanced, scores=scores, seed=seed,
                )
            )
    results = evaluate(jobs)
    series: dict[str, dict[int, float]] = {}
    for index, (size_kb, p) in enumerate(grid):
        t_u, t_b = results[2 * index].time, results[2 * index + 1].time
        series.setdefault(f"{size_kb} KB", {})[p] = improvement_factor(t_u, t_b)
    return ExperimentReport(
        experiment_id="fig4b",
        title="Broadcast performance, T_u/T_b (balanced vs equal shares)",
        x_name="p",
        series=series,
        notes=[
            "expected shape: no benefit (factor ~1, sometimes below)",
            "driver: every processor must receive all n items, so share "
            "balancing cannot help (Section 5.3)",
        ],
    )
