"""Ablations: which simulator mechanisms produce which paper findings.

DESIGN.md §7 claims three runtime effects explain the paper's
experimental curves beyond what the clean cost model predicts.  Each
ablation removes one mechanism and re-measures the finding it is
supposed to produce:

* **pack-cost asymmetry** (packing costs more CPU than unpacking) →
  removing it kills the Fig. 3(a) inversion at p = 2;
* **NIC drain serialization** (one port, transfers queue) → removing
  it flattens the growth-with-p of the Fig. 3(a) improvement;
* **rank noise** (BYTEmark mis-estimation) → removing it makes
  balanced workloads strictly helpful in Fig. 3(b)'s regime.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.bytemark.suite import simulate_scores, true_scores
from repro.cluster.machine import MachineSpec
from repro.cluster.presets import ucf_testbed
from repro.cluster.topology import Cluster, ClusterTopology
from repro.collectives.schedules import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.model.kernels import GatherKernel, balanced_counts, equal_counts
from repro.model.params import calibrate
from repro.perf import SimJob, evaluate
from repro.util.tables import AsciiTable
from repro.util.units import BYTES_PER_INT, kb

__all__ = [
    "symmetric_pack_topology",
    "ablation_pack_asymmetry",
    "ablation_nic_serialization",
    "ablation_rank_noise",
    "ablation_report",
]


def symmetric_pack_topology(topology: ClusterTopology) -> ClusterTopology:
    """A copy of ``topology`` whose machines pack as cheaply as they
    unpack (and with no fixed per-message overhead)."""

    def rebuild(node: Cluster | MachineSpec) -> Cluster | MachineSpec:
        if isinstance(node, MachineSpec):
            symmetric = (node.pack_cost + node.unpack_cost) / 2
            return dataclasses.replace(
                node, pack_cost=symmetric, unpack_cost=symmetric, msg_overhead=0.0
            )
        return Cluster(node.name, node.network, [rebuild(c) for c in node.children])

    return ClusterTopology(t.cast(Cluster, rebuild(topology.root)))


def _gather_job(
    topology: ClusterTopology,
    n: int,
    *,
    root: RootPolicy,
    workload: WorkloadPolicy = WorkloadPolicy.EQUAL,
    scores: t.Mapping[str, float] | None = None,
    serialize_nic: bool = True,
    seed: int = 0,
) -> SimJob:
    return SimJob.collective(
        "gather", topology, n, root=root, workload=workload,
        scores=scores, serialize_nic=serialize_nic, seed=seed,
    )


def _items(size_kb: int) -> int:
    return kb(size_kb) // BYTES_PER_INT


def ablation_pack_asymmetry(size_kb: int = 500, *, seed: int = 0) -> dict[str, float]:
    """Fig. 3(a) at p = 2 with and without pack/unpack asymmetry.

    Returns ``{"with": T_s/T_f, "without": T_s/T_f}``; the inversion
    (factor < 1) must disappear when packing is symmetric.
    """
    n = _items(size_kb)
    variants = (
        ("with", ucf_testbed(2)),
        ("without", symmetric_pack_topology(ucf_testbed(2))),
    )
    jobs = [
        _gather_job(topology, n, root=root, seed=seed)
        for _label, topology in variants
        for root in (RootPolicy.SLOWEST, RootPolicy.FASTEST)
    ]
    results = evaluate(jobs)
    return {
        label: improvement_factor(results[2 * i].time, results[2 * i + 1].time)
        for i, (label, _topology) in enumerate(variants)
    }


def ablation_nic_serialization(
    size_kb: int = 500, p: int = 10, *, seed: int = 0
) -> dict[str, float]:
    """Gather time at large p with and without NIC drain serialization.

    Returns ``{"with": T_f, "without": T_f, "contention_cost": ratio}``.
    Port contention at the root is a large share of the absolute gather
    time (the ``contention_cost`` ratio), while — an ablation *finding*
    — the T_s/T_f improvement factor itself is robust to it: the
    root-side bottleneck that grows with p is the serialized drain +
    unpack work at the root, and removing the port queue only shifts
    that cost onto the root's CPU.
    """
    n = _items(size_kb)
    jobs = [
        _gather_job(
            ucf_testbed(p), n, root=RootPolicy.FASTEST,
            serialize_nic=serialize, seed=seed,
        )
        for serialize in (True, False)
    ]
    results = evaluate(jobs)
    out = {"with": results[0].time, "without": results[1].time}
    out["contention_cost"] = out["with"] / out["without"]
    return out


def ablation_rank_noise(
    size_kb: int = 500, p: int = 6, *, seed: int = 0, noise_sigma: float = 0.5
) -> dict[str, float]:
    """Fig. 3(b) with noisy vs perfect BYTEmark scores.

    Returns ``{"noisy": T_u/T_b, "clean": T_u/T_b}``; perfect scores
    give balanced workloads their full (if modest) advantage, noisy
    scores erode it — the paper's c_j mis-estimation effect.
    """
    n = _items(size_kb)
    topology = ucf_testbed(p)
    variants = (
        ("noisy", simulate_scores(topology, noise_sigma=noise_sigma, seed=2001)),
        ("clean", true_scores(topology)),
    )
    jobs = [
        _gather_job(
            topology, n, root=RootPolicy.FASTEST,
            workload=workload, scores=scores, seed=seed,
        )
        for _label, scores in variants
        for workload in (WorkloadPolicy.EQUAL, WorkloadPolicy.BALANCED)
    ]
    results = evaluate(jobs)
    return {
        label: improvement_factor(results[2 * i].time, results[2 * i + 1].time)
        for i, (label, _scores) in enumerate(variants)
    }


def _model_reference(size_kb: int = 500) -> AsciiTable:
    """What the clean cost model predicts for each ablated finding.

    The model has no pack asymmetry, port queue or score noise, so its
    kernel-evaluated numbers are the mechanism-free baseline the
    ablations should converge to when a mechanism is switched off.
    """
    n = _items(size_kb)
    table = AsciiTable(
        "cost-model reference (kernels; no runtime mechanisms)",
        ["finding", "model value"],
    )
    ns = np.array([n, n], dtype=np.int64)
    # p=2 root choice: slowest vs fastest root, equal shares (Fig 3a).
    params2 = calibrate(ucf_testbed(2))
    roots = np.array(
        [params2.slowest_index(0), params2.fastest_index(0)], dtype=np.int64
    )
    totals = GatherKernel(params2).evaluate(
        ns, roots=roots, counts=equal_counts(params2, ns)
    ).totals
    table.add_row(
        ["pack asymmetry (p=2 Ts/Tf)",
         improvement_factor(float(totals[0]), float(totals[1]))]
    )
    # p=10 absolute gather cost at the fastest root.
    params10 = calibrate(ucf_testbed(10))
    t_f = float(
        GatherKernel(params10).evaluate(ns[:1]).totals[0]
    )
    table.add_row(["NIC serialization (p=10 T_f seconds)", t_f])
    # p=6 workload balance: equal vs speed-proportional shares.
    params6 = calibrate(ucf_testbed(6))
    counts = np.concatenate(
        [equal_counts(params6, ns[:1]), balanced_counts(params6, ns[1:])]
    )
    totals = GatherKernel(params6).evaluate(ns, counts=counts).totals
    table.add_row(
        ["rank noise (p=6 Tu/Tb)",
         improvement_factor(float(totals[0]), float(totals[1]))]
    )
    return table


def ablation_report(*, seed: int = 0) -> ExperimentReport:
    """All three ablations as one report (bench target ``ablations``)."""
    pack = ablation_pack_asymmetry(seed=seed)
    nic = ablation_nic_serialization(seed=seed)
    noise = ablation_rank_noise(seed=seed)
    series = {
        "mechanism on": {
            "pack asymmetry (p=2 Ts/Tf)": pack["with"],
            "NIC serialization (p=10 T_f seconds)": nic["with"],
            "rank noise (p=6 Tu/Tb)": noise["noisy"],
        },
        "mechanism off": {
            "pack asymmetry (p=2 Ts/Tf)": pack["without"],
            "NIC serialization (p=10 T_f seconds)": nic["without"],
            "rank noise (p=6 Tu/Tb)": noise["clean"],
        },
    }
    return ExperimentReport(
        experiment_id="ablations",
        title="Mechanism ablations behind the Figure 3 findings",
        x_name="finding",
        series=series,
        notes=[
            "pack asymmetry on: Ts/Tf < 1 at p=2 (the paper's inversion); "
            "off: the inversion disappears (factor >= ~1)",
            f"NIC port contention accounts for a "
            f"{100 * (nic['contention_cost'] - 1):.0f}% slowdown of the "
            "absolute gather time at p=10 — but the Ts/Tf improvement is "
            "robust to it (the root's serialized unpack produces the growth)",
            "rank noise off: balancing helps more than with noisy scores",
            "the appendix lists the clean cost model's kernel-evaluated "
            "values: mechanism-free, so the distance between a 'mechanism "
            "on' row and the model row is the mechanism's contribution",
        ],
        extra=_model_reference().render(),
    )
