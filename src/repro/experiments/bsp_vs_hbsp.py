"""The headline comparison: BSP habits vs HBSP^k rules.

Section 6: "Fundamental changes to the algorithms are not necessary to
attain an increase in performance.  Instead, modifications consist of
selecting the root node and distributing the workload."

This experiment quantifies exactly that sentence.  For every workload
(the paper's two collectives plus the bundled applications), we run
the *same algorithm* twice on the heterogeneous testbed:

* **BSP habits** — the configuration a homogeneous-BSP programmer
  would write: equal shares (``c_j = 1/p``) and an arbitrary root
  (pid 0 of the declaration order — here deliberately re-pinned to the
  slowest machine, the worst case the paper's ``T_s`` measures);
* **HBSP^k rules** — fastest root + speed-proportional workloads.

The reported factor ``T_bsp / T_hbsp`` is the total value of the
model's two design rules per workload.
"""

from __future__ import annotations

import typing as t

from repro.apps import run_histogram, run_jacobi, run_matvec, run_sample_sort
from repro.cluster.presets import ucf_testbed
from repro.collectives import (
    RootPolicy,
    WorkloadPolicy,
    run_broadcast,
    run_gather,
    run_scatter,
)
from repro.experiments.improvement import ExperimentReport, improvement_factor

__all__ = ["bsp_vs_hbsp"]


def _workloads() -> dict[str, t.Callable[..., t.Any]]:
    def gather(topology, *, root, workload):
        return run_gather(topology, 128_000, root=root, workload=workload).time

    def scatter(topology, *, root, workload):
        return run_scatter(topology, 128_000, root=root, workload=workload).time

    def broadcast(topology, *, root, workload):
        return run_broadcast(
            topology, 128_000, root=root,
            balanced_shares=(workload is WorkloadPolicy.BALANCED),
        ).time

    def sample_sort(topology, *, root, workload):
        return run_sample_sort(topology, 300_000, root=root, workload=workload).time

    def matvec(topology, *, root, workload):
        return run_matvec(topology, 1_200, root=root, workload=workload).time

    def histogram(topology, *, root, workload):
        return run_histogram(topology, 3_000_000, root=root, workload=workload).time

    def jacobi(topology, *, root, workload):
        return run_jacobi(
            topology, 800_000, max_iterations=15, check_every=100,
            root=root, workload=workload,
        ).time

    return {
        "gather": gather,
        "scatter": scatter,
        "broadcast": broadcast,
        "sample_sort": sample_sort,
        "matvec": matvec,
        "histogram": histogram,
        "jacobi": jacobi,
    }


def bsp_vs_hbsp(p: int = 10) -> ExperimentReport:
    """``T_bsp / T_hbsp`` per workload on the p-machine testbed."""
    topology = ucf_testbed(p)
    series: dict[str, dict[str, float]] = {"T_bsp/T_hbsp": {}}
    for name, runner in _workloads().items():
        t_bsp = runner(
            topology, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL
        )
        t_hbsp = runner(
            topology, root=RootPolicy.FASTEST, workload=WorkloadPolicy.BALANCED
        )
        series["T_bsp/T_hbsp"][name] = improvement_factor(t_bsp, t_hbsp)
    return ExperimentReport(
        experiment_id="bsp-vs-hbsp",
        title="The value of the HBSP^k design rules, per workload",
        x_name="workload",
        series=series,
        notes=[
            "same algorithms; only the root choice and the workload "
            "distribution change (Section 6's claim, quantified)",
            "expected: > 1 for every workload; the broadcast gains least "
            "(the slowest machine must receive everything regardless)",
            "root-bound collectives (gather/scatter) and compute-carrying "
            "applications both gain 1.3-2x from the two rules combined",
        ],
    )
