"""The headline comparison: BSP habits vs HBSP^k rules.

Section 6: "Fundamental changes to the algorithms are not necessary to
attain an increase in performance.  Instead, modifications consist of
selecting the root node and distributing the workload."

This experiment quantifies exactly that sentence.  For every workload
(the paper's two collectives plus the bundled applications), we run
the *same algorithm* twice on the heterogeneous testbed:

* **BSP habits** — the configuration a homogeneous-BSP programmer
  would write: equal shares (``c_j = 1/p``) and an arbitrary root
  (pid 0 of the declaration order — here deliberately re-pinned to the
  slowest machine, the worst case the paper's ``T_s`` measures);
* **HBSP^k rules** — fastest root + speed-proportional workloads.

The reported factor ``T_bsp / T_hbsp`` is the total value of the
model's two design rules per workload.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.model.kernels import BroadcastKernel, GatherKernel, balanced_counts, equal_counts
from repro.model.params import calibrate
from repro.perf import SimJob, evaluate
from repro.util.tables import AsciiTable

__all__ = ["bsp_vs_hbsp"]


def _workload_jobs(topology, *, root, workload) -> dict[str, SimJob]:
    balanced = workload is WorkloadPolicy.BALANCED
    return {
        "gather": SimJob.collective(
            "gather", topology, 128_000, root=root, workload=workload),
        "scatter": SimJob.collective(
            "scatter", topology, 128_000, root=root, workload=workload),
        "broadcast": SimJob.collective(
            "broadcast", topology, 128_000, root=root, balanced_shares=balanced),
        "sample_sort": SimJob.app(
            "sample_sort", topology, 300_000, root=root, workload=workload),
        "matvec": SimJob.app(
            "matvec", topology, 1_200, root=root, workload=workload),
        "histogram": SimJob.app(
            "histogram", topology, 3_000_000, root=root, workload=workload),
        "jacobi": SimJob.app(
            "jacobi", topology, 800_000, max_iterations=15, check_every=100,
            root=root, workload=workload),
    }


def bsp_vs_hbsp(p: int = 10) -> ExperimentReport:
    """``T_bsp / T_hbsp`` per workload on the p-machine testbed."""
    topology = ucf_testbed(p)
    bsp = _workload_jobs(
        topology, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL
    )
    hbsp = _workload_jobs(
        topology, root=RootPolicy.FASTEST, workload=WorkloadPolicy.BALANCED
    )
    names = list(bsp)
    results = evaluate([bsp[name] for name in names] + [hbsp[name] for name in names])
    series: dict[str, dict[str, float]] = {"T_bsp/T_hbsp": {}}
    for index, name in enumerate(names):
        series["T_bsp/T_hbsp"][name] = improvement_factor(
            results[index].time, results[len(names) + index].time
        )
    # Appendix: the cost model's own valuation of the two rules for the
    # collectives it prices exactly — both configurations per collective
    # evaluated as one kernel grid (no DES on this path).
    params = calibrate(topology)
    n = 128_000
    ns = np.array([n, n], dtype=np.int64)
    roots = np.array(
        [params.slowest_index(0), params.fastest_index(0)], dtype=np.int64
    )
    counts = np.concatenate(
        [equal_counts(params, ns[:1]), balanced_counts(params, ns[1:])]
    )
    gather = GatherKernel(params).evaluate(ns, roots=roots, counts=counts).totals
    bcast = BroadcastKernel(params).evaluate(ns, roots=roots).totals
    table = AsciiTable(
        f"cost-model valuation of the rules (kernels, n={n} items)",
        ["collective", "T_bsp model", "T_hbsp model", "T_bsp/T_hbsp"],
    )
    table.add_row(
        ["gather", float(gather[0]), float(gather[1]),
         improvement_factor(float(gather[0]), float(gather[1]))]
    )
    table.add_row(
        ["broadcast", float(bcast[0]), float(bcast[1]),
         improvement_factor(float(bcast[0]), float(bcast[1]))]
    )
    return ExperimentReport(
        experiment_id="bsp-vs-hbsp",
        title="The value of the HBSP^k design rules, per workload",
        x_name="workload",
        series=series,
        notes=[
            "same algorithms; only the root choice and the workload "
            "distribution change (Section 6's claim, quantified)",
            "expected: > 1 for every workload; the broadcast gains least "
            "(the slowest machine must receive everything regardless)",
            "root-bound collectives (gather/scatter) and compute-carrying "
            "applications both gain 1.3-2x from the two rules combined",
            "the appendix prices the rules analytically: the model already "
            "credits the gather's root+workload gain; the simulated factor "
            "adds the runtime effects (packing, port contention) on top",
        ],
        extra=table.render(),
    )
