"""The headline comparison: BSP habits vs HBSP^k rules.

Section 6: "Fundamental changes to the algorithms are not necessary to
attain an increase in performance.  Instead, modifications consist of
selecting the root node and distributing the workload."

This experiment quantifies exactly that sentence.  For every workload
(the paper's two collectives plus the bundled applications), we run
the *same algorithm* twice on the heterogeneous testbed:

* **BSP habits** — the configuration a homogeneous-BSP programmer
  would write: equal shares (``c_j = 1/p``) and an arbitrary root
  (pid 0 of the declaration order — here deliberately re-pinned to the
  slowest machine, the worst case the paper's ``T_s`` measures);
* **HBSP^k rules** — fastest root + speed-proportional workloads.

The reported factor ``T_bsp / T_hbsp`` is the total value of the
model's two design rules per workload.
"""

from __future__ import annotations

from repro.cluster.presets import ucf_testbed
from repro.collectives import RootPolicy, WorkloadPolicy
from repro.experiments.improvement import ExperimentReport, improvement_factor
from repro.perf import SimJob, evaluate

__all__ = ["bsp_vs_hbsp"]


def _workload_jobs(topology, *, root, workload) -> dict[str, SimJob]:
    balanced = workload is WorkloadPolicy.BALANCED
    return {
        "gather": SimJob.collective(
            "gather", topology, 128_000, root=root, workload=workload),
        "scatter": SimJob.collective(
            "scatter", topology, 128_000, root=root, workload=workload),
        "broadcast": SimJob.collective(
            "broadcast", topology, 128_000, root=root, balanced_shares=balanced),
        "sample_sort": SimJob.app(
            "sample_sort", topology, 300_000, root=root, workload=workload),
        "matvec": SimJob.app(
            "matvec", topology, 1_200, root=root, workload=workload),
        "histogram": SimJob.app(
            "histogram", topology, 3_000_000, root=root, workload=workload),
        "jacobi": SimJob.app(
            "jacobi", topology, 800_000, max_iterations=15, check_every=100,
            root=root, workload=workload),
    }


def bsp_vs_hbsp(p: int = 10) -> ExperimentReport:
    """``T_bsp / T_hbsp`` per workload on the p-machine testbed."""
    topology = ucf_testbed(p)
    bsp = _workload_jobs(
        topology, root=RootPolicy.SLOWEST, workload=WorkloadPolicy.EQUAL
    )
    hbsp = _workload_jobs(
        topology, root=RootPolicy.FASTEST, workload=WorkloadPolicy.BALANCED
    )
    names = list(bsp)
    results = evaluate([bsp[name] for name in names] + [hbsp[name] for name in names])
    series: dict[str, dict[str, float]] = {"T_bsp/T_hbsp": {}}
    for index, name in enumerate(names):
        series["T_bsp/T_hbsp"][name] = improvement_factor(
            results[index].time, results[len(names) + index].time
        )
    return ExperimentReport(
        experiment_id="bsp-vs-hbsp",
        title="The value of the HBSP^k design rules, per workload",
        x_name="workload",
        series=series,
        notes=[
            "same algorithms; only the root choice and the workload "
            "distribution change (Section 6's claim, quantified)",
            "expected: > 1 for every workload; the broadcast gains least "
            "(the slowest machine must receive everything regardless)",
            "root-bound collectives (gather/scatter) and compute-carrying "
            "applications both gain 1.3-2x from the two rules combined",
        ],
    )
