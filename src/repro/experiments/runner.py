"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import inspect
import typing as t

from repro.errors import ExperimentError
from repro.experiments.ablations import ablation_report
from repro.experiments.bsp_vs_hbsp import bsp_vs_hbsp
from repro.experiments.discovery import discovery_roundtrip
from repro.experiments.dynamics import dynamics_curves
from repro.experiments.scaling import app_scaling
from repro.experiments.sensitivity import calibration_sensitivity
from repro.experiments.tuning import tuning_improvement
from repro.experiments.analysis import (
    model_fidelity,
    sec4_broadcast_phases,
    sec4_gather_hierarchy,
    table1_parameters,
)
from repro.experiments.fig3_gather import fig3a_gather_root, fig3b_gather_balance
from repro.experiments.fig4_broadcast import (
    fig4a_broadcast_root,
    fig4b_broadcast_balance,
)
from repro.experiments.improvement import ExperimentReport
from repro.experiments.robustness import robustness_report
from repro.experiments.serving import serving_curves

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: Experiment id -> zero-config callable (matches DESIGN.md's index).
EXPERIMENTS: dict[str, t.Callable[[], ExperimentReport]] = {
    "table1": table1_parameters,
    "fig3a": fig3a_gather_root,
    "fig3b": fig3b_gather_balance,
    "fig4a": fig4a_broadcast_root,
    "fig4b": fig4b_broadcast_balance,
    "sec4-bcast-phases": sec4_broadcast_phases,
    "sec4-gather-hierarchy": sec4_gather_hierarchy,
    "model-vs-sim": model_fidelity,
    "ablations": ablation_report,
    "scaling": app_scaling,
    "bsp-vs-hbsp": bsp_vs_hbsp,
    "sensitivity": calibration_sensitivity,
    "robustness": robustness_report,
    "discovery": discovery_roundtrip,
    "tuning": tuning_improvement,
    "serve": serving_curves,
    "dynamics": dynamics_curves,
}

#: Friendly aliases accepted anywhere an experiment id is (the paper's
#: figures are easier to remember by what they show).
EXPERIMENT_ALIASES: dict[str, str] = {
    "fig3_gather": "fig3a",
    "fig4_broadcast": "fig4a",
}

#: Experiments whose factory takes a ``seed`` keyword — resolved once
#: at registry-build time so ``run_experiment`` stays signature-free
#: on its hot path.
_ACCEPTS_SEED: frozenset[str] = frozenset(
    experiment_id
    for experiment_id, factory in EXPERIMENTS.items()
    if "seed" in inspect.signature(factory).parameters
)

#: Experiments that can run their collectives under an auto-tuned
#: schedule (``--schedule tuned``); resolved like :data:`_ACCEPTS_SEED`.
_ACCEPTS_SCHEDULE: frozenset[str] = frozenset(
    experiment_id
    for experiment_id, factory in EXPERIMENTS.items()
    if "schedule" in inspect.signature(factory).parameters
)


def run_experiment(
    experiment_id: str,
    *,
    seed: int | None = None,
    schedule: str | None = None,
) -> ExperimentReport:
    """Run one experiment by id (or alias); raises for unknown ids.

    ``seed`` overrides the experiment's default seed for experiments
    that accept one (raises for those that don't); ``schedule``
    (``"default"``/``"tuned"``) likewise selects the collective
    schedule for experiments that support it.
    """
    experiment_id = EXPERIMENT_ALIASES.get(experiment_id, experiment_id)
    try:
        factory = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    if seed is not None and experiment_id not in _ACCEPTS_SEED:
        raise ExperimentError(
            f"experiment {experiment_id!r} does not accept a seed"
        )
    if schedule is not None and experiment_id not in _ACCEPTS_SCHEDULE:
        raise ExperimentError(
            f"experiment {experiment_id!r} does not accept a schedule"
        )
    kwargs: dict[str, t.Any] = {}
    if seed is not None:
        kwargs["seed"] = seed
    if schedule is not None:
        kwargs["schedule"] = schedule
    from repro.obs.observe import current_observation

    observation = current_observation()
    if observation is not None:
        # Metrics only — no wall-clock span: exported traces carry
        # nothing but simulated time, so identical invocations stay
        # bit-identical.
        observation.metrics.inc("repro_experiments_total")
    return factory(**kwargs)


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI: run one or all experiments and print their reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="*",
        default=["all"],
        help=f"experiment id(s) or 'all'; known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment seed (for experiments that accept one)",
    )
    parser.add_argument(
        "--schedule", choices=["default", "tuned"], default=None,
        help="collective schedule for experiments that support it "
        "(tuned = auto-tuned via the persistent decision cache)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the simulation sweeps (default: serial); "
        "output is bit-identical at any value",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="persistent result cache location (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps); repeated "
        "invocations skip already-computed grid points",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache for this invocation",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile each experiment and dump the top functions by "
        "cumulative time",
    )
    parser.add_argument(
        "--profile-limit", type=int, default=15,
        help="rows to show per experiment with --profile (default: 15)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace_event JSON timeline of the runs "
        "(open in chrome://tracing or ui.perfetto.dev); forces serial "
        "simulation",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write aggregated metrics in Prometheus text format",
    )
    parser.add_argument(
        "--obs-summary", action="store_true",
        help="print the per-superstep predicted-vs-simulated ledger "
        "after the reports",
    )
    parser.add_argument(
        "--runs-out", metavar="FILE", default=None,
        help="write the observed run records as JSON — the input "
        "format of 'repro calibrate --fit'",
    )
    args = parser.parse_args(argv)
    wanted = list(args.experiment)
    if wanted == ["all"]:
        wanted = list(EXPERIMENTS)
    # One executor for the whole invocation (even serially): experiments
    # sharing grid points simulate them once.
    import contextlib

    from repro.perf import default_cache_dir, effective_jobs, sweep

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    observation = None
    with contextlib.ExitStack() as stack:
        if args.trace_out or args.metrics_out or args.obs_summary or args.runs_out:
            from repro.obs import observe

            observation = stack.enter_context(
                observe(spans=args.trace_out is not None)
            )
        stack.enter_context(sweep(jobs=effective_jobs(args.jobs), cache_dir=cache_dir))
        for experiment_id in wanted:
            if args.profile:
                report = _profiled(experiment_id, args.seed, args.profile_limit)
            else:
                report = run_experiment(
                    experiment_id, seed=args.seed, schedule=args.schedule
                )
            print(report.render())
            print()
    if observation is not None:
        _export_observation(
            observation, args.trace_out, args.metrics_out, args.obs_summary,
            args.runs_out,
        )
    return 0


def _export_observation(
    observation: t.Any,
    trace_out: str | None,
    metrics_out: str | None,
    obs_summary: bool,
    runs_out: str | None = None,
) -> None:
    """Write the requested observability outputs (shared with repro.cli)."""
    from pathlib import Path

    from repro.obs import chrome_trace, prometheus_text, runs_json, summary

    if trace_out:
        Path(trace_out).write_text(chrome_trace(observation.tracer))
    if metrics_out:
        Path(metrics_out).write_text(prometheus_text(observation.metrics))
    if runs_out:
        Path(runs_out).write_text(runs_json(observation))
    if obs_summary:
        print(summary(observation))


def _profiled(experiment_id: str, seed: int | None, limit: int) -> ExperimentReport:
    """Run one experiment under cProfile, dumping top-N to stderr."""
    import cProfile
    import io
    import pstats
    import sys

    profile = cProfile.Profile()
    profile.enable()
    try:
        report = run_experiment(experiment_id, seed=seed)
    finally:
        profile.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(limit)
        print(f"--- profile: {experiment_id} (top {limit} by cumulative) ---",
              file=sys.stderr)
        print(buffer.getvalue(), file=sys.stderr)
    return report
