"""Dependency-free ASCII line plots for the experiment reports.

The paper presents its results as line plots (Figures 3 and 4: one
line per problem size, improvement factor vs processor count).
:func:`ascii_plot` renders the same visual shape in a terminal, so
``python -m repro experiment fig3a --plot`` looks like the paper's
figure and the growth/flatness/inversion are visible at a glance.
"""

from __future__ import annotations

import math
import typing as t

__all__ = ["ascii_plot"]

#: Distinct per-series markers, assigned in series order.
MARKERS = "*o+x#@%&"


def ascii_plot(
    series: t.Mapping[str, t.Mapping[t.Any, float]],
    *,
    title: str = "",
    x_name: str = "x",
    y_name: str = "y",
    width: int = 64,
    height: int = 16,
) -> str:
    """Render named series sharing an x-axis as an ASCII line plot.

    X values are placed at even spacing in their sorted order (the
    paper's processor counts are categorical ticks); y values are
    linearly scaled into ``height`` rows.  Each series draws with its
    own marker; collisions show the later series' marker.
    """
    xs: list[t.Any] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    xs.sort()
    ys = [y for values in series.values() for y in values.values()]
    ys = [y for y in ys if math.isfinite(y)]
    if not xs or not ys:
        return "(no data to plot)"
    lo, hi = min(ys), max(ys)
    if hi == lo:
        lo, hi = lo - 0.5, hi + 0.5
    # A little headroom so extreme points don't sit on the frame.
    span = hi - lo
    lo -= 0.05 * span
    hi += 0.05 * span

    def col_of(index: int) -> int:
        if len(xs) == 1:
            return width // 2
        return round(index * (width - 1) / (len(xs) - 1))

    def row_of(y: float) -> int:
        return round((hi - y) / (hi - lo) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for series_index, (label, values) in enumerate(series.items()):
        marker = MARKERS[series_index % len(MARKERS)]
        previous: tuple[int, int] | None = None
        for x_index, x in enumerate(xs):
            if x not in values or not math.isfinite(values[x]):
                previous = None
                continue
            col, row = col_of(x_index), row_of(values[x])
            if previous is not None:
                # Linear interpolation between consecutive points.
                prev_col, prev_row = previous
                steps = max(abs(col - prev_col), 1)
                for step in range(1, steps):
                    interp_col = prev_col + round(step * (col - prev_col) / steps)
                    interp_row = prev_row + round(step * (row - prev_row) / steps)
                    if grid[interp_row][interp_col] == " ":
                        grid[interp_row][interp_col] = "."
            grid[row][col] = marker
            previous = (col, row)

    lines = []
    if title:
        lines.append(title)
    label_width = 9
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:.3g}"
        elif row_index == height - 1:
            label = f"{lo:.3g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")
    ticks = [" "] * width
    for x_index, x in enumerate(xs):
        text = str(x)
        col = col_of(x_index)
        start = min(max(0, col - len(text) // 2), width - len(text))
        for offset, char in enumerate(text):
            ticks[start + offset] = char
    lines.append(f"{'':>{label_width}} +{'-' * width}+")
    lines.append(f"{'':>{label_width}}  {''.join(ticks)}")
    lines.append(f"{'':>{label_width}}  {x_name}   ({y_name})")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f"{'':>{label_width}}  legend: {legend}")
    return "\n".join(lines)
