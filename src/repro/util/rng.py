"""Deterministic random-number streams.

Every stochastic component of the library (workload generation, BYTEmark
measurement noise, non-dedicated-cluster jitter) draws from a named
:class:`RngStream` derived from a single experiment seed.  Naming the
streams keeps results stable when unrelated components add or remove
draws — a property plain shared ``numpy`` generators do not have.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a path of names.

    The derivation is a SHA-256 hash of the seed and the path components,
    so it is stable across Python versions and process runs.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest()[:8], "little")


class RngStream:
    """A named, hierarchical wrapper over :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Root seed of this stream.
    path:
        Human-readable path components identifying the stream (used only
        for ``repr`` and for deriving child streams).
    """

    def __init__(self, seed: int, *path: str | int) -> None:
        self.seed = derive_seed(seed, *path) if path else int(seed)
        self.path = tuple(str(p) for p in path)
        self.generator = np.random.default_rng(self.seed)

    def child(self, *names: str | int) -> "RngStream":
        """Return an independent child stream named by ``names``."""
        return RngStream(self.seed, *names)

    # -- convenience draws -------------------------------------------------
    def uniform_ints(self, count: int, low: int = 0, high: int = 2**31 - 1) -> np.ndarray:
        """Uniformly distributed integers, the paper's input data type."""
        return self.generator.integers(low, high, size=int(count), dtype=np.int64)

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Used to model measurement noise (e.g. BYTEmark scores on a
        non-dedicated cluster).  ``sigma = 0`` returns exactly 1.0.
        """
        if sigma == 0:
            return 1.0
        return float(self.generator.lognormal(mean=0.0, sigma=float(sigma)))

    def uniform(self) -> float:
        """One uniform draw in [0, 1) — used for per-message fault coins."""
        return float(self.generator.random())

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean (0 if ``mean <= 0``).

        Models memoryless burst/idle phases of non-dedicated-cluster
        background load.
        """
        if mean <= 0:
            return 0.0
        return float(self.generator.exponential(float(mean)))

    def shuffled(self, items: list) -> list:
        """Return a new list with ``items`` in shuffled order."""
        out = list(items)
        self.generator.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, path={'/'.join(self.path) or '<root>'})"
