"""Units used throughout the reproduction.

The paper measures problem sizes in KBytes of uniformly distributed
integers (Section 5.1) and we follow the same convention: an *item* is a
4-byte integer, and problem sizes are given in multiples of 1024 bytes.

Simulated time is kept in abstract *seconds* of virtual time; all rates in
:mod:`repro.cluster` are expressed against this unit.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "BYTES_PER_INT",
    "kb",
    "items_to_bytes",
    "bytes_to_items",
    "format_bytes",
    "format_time",
]

#: Bytes per KByte (binary convention, as used by 1990s benchmark reports).
KIB = 1024

#: Bytes per MByte.
MIB = 1024 * 1024

#: The paper's data items are C ``int``s.
BYTES_PER_INT = 4


def kb(kbytes: float) -> int:
    """Convert KBytes to a whole number of bytes."""
    return int(round(kbytes * KIB))


def items_to_bytes(items: int) -> int:
    """Size in bytes of ``items`` 4-byte integers."""
    return int(items) * BYTES_PER_INT


def bytes_to_items(nbytes: int) -> int:
    """Number of whole 4-byte integers that fit in ``nbytes``."""
    return int(nbytes) // BYTES_PER_INT


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``'100.0 KB'``, ``'1.5 MB'``)."""
    nbytes = float(nbytes)
    if nbytes >= MIB:
        return f"{nbytes / MIB:.1f} MB"
    if nbytes >= KIB:
        return f"{nbytes / KIB:.1f} KB"
    return f"{nbytes:.0f} B"


def format_time(seconds: float) -> str:
    """Human-readable virtual-time duration."""
    seconds = float(seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
