"""Argument-validation helpers used across the library.

All helpers raise :class:`repro.errors.ValidationError` with a message that
names the offending parameter, and return the (possibly coerced) value so
they can be used inline::

    self.capacity = check_positive_int("capacity", capacity)
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ValidationError

__all__ = [
    "check_finite",
    "check_fraction",
    "check_index",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
]


def check_finite(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring it to be finite."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(out):
        raise ValidationError(f"{name} must be finite, got {out!r}")
    return out


def check_positive(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring ``value > 0``."""
    out = check_finite(name, value)
    if out <= 0:
        raise ValidationError(f"{name} must be > 0, got {out!r}")
    return out


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring ``value >= 0``."""
    out = check_finite(name, value)
    if out < 0:
        raise ValidationError(f"{name} must be >= 0, got {out!r}")
    return out


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` as an int, requiring an integral value ``>= 1``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # Accept integral floats such as 4.0 for convenience.
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value!r}")
    return int(value)


def check_index(name: str, value: int, size: int) -> int:
    """Return ``value`` as an int, requiring ``0 <= value < size``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer index, got {value!r}")
    if not 0 <= value < size:
        raise ValidationError(f"{name} must be in [0, {size}), got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring ``0 <= value <= 1``."""
    out = check_finite(name, value)
    if not 0.0 <= out <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {out!r}")
    return out


def check_probability_vector(
    name: str, values: Sequence[float], *, tol: float = 1e-9
) -> tuple[float, ...]:
    """Validate that ``values`` are non-negative and sum to 1 within ``tol``.

    Returns the values as a tuple of floats.
    """
    out = tuple(check_non_negative(f"{name}[{i}]", v) for i, v in enumerate(values))
    if not out:
        raise ValidationError(f"{name} must be non-empty")
    total = math.fsum(out)
    if abs(total - 1.0) > tol:
        raise ValidationError(f"{name} must sum to 1 (got {total!r}, tol={tol})")
    return out
