"""ASCII table rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper reports
(improvement factors per processor count and problem size).  This module
provides a dependency-free table renderer used by ``repro.experiments``
and by the ``benchmarks/`` scripts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["AsciiTable", "format_series"]


class AsciiTable:
    """A simple monospaced table with a title, header row, and data rows.

    >>> t = AsciiTable("demo", ["p", "factor"])
    >>> t.add_row([2, 0.93])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = str(title)
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append a data row; floats are formatted with 3 decimal places."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out = [self.title, sep, line(self.headers), sep]
        out.extend(line(row) for row in self.rows)
        out.append(sep)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def format_series(
    title: str,
    x_name: str,
    series: Mapping[str, Mapping[object, float]],
) -> str:
    """Render multiple named series sharing an x-axis as one table.

    Parameters
    ----------
    title:
        Table title (e.g. ``"Figure 3(a): gather T_s/T_f"``).
    x_name:
        Name of the shared x-axis column (e.g. ``"p"``).
    series:
        Mapping of series name (e.g. ``"100 KB"``) to a mapping of
        x-value to y-value.
    """
    xs: list[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    table = AsciiTable(title, [x_name, *series.keys()])
    for x in xs:
        table.add_row([x, *(series[name].get(x, float("nan")) for name in series)])
    return table.render()
