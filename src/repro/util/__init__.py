"""Small shared utilities: validation, RNG streams, units, ASCII tables."""

from repro.util.validation import (
    check_finite,
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.units import (
    KIB,
    MIB,
    BYTES_PER_INT,
    bytes_to_items,
    items_to_bytes,
    kb,
    format_bytes,
    format_time,
)
from repro.util.tables import AsciiTable, format_series
from repro.util.plot import ascii_plot

__all__ = [
    "check_finite",
    "check_fraction",
    "check_index",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
    "RngStream",
    "derive_seed",
    "KIB",
    "MIB",
    "BYTES_PER_INT",
    "bytes_to_items",
    "items_to_bytes",
    "kb",
    "format_bytes",
    "format_time",
    "AsciiTable",
    "format_series",
    "ascii_plot",
]
