"""Compile a :class:`DynamicPlan` onto the fault injector.

Dynamic events are *declarative* (processes and curves); the simulator
speaks *windows* (:mod:`repro.faults.plan` specs).  ``compile_plan``
lowers one into the other deterministically:

* joins/leaves become :class:`~repro.faults.MachinePause` windows (a
  machine that is "not in the cluster" makes no progress — exactly the
  pause semantics), plus the membership-epoch sequence the serving
  layer re-plans against;
* speed-drift processes are sampled on a fixed grid of ``step``-wide
  segments into piecewise-constant
  :class:`~repro.faults.MachineSlowdown` windows, with every draw taken
  from ``RngStream(seed, "dynamics", "drift", machine, <event#>)``;
* diurnal load curves are sliced into eight segments per period, each a
  :class:`~repro.faults.BackgroundLoad` whose intensity is the curve's
  value at the segment midpoint — the same sinusoid the arrival
  thinning uses (:func:`repro.serve.arrivals.diurnal_rate`).

The empty plan compiles to ``FaultPlan.empty()`` and one all-present
epoch, so carrying it through a run changes nothing, bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.dynamics.epochs import Epoch, membership_epochs
from repro.dynamics.plan import (
    DiurnalLoad,
    DynamicPlan,
    MachineJoin,
    MachineLeave,
    SpeedDrift,
)
from repro.errors import DynamicsError
from repro.faults.plan import (
    BackgroundLoad,
    FaultPlan,
    FaultSpec,
    MachinePause,
    MachineSlowdown,
)
from repro.serve.arrivals import diurnal_rate
from repro.util.rng import RngStream

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import ClusterTopology

__all__ = ["CompiledDynamics", "compile_plan"]

#: Segments per diurnal period — enough to track the sinusoid without
#: flooding the engine with hog processes.
_DIURNAL_SEGMENTS = 8

#: Hard ceiling on windows emitted per event, so a tiny ``step`` against
#: a huge horizon fails loudly instead of materialising millions of specs.
_MAX_WINDOWS = 10_000

#: Intensities are clamped inside BackgroundLoad's open (0, 1) interval.
_EPS = 1e-6


@dataclasses.dataclass(frozen=True)
class CompiledDynamics:
    """A plan lowered onto the simulator: fault windows + epochs."""

    plan: DynamicPlan
    fault_plan: FaultPlan
    epochs: tuple[Epoch, ...]

    @property
    def is_static(self) -> bool:
        """True when nothing changes over the run."""
        return self.fault_plan.is_empty and len(self.epochs) == 1


def _segment_count(start: float, end: float, step: float) -> int:
    count = int(math.ceil((end - start) / step - 1e-12))
    if count > _MAX_WINDOWS:
        raise DynamicsError(
            f"event would compile to {count} windows (> {_MAX_WINDOWS}); "
            "increase step/period or shorten the horizon"
        )
    return max(count, 0)


def _compile_drift(
    event: SpeedDrift, index: int, *, seed: int, horizon: float
) -> list[FaultSpec]:
    end = min(event.end, horizon)
    count = _segment_count(event.start, end, event.step)
    stream = RngStream(seed, "dynamics", "drift", event.machine, str(index))
    out: list[FaultSpec] = []
    factor = 1.0
    for i in range(count):
        lo = event.start + i * event.step
        hi = min(lo + event.step, end)
        if event.process == "random_walk":
            factor = min(
                max(factor * stream.lognormal_factor(event.magnitude), event.floor),
                event.ceiling,
            )
            level = factor
        else:  # piecewise_linear: ramp to a fresh target, charge the midpoint
            target = event.floor + stream.uniform() * (event.ceiling - event.floor)
            level = (factor + target) / 2.0
            factor = target
        if level > 1.0 and hi > lo:
            out.append(
                MachineSlowdown(
                    machine=event.machine, factor=level, start=lo, duration=hi - lo
                )
            )
    return out


def _compile_diurnal(event: DiurnalLoad, *, horizon: float) -> list[FaultSpec]:
    end = min(event.end, horizon)
    step = event.period / _DIURNAL_SEGMENTS
    count = _segment_count(event.start, end, step)
    out: list[FaultSpec] = []
    for i in range(count):
        lo = event.start + i * step
        hi = min(lo + step, end)
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        intensity = diurnal_rate(
            mid, base=event.intensity,
            amplitude=event.amplitude, period=event.period,
        )
        intensity = min(max(intensity, _EPS), 1.0 - _EPS)
        out.append(
            BackgroundLoad(
                machine=event.machine,
                intensity=intensity,
                start=lo,
                duration=hi - lo,
                burst_mean=event.burst_mean,
            )
        )
    return out


def compile_plan(
    plan: DynamicPlan,
    topology: "ClusterTopology",
    *,
    seed: int = 0,
    horizon: float,
) -> CompiledDynamics:
    """Lower ``plan`` to fault windows and membership epochs.

    ``horizon`` bounds unbounded processes (drift/diurnal windows with
    ``duration=None`` and leaves that never rejoin) so the emitted
    fault plan stays finite — pass the run or session duration.  Equal
    ``(plan, topology, seed, horizon)`` always compile identically.
    """
    if horizon <= 0 or not math.isfinite(horizon):
        raise DynamicsError(f"horizon must be finite and > 0, got {horizon!r}")
    plan.validate(topology)
    epochs = membership_epochs(plan, topology)
    if plan.is_empty:
        return CompiledDynamics(
            plan=plan, fault_plan=FaultPlan.empty(), epochs=epochs
        )

    specs: list[FaultSpec] = []
    for index, event in enumerate(plan):
        if isinstance(event, MachineJoin):
            if event.start > 0:
                specs.append(
                    MachinePause(
                        machine=event.machine, start=0.0, duration=event.start
                    )
                )
        elif isinstance(event, MachineLeave):
            if event.start >= horizon:
                continue
            pause_end = min(event.end, horizon)
            specs.append(
                MachinePause(
                    machine=event.machine,
                    start=event.start,
                    duration=pause_end - event.start,
                )
            )
        elif isinstance(event, SpeedDrift):
            specs.extend(_compile_drift(event, index, seed=seed, horizon=horizon))
        elif isinstance(event, DiurnalLoad):
            specs.extend(_compile_diurnal(event, horizon=horizon))
    return CompiledDynamics(plan=plan, fault_plan=FaultPlan(specs), epochs=epochs)
