"""Declarative dynamic-cluster plans.

A :class:`DynamicPlan` generalises the static
:class:`~repro.faults.FaultPlan` timeline into the non-stationary
behaviour production clusters actually exhibit:

* **membership churn** — :class:`MachineLeave` / :class:`MachineJoin`
  events with deterministic membership *epochs* the serving layer
  re-plans against (:mod:`repro.dynamics.epochs`);
* **speed drift** — :class:`SpeedDrift` processes (seeded random-walk
  or piecewise-linear multipliers on a machine's effective ``r_i``);
* **diurnal background load** — :class:`DiurnalLoad` curves reusing
  the serving layer's ``1 + amplitude*sin(2*pi*t/period)`` rate shape
  (:func:`repro.serve.arrivals.diurnal_rate`).

Plans are plain frozen data: they JSON-round-trip exactly like fault
plans, validate against a topology before a run starts, and compile
(:func:`repro.dynamics.compile_plan`) onto the simulator through named
:class:`~repro.util.rng.RngStream`\\ s — so equal plans produce equal
timelines everywhere, and the empty plan compiles to the empty
:class:`~repro.faults.FaultPlan`, which is bit-identical to a
fault-free run.
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing as t

from repro.errors import DynamicsError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import ClusterTopology

__all__ = [
    "MachineJoin",
    "MachineLeave",
    "SpeedDrift",
    "DiurnalLoad",
    "DynamicPlan",
    "churn_plan",
    "drift_plan",
]

_DRIFT_PROCESSES = ("random_walk", "piecewise_linear")


def _check_window(start: float, duration: float | None) -> None:
    if start < 0:
        raise DynamicsError(f"start must be >= 0, got {start!r}")
    if duration is not None and duration <= 0:
        raise DynamicsError(f"duration must be > 0, got {duration!r}")


def _end(start: float, duration: float | None) -> float:
    return math.inf if duration is None else start + duration


@dataclasses.dataclass(frozen=True)
class MachineJoin:
    """``machine`` is absent from the cluster until ``start``.

    Before the join time the machine makes no progress and the serving
    layer's membership epochs exclude it; a join at ``start == 0`` is a
    no-op (the machine was always there).
    """

    machine: str
    start: float

    kind: t.ClassVar[str] = "machine_join"

    def __post_init__(self) -> None:
        _check_window(self.start, None)


@dataclasses.dataclass(frozen=True)
class MachineLeave:
    """``machine`` leaves the cluster at ``start``.

    With a finite ``duration`` it rejoins afterwards (a reboot); with
    ``duration=None`` it is gone for the rest of the run.  While absent
    the machine makes no progress and membership epochs exclude it.
    """

    machine: str
    start: float
    duration: float | None = None

    kind: t.ClassVar[str] = "machine_leave"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)

    @property
    def end(self) -> float:
        """Rejoin time (``inf`` when the machine never returns)."""
        return _end(self.start, self.duration)


@dataclasses.dataclass(frozen=True)
class SpeedDrift:
    """A seeded drift process on ``machine``'s effective slowness.

    Every ``step`` seconds the machine's slowdown multiplier is
    resampled: ``random_walk`` multiplies the previous value by a
    lognormal factor of sigma ``magnitude``; ``piecewise_linear`` draws
    a new target uniformly in ``[floor, ceiling]`` and ramps to it
    (compiled as the segment's midpoint factor).  Multipliers are
    clamped to ``[floor, ceiling]``; the default floor of 1 means a
    machine can only get *slower* than its calibrated ``r_i``, never
    faster than the model's fastest.
    """

    machine: str
    process: str = "random_walk"
    magnitude: float = 0.2
    step: float = 1.0
    floor: float = 1.0
    ceiling: float = 4.0
    start: float = 0.0
    duration: float | None = None

    kind: t.ClassVar[str] = "speed_drift"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.process not in _DRIFT_PROCESSES:
            raise DynamicsError(
                f"unknown drift process {self.process!r}; "
                f"known: {', '.join(_DRIFT_PROCESSES)}"
            )
        if self.magnitude <= 0:
            raise DynamicsError(f"magnitude must be > 0, got {self.magnitude!r}")
        if self.step <= 0:
            raise DynamicsError(f"step must be > 0, got {self.step!r}")
        if self.floor < 1.0:
            raise DynamicsError(f"floor must be >= 1, got {self.floor!r}")
        if self.ceiling < self.floor:
            raise DynamicsError(
                f"ceiling must be >= floor, got {self.ceiling!r} < {self.floor!r}"
            )

    @property
    def end(self) -> float:
        """Drift window end (``inf`` for a permanent process)."""
        return _end(self.start, self.duration)


@dataclasses.dataclass(frozen=True)
class DiurnalLoad:
    """A diurnal background-load curve on ``machine``.

    The stolen-CPU fraction follows the serving layer's rate shape:
    ``intensity * (1 + amplitude * sin(2*pi*t/period))``, clamped to
    ``(0, 1)``.  Compilation slices the window into piecewise-constant
    segments and emits one :class:`~repro.faults.BackgroundLoad` per
    segment, so the existing hog machinery plays the curve.
    """

    machine: str
    intensity: float = 0.3
    period: float = 60.0
    amplitude: float = 0.5
    burst_mean: float = 0.01
    start: float = 0.0
    duration: float | None = None

    kind: t.ClassVar[str] = "diurnal_load"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not 0.0 < self.intensity < 1.0:
            raise DynamicsError(
                f"intensity must be in (0, 1), got {self.intensity!r}"
            )
        if not 0.0 <= self.amplitude <= 1.0:
            raise DynamicsError(
                f"amplitude must be in [0, 1], got {self.amplitude!r}"
            )
        if self.period <= 0:
            raise DynamicsError(f"period must be > 0, got {self.period!r}")
        if self.burst_mean <= 0:
            raise DynamicsError(f"burst_mean must be > 0, got {self.burst_mean!r}")

    @property
    def end(self) -> float:
        """Curve end (``inf`` when the load persists)."""
        return _end(self.start, self.duration)


#: Every concrete dynamic event type.
DynamicSpec = t.Union[MachineJoin, MachineLeave, SpeedDrift, DiurnalLoad]

_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (MachineJoin, MachineLeave, SpeedDrift, DiurnalLoad)
}


@dataclasses.dataclass(frozen=True)
class DynamicPlan:
    """An ordered collection of dynamic-cluster events.

    Mirrors :class:`~repro.faults.FaultPlan`: build programmatically,
    from the preset builders (:func:`churn_plan`, :func:`drift_plan`),
    or from JSON.  The empty plan is a guaranteed no-op — it compiles
    to ``FaultPlan.empty()`` and a single all-present membership epoch,
    so runs carrying it stay bit-identical to runs without one.
    """

    events: tuple[DynamicSpec, ...] = ()

    def __init__(self, events: "DynamicSpec | t.Iterable[DynamicSpec]" = ()) -> None:
        if type(events) in _KINDS.values():  # a bare spec: wrap it
            events = (events,)
        events = tuple(events)
        for event in events:
            if type(event) not in _KINDS.values():
                raise DynamicsError(f"not a dynamic event specification: {event!r}")
        object.__setattr__(self, "events", events)

    @classmethod
    def empty(cls) -> "DynamicPlan":
        """The no-op plan: runs with it are bit-identical to plain runs."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when the plan changes nothing."""
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> t.Iterator[DynamicSpec]:
        return iter(self.events)

    def extended(self, *events: DynamicSpec) -> "DynamicPlan":
        """A new plan with ``events`` appended."""
        return DynamicPlan(self.events + tuple(events))

    def machines(self) -> tuple[str, ...]:
        """Every machine the plan names, sorted and deduplicated."""
        return tuple(sorted({event.machine for event in self.events}))

    # -- validation -----------------------------------------------------------
    def validate(self, topology: "ClusterTopology") -> None:
        """Check every named machine exists in ``topology``."""
        known = {m.name for m in topology.machines}
        for event in self.events:
            if event.machine not in known:
                raise DynamicsError(
                    f"{event.kind} names unknown machine {event.machine!r}; "
                    f"known: {', '.join(sorted(known))}"
                )

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        out = []
        for event in self.events:
            record: dict[str, t.Any] = {"kind": event.kind}
            record.update(dataclasses.asdict(event))
            out.append(record)
        return {"events": out}

    @classmethod
    def from_dict(cls, data: t.Mapping) -> "DynamicPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(data, t.Mapping) or "events" not in data:
            raise DynamicsError('dynamic plan must be an object with an "events" list')
        events = []
        for record in data["events"]:
            record = dict(record)
            kind = record.pop("kind", None)
            if kind not in _KINDS:
                raise DynamicsError(
                    f"unknown event kind {kind!r}; known: {', '.join(sorted(_KINDS))}"
                )
            try:
                events.append(_KINDS[kind](**record))
            except TypeError as error:
                raise DynamicsError(f"bad {kind} specification: {error}") from None
        return cls(events)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DynamicPlan":
        """Parse a plan from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise DynamicsError(f"dynamic plan is not valid JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "DynamicPlan":
        """Load a plan from a JSON file (``repro serve --dynamics plan.json``)."""
        try:
            with open(path, encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise DynamicsError(
                f"cannot read dynamic plan {path!r}: {error}"
            ) from None

    def __repr__(self) -> str:
        kinds = ", ".join(e.kind for e in self.events) or "empty"
        return f"DynamicPlan({kinds})"


# -- preset builders -----------------------------------------------------------
def churn_plan(
    machines: t.Sequence[str],
    *,
    rate: float,
    duration: float,
    seed: int = 0,
    outage_mean: float | None = None,
) -> DynamicPlan:
    """Seeded Poisson churn: machines leave and rejoin at ``rate``.

    ``rate`` is leave events per second over ``[0, duration)``; each
    event picks a machine uniformly and an exponential outage of mean
    ``outage_mean`` (default ``duration / 10``).  ``rate = 0`` returns
    the empty plan.  Equal arguments build equal plans — the events are
    drawn from ``RngStream(seed, "dynamics", "churn")``.
    """
    from repro.util.rng import RngStream

    if not machines:
        raise DynamicsError("churn_plan needs at least one machine name")
    if rate < 0:
        raise DynamicsError(f"churn rate must be >= 0, got {rate!r}")
    if duration <= 0:
        raise DynamicsError(f"duration must be > 0, got {duration!r}")
    if rate == 0:
        return DynamicPlan.empty()
    mean_outage = duration / 10.0 if outage_mean is None else outage_mean
    if mean_outage <= 0:
        raise DynamicsError(f"outage_mean must be > 0, got {mean_outage!r}")
    stream = RngStream(seed, "dynamics", "churn")
    events: list[DynamicSpec] = []
    now = 0.0
    while True:
        now += stream.exponential(1.0 / rate)
        if now >= duration:
            break
        machine = machines[int(stream.uniform() * len(machines)) % len(machines)]
        outage = stream.exponential(mean_outage)
        events.append(MachineLeave(machine=machine, start=now, duration=outage))
    return DynamicPlan(events)


def drift_plan(
    machines: t.Sequence[str],
    *,
    magnitude: float = 0.2,
    step: float = 1.0,
    ceiling: float = 4.0,
) -> DynamicPlan:
    """Every named machine random-walks its effective slowness."""
    return DynamicPlan([
        SpeedDrift(machine=name, magnitude=magnitude, step=step, ceiling=ceiling)
        for name in machines
    ])
