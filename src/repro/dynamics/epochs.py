"""Deterministic membership epochs from a dynamic plan.

Join/leave events partition the time axis into *epochs*: maximal
half-open intervals ``[start, end)`` over which cluster membership is
constant.  The serving layer re-plans placement at epoch boundaries
(:mod:`repro.serve.service`), and per-epoch spans make degradation
visible in the Chrome trace.

Epochs are pure arithmetic over the plan — no randomness, no
simulation — so equal plans always yield equal epoch sequences.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import typing as t

from repro.dynamics.plan import DynamicPlan, MachineJoin, MachineLeave

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import ClusterTopology

__all__ = ["Epoch", "membership_epochs", "epoch_at"]


@dataclasses.dataclass(frozen=True)
class Epoch:
    """One constant-membership interval ``[start, end)``."""

    index: int
    start: float
    end: float  # math.inf on the final epoch
    present: frozenset[str]

    def covers(self, t_now: float) -> bool:
        """True when ``t_now`` falls inside this epoch."""
        return self.start <= t_now < self.end


def membership_epochs(
    plan: DynamicPlan, topology: "ClusterTopology"
) -> tuple[Epoch, ...]:
    """Compile ``plan``'s join/leave events into an epoch sequence.

    The first epoch starts at 0 and the last extends to ``inf``; an
    empty plan (or one with no membership events) yields exactly one
    all-present epoch.  A machine named by a :class:`MachineJoin` is
    absent before its join time; leaves with finite duration rejoin at
    their end.  Overlapping absences on one machine union together.
    """
    plan.validate(topology)
    all_machines = frozenset(m.name for m in topology.machines)

    # Per machine, collect absence intervals then merge overlaps.
    absences: dict[str, list[tuple[float, float]]] = {}
    for event in plan:
        if isinstance(event, MachineJoin):
            if event.start > 0:
                absences.setdefault(event.machine, []).append((0.0, event.start))
        elif isinstance(event, MachineLeave):
            absences.setdefault(event.machine, []).append((event.start, event.end))

    # Delta events: +1 = machine appears, -1 = machine disappears.
    boundaries: set[float] = {0.0}
    deltas: list[tuple[float, str, bool]] = []  # (time, machine, present?)
    for machine, intervals in absences.items():
        intervals.sort()
        merged: list[list[float]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        for lo, hi in merged:
            if hi <= lo:
                continue
            deltas.append((lo, machine, False))
            boundaries.add(lo)
            if math.isfinite(hi):
                deltas.append((hi, machine, True))
                boundaries.add(hi)

    # Stable sort keeps same-time deltas in insertion order; every
    # delta time is a boundary, so one pointer pass applies them all.
    deltas.sort(key=lambda delta: delta[0])
    times = sorted(boundaries)
    epochs: list[Epoch] = []
    present = set(all_machines)
    cursor = 0
    for i, start in enumerate(times):
        while cursor < len(deltas) and deltas[cursor][0] == start:
            _, machine, appears = deltas[cursor]
            (present.add if appears else present.discard)(machine)
            cursor += 1
        end = times[i + 1] if i + 1 < len(times) else math.inf
        epochs.append(
            Epoch(index=i, start=start, end=end, present=frozenset(present))
        )
    return tuple(epochs)


def epoch_at(epochs: t.Sequence[Epoch], t_now: float) -> Epoch:
    """The epoch covering ``t_now`` (binary search; last epoch is open)."""
    starts = [e.start for e in epochs]
    i = bisect.bisect_right(starts, t_now) - 1
    return epochs[max(i, 0)]
