"""Dynamic clusters: churn, drift, and diurnal load as declarative plans.

The static :class:`~repro.faults.FaultPlan` describes *windows*; a
:class:`DynamicPlan` describes *behaviour* — membership churn
(:class:`MachineJoin` / :class:`MachineLeave`), seeded speed-drift
processes (:class:`SpeedDrift`), and diurnal background-load curves
(:class:`DiurnalLoad`).  :func:`compile_plan` lowers a plan onto the
existing fault injector plus a deterministic membership-epoch sequence
(:func:`membership_epochs`) that the serving layer re-plans against.

Everything is seeded and pure data: plans JSON-round-trip, equal plans
compile identically, and the empty plan is a guaranteed bit-for-bit
no-op.
"""

from repro.dynamics.compile import CompiledDynamics, compile_plan
from repro.dynamics.epochs import Epoch, epoch_at, membership_epochs
from repro.dynamics.plan import (
    DiurnalLoad,
    DynamicPlan,
    MachineJoin,
    MachineLeave,
    SpeedDrift,
    churn_plan,
    drift_plan,
)

__all__ = [
    "DynamicPlan",
    "MachineJoin",
    "MachineLeave",
    "SpeedDrift",
    "DiurnalLoad",
    "churn_plan",
    "drift_plan",
    "Epoch",
    "membership_epochs",
    "epoch_at",
    "CompiledDynamics",
    "compile_plan",
]
