"""A PVM-like message-passing runtime on simulated virtual time.

The paper's HBSPlib was "written on top of PVM" [18]; this package is
the corresponding substrate here.  It provides:

* a :class:`VirtualMachine` that hosts *tasks* on the machines of a
  :class:`~repro.cluster.ClusterTopology`;
* :class:`Task` endpoints with ``send``/``recv``/``compute`` whose
  timing models PVM's real cost structure — messages are *packed* on
  the sender's CPU (XDR encoding), injected through the sender's NIC,
  cross the network of the lowest common ancestor cluster, are drained
  through the receiver's NIC (serialising when many senders target one
  receiver), and *unpacked* on the receiver's CPU;
* typed/tagged message matching on mailboxes;
* per-send :class:`DeliveryPolicy` robustness semantics — timeouts
  with bounded exponential-backoff retransmission, or at-most-once —
  exercised by the :mod:`repro.faults` injector.

Self-sends are free and instantaneous — "a processor does not send
data to itself" (Section 5.2).
"""

from repro.pvm.delivery import DeliveryPolicy
from repro.pvm.message import Message, payload_nbytes
from repro.pvm.task import Task
from repro.pvm.vm import Host, VirtualMachine

__all__ = [
    "DeliveryPolicy",
    "Message",
    "payload_nbytes",
    "Task",
    "Host",
    "VirtualMachine",
]
