"""Messages and payload sizing for the PVM-like runtime."""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import PvmError

__all__ = ["Message", "payload_nbytes"]

#: Wildcard for matching any source/tag, like PVM's -1.
ANY = None


def payload_nbytes(payload: t.Any) -> int:
    """Estimate the wire size of a payload in bytes.

    Sizes follow PVM's packed representation for the common cases:
    numpy arrays report their buffer size, byte strings their length,
    Python ints/floats 8 bytes, strings their UTF-8 length, and
    containers the sum of their elements.  Unknown objects are charged
    a flat 64 bytes (a header-ish default) — pass an explicit
    ``nbytes`` to :meth:`repro.pvm.Task.send` for exotic payloads.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float, complex, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(key) + payload_nbytes(value)
            for key, value in payload.items()
        )
    return 64


@dataclasses.dataclass(frozen=True, slots=True)
class Message:
    """One delivered message.

    Attributes
    ----------
    src / dst:
        Task ids of the endpoints.
    tag:
        Integer message tag (PVM ``msgtag``).
    payload:
        The transported object (never copied — virtual time is what the
        simulator charges, not real serialisation).
    nbytes:
        Wire size the simulator charged for this message.
    sent_at / delivered_at:
        Virtual timestamps of the send call and mailbox arrival.
    uid:
        Unique per-send id, set only on the reliable (retry) path so
        receivers can suppress duplicate retransmissions.
    """

    src: int
    dst: int
    tag: int
    payload: t.Any
    nbytes: int
    sent_at: float
    delivered_at: float
    uid: int | None = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise PvmError(f"message nbytes must be >= 0, got {self.nbytes}")

    def matches(self, src: int | None, tag: int | None) -> bool:
        """PVM-style matching: ``None`` acts as the -1 wildcard."""
        return (src is None or self.src == src) and (tag is None or self.tag == tag)

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src}, dst={self.dst}, tag={self.tag}, "
            f"nbytes={self.nbytes}, t={self.delivered_at:.6g})"
        )
