"""The virtual machine: hosts, task spawning, and routing.

:class:`VirtualMachine` plays the role of the PVM daemon layer: it
"allows a heterogeneous network of parallel and serial computers to
appear as a single, concurrent, computational resource" [18] — here on
simulated time.
"""

from __future__ import annotations

import typing as t

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.errors import PvmError, TaskNotFound
from repro.obs.metrics import MetricsRegistry
from repro.pvm.delivery import DeliveryPolicy
from repro.pvm.task import Task
from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.sim.trace import Trace

__all__ = ["Host", "VirtualMachine"]


class Host:
    """One machine of the virtual machine: CPU + NIC ports.

    The CPU is a unit resource shared by all tasks on the host (and by
    pack/unpack charges).  The NIC has independent in/out ports, each a
    unit resource — concurrent transfers through one port serialise.
    """

    def __init__(self, vm: "VirtualMachine", machine_id: int) -> None:
        self.vm = vm
        self.machine_id = machine_id
        self.spec = vm.topology.machines[machine_id]
        name = self.spec.name
        # With NIC serialization disabled (an ablation), ports behave as
        # if they had unlimited parallel channels.
        port_capacity = 1 if vm.serialize_nic else 1_000_000
        self.cpu = Resource(vm.engine, capacity=1, name=f"{name}.cpu")
        self.nic_in = Resource(vm.engine, capacity=port_capacity, name=f"{name}.nic_in")
        self.nic_out = Resource(vm.engine, capacity=port_capacity, name=f"{name}.nic_out")
        self.tasks: list[Task] = []

    def __repr__(self) -> str:
        return f"<Host {self.spec.name} ({len(self.tasks)} tasks)>"


class VirtualMachine:
    """A simulated PVM session over a cluster topology.

    Parameters
    ----------
    topology:
        The heterogeneous cluster to enrol.
    engine:
        Optionally share an existing simulation engine.
    trace:
        Enable structured tracing of pack/inject/drain/unpack/compute.
    injector:
        Optional fresh :class:`~repro.faults.Injector`; attaches its
        fault plan (time-varying rates, message drops/delays,
        background load) to this machine.
    delivery:
        Default :class:`~repro.pvm.DeliveryPolicy` for every send
        (``None`` = the classic fire-and-forget fast path).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        engine: Engine | None = None,
        trace: bool = False,
        serialize_nic: bool = True,
        injector: "t.Any | None" = None,
        delivery: "DeliveryPolicy | None" = None,
    ) -> None:
        self.topology = topology
        self.engine = engine if engine is not None else Engine()
        self.trace = Trace(enabled=trace)
        #: Per-run metrics (messages/bytes by network, fault counters);
        #: harvested into RunObs records by the observability layer.
        self.metrics = MetricsRegistry()
        #: When False (ablation), concurrent transfers through one NIC
        #: port do not contend — see experiments.ablations.
        self.serialize_nic = serialize_nic
        self.hosts = [Host(self, mid) for mid in range(topology.num_machines)]
        self._tasks: dict[int, Task] = {}
        self._next_tid = 1  # PVM tids start above 0
        self.delivery = delivery
        self.injector = injector
        self._next_uid = 0
        #: Retry monitors spawned by reliable sends; killed at run end.
        self._fault_processes: list[t.Any] = []
        if injector is not None:
            injector.attach(self)

    # -- tasks -------------------------------------------------------------------
    def spawn(
        self,
        func: t.Callable[..., t.Generator],
        host: int | str,
        *args: t.Any,
        name: str = "",
        **kwargs: t.Any,
    ) -> Task:
        """Start ``func(task, *args, **kwargs)`` as a task on ``host``.

        ``func`` must be a generator function taking the new
        :class:`Task` as its first argument.  Returns the task; its
        ``process`` attribute is the joinable process event.
        """
        machine_id = host if isinstance(host, int) else self.topology.machine_id(host)
        if not 0 <= machine_id < len(self.hosts):
            raise PvmError(f"no host with machine id {machine_id}")
        host_obj = self.hosts[machine_id]
        tid = self._next_tid
        self._next_tid += 1
        task = Task(self, tid, host_obj, name or f"task{tid}@{host_obj.spec.name}")
        generator = func(task, *args, **kwargs)
        if not hasattr(generator, "send"):
            raise PvmError(
                f"spawned function {func!r} must be a generator function "
                "(use 'yield from task.send(...)' etc.)"
            )
        task.process = self.engine.process(generator, name=task.name)
        self._tasks[tid] = task
        host_obj.tasks.append(task)
        return task

    def task(self, tid: int) -> Task:
        """Look up a live task by tid."""
        try:
            return self._tasks[tid]
        except KeyError:
            raise TaskNotFound(tid) from None

    @property
    def tids(self) -> tuple[int, ...]:
        """All spawned task ids, in spawn order."""
        return tuple(self._tasks)

    # -- routing --------------------------------------------------------------------
    def route(self, src: Host, dst: Host) -> tuple[NetworkSpec, int]:
        """Network (and level) crossed between two hosts."""
        if src is dst:
            raise PvmError("route() called for a self-send")  # handled in Task.send
        return self.topology.route(src.machine_id, dst.machine_id)

    # -- execution --------------------------------------------------------------------
    @property
    def macro_capable(self) -> bool:
        """True when the macro-event fast path may drive this machine.

        The macro engine (:mod:`repro.sim.macro`) batch-computes
        fault-free superstep timing arithmetically, so every hook that
        observes or perturbs individual message events must be off: no
        fault injector, no delivery policy (even an unarmed one routes
        through :meth:`run`'s clock-stop semantics), no structured
        trace, and NIC serialization on (the timeline fold models the
        serialized port).
        """
        return (
            self.injector is None
            and self.delivery is None
            and not self.trace.enabled
            and self.serialize_nic
        )

    def take_uid(self) -> int:
        """Next unique message id (for receiver-side duplicate suppression)."""
        self._next_uid += 1
        return self._next_uid

    def run(self, until: float | None = None) -> float:
        """Run the simulation; returns the final virtual time.

        Raises :class:`~repro.errors.DeadlockError` if tasks block
        forever (e.g. a receive nobody answers).

        With an injector or a delivery policy active, the clock stops
        when every task has finished instead of when the queue drains —
        background-load hogs and armed retry timers must not inflate
        the measured makespan — and leftover fault processes are killed.
        """
        if self.injector is None and self.delivery is None:
            return self.engine.run(until=until)
        targets = [t.process for t in self._tasks.values() if t.process is not None]
        time = self.engine.run_until(targets, until=until)
        for process in self._fault_processes:
            process.kill()
        if self.injector is not None:
            self.injector.shutdown()
        return time

    def results(self) -> dict[int, t.Any]:
        """Return values of all finished tasks, keyed by tid."""
        out: dict[int, t.Any] = {}
        for tid, task in self._tasks.items():
            if task.process is not None and task.process.triggered and task.process.ok:
                out[tid] = task.process.value
        return out

    def __repr__(self) -> str:
        return (
            f"VirtualMachine({self.topology!r}, {len(self._tasks)} tasks, "
            f"t={self.engine.now:.6g})"
        )
