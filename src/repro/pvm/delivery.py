"""Delivery guarantees for PVM sends under faults.

Real PVM over UDP offers best-effort delivery; TCP-backed routes retry
transparently.  :class:`DeliveryPolicy` makes that choice explicit for
the simulated runtime:

* **at-most-once** (the default, ``DeliveryPolicy.at_most_once()``) —
  a send is packed and injected exactly once; if the fault layer drops
  the message it is silently lost (the sender's delivery event still
  resolves so BSP flushes cannot deadlock on a ghost).
* **retry(n)** (``DeliveryPolicy.retry(n, timeout=...)``) — the sender
  arms a per-send timeout; if delivery is not confirmed in time, the
  message is re-injected after a bounded exponential backoff, up to
  ``n`` retries.  Retransmissions re-pay NIC injection (the payload is
  already packed), and receivers suppress duplicates, so the guarantee
  is effectively exactly-once or a :class:`repro.errors.TimeoutError`.

Attaching *any* policy — even ``at_most_once`` on a fault-free
machine, where it changes nothing — forces the object-event path: a
policy watches per-message delivery events, which the macro-event
fast path (:mod:`repro.sim.macro`) never materialises.  Leave
``delivery=None`` to keep fault-free runs on the fast path.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ValidationError

__all__ = ["DeliveryPolicy"]


@dataclasses.dataclass(frozen=True)
class DeliveryPolicy:
    """How hard a send tries to get its message delivered.

    Parameters
    ----------
    timeout:
        Seconds to wait for delivery confirmation before declaring an
        attempt lost.  ``None`` means wait forever (no retries).
    retries:
        Maximum number of retransmissions after the first attempt.
    backoff_base:
        Delay before the first retransmission; defaults to ``timeout``.
    backoff_factor:
        Multiplier applied to the backoff after every retry (bounded
        exponential backoff).
    """

    timeout: float | None = None
    retries: int = 0
    backoff_base: float | None = None
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {self.timeout!r}")
        if self.retries < 0:
            raise ValidationError(f"retries must be >= 0, got {self.retries!r}")
        if self.retries > 0 and self.timeout is None:
            raise ValidationError("retries > 0 requires a finite timeout")
        if self.backoff_base is not None and self.backoff_base < 0:
            raise ValidationError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    @classmethod
    def at_most_once(cls) -> "DeliveryPolicy":
        """Fire-and-forget: one attempt, dropped messages stay lost."""
        return cls()

    @classmethod
    def retry(
        cls,
        retries: int,
        *,
        timeout: float,
        backoff_base: float | None = None,
        backoff_factor: float = 2.0,
    ) -> "DeliveryPolicy":
        """Timeout-armed sends with up to ``retries`` retransmissions."""
        return cls(
            timeout=timeout,
            retries=retries,
            backoff_base=backoff_base,
            backoff_factor=backoff_factor,
        )

    @property
    def max_attempts(self) -> int:
        """Total delivery attempts: the first send plus every retry."""
        return 1 + self.retries

    @property
    def armed(self) -> bool:
        """True when sends watch a timeout (the reliable path)."""
        return self.timeout is not None

    def backoff_for(self, retry_index: int) -> float:
        """Backoff before retransmission ``retry_index`` (0-based)."""
        base = self.backoff_base if self.backoff_base is not None else self.timeout or 0.0
        return base * self.backoff_factor**retry_index

    def __repr__(self) -> str:
        if not self.armed:
            return "DeliveryPolicy(at-most-once)"
        return (
            f"DeliveryPolicy(timeout={self.timeout:g}, retries={self.retries}, "
            f"backoff={self.backoff_base if self.backoff_base is not None else self.timeout:g}"
            f"x{self.backoff_factor:g})"
        )
