"""Tasks: the processes of the PVM-like virtual machine.

A task runs a user generator on one host.  Its communication methods
are generators themselves (``yield from task.send(...)``) because they
consume virtual time on the host's CPU and NIC resources.

The timing of ``send(dst, payload)`` (see DESIGN.md §5):

1. **pack** — hold the sender host's CPU for
   ``machine.pack_time(nbytes)`` (PVM XDR encoding; slower on slower
   CPUs — the asymmetry behind the paper's p = 2 gather inversion);
2. **inject** — hold the sender's NIC out-port for
   ``nbytes · max(machine.nic_gap, network.gap)``;
3. **wire** — after ``network.latency``, the message reaches the
   receiver (the network is the LCA cluster's network);
4. **drain** — hold the receiver's NIC in-port for
   ``nbytes · max(receiver.nic_gap, network.gap)``; many senders
   targeting one receiver serialise here;
5. **unpack** — charged to the receiver's CPU inside ``recv``.

``send`` returns after step 2 (asynchronous, like ``pvm_send``); the
returned event completes at mailbox delivery so BSP-style supersteps
can wait for communication to finish.
"""

from __future__ import annotations

import typing as t

from repro.errors import PvmError, TimeoutError
from repro.pvm.message import Message, payload_nbytes
from repro.sim.events import AnyOf, Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import NetworkSpec
    from repro.pvm.delivery import DeliveryPolicy
    from repro.pvm.vm import Host, VirtualMachine

__all__ = ["Task"]


class Task:
    """One task (process) of the virtual machine.

    Created via :meth:`repro.pvm.VirtualMachine.spawn`; user code
    receives the task object as its first argument.
    """

    __slots__ = (
        "vm", "tid", "host", "name", "mailbox", "_delivered_uids",
        "_link_names", "sent_messages", "sent_bytes",
        "received_messages", "received_bytes", "process", "macro_now",
    )

    def __init__(self, vm: "VirtualMachine", tid: int, host: "Host", name: str) -> None:
        self.vm = vm
        self.tid = tid
        self.host = host
        self.name = name
        from repro.sim.resources import Store

        self.mailbox = Store(vm.engine, name=f"{name}.mailbox")
        #: Uids already delivered here (suppresses retransmit duplicates).
        self._delivered_uids: set[int] = set()
        #: Cached per-destination event/process labels (f-strings are
        #: too expensive to rebuild on every send).
        self._link_names: dict[int, tuple[str, str]] = {}
        #: Statistics: (messages, bytes) sent and received.
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        self.process: t.Any = None  # set by VirtualMachine.spawn
        #: Private local clock under the macro-event path (the task's
        #: superstep segment runs at one engine instant there, so the
        #: engine clock lags the task's virtual progress); ``None`` on
        #: the object path, where engine time is task time.
        self.macro_now: float | None = None

    def _names_for(self, target: "Task") -> tuple[str, str]:
        """Cached ``(arrival, delivery-process)`` labels for a destination."""
        names = self._link_names.get(target.tid)
        if names is None:
            link = f"{self.name}->{target.name}"
            names = (link, "deliver:" + link)
            self._link_names[target.tid] = names
        return names

    # -- communication -------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: t.Any,
        *,
        tag: int = 0,
        nbytes: int | None = None,
        policy: "DeliveryPolicy | None" = None,
    ) -> t.Generator[Event, t.Any, Event]:
        """Send ``payload`` to task ``dst``; returns the delivery event.

        A generator: ``delivery = yield from task.send(...)``.  Control
        returns once the message has been packed and injected; the
        returned event succeeds (with the :class:`Message`) when the
        message lands in the destination mailbox.

        ``policy`` (default: the machine's ``delivery`` policy) selects
        the delivery guarantee under injected faults.  With an *armed*
        policy the send watches a timeout and retransmits with bounded
        exponential backoff; the returned event then fails with
        :class:`~repro.errors.TimeoutError` once every attempt is
        exhausted.  Without one, a dropped message resolves the event
        with ``None`` (at-most-once: the sender never learns).
        """
        vm = self.vm
        engine = vm.engine
        trace = vm.trace
        target = vm.task(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if size < 0:
            raise PvmError(f"nbytes must be >= 0, got {size}")
        sent_at = engine.now
        self.sent_messages += 1
        self.sent_bytes += size

        if target is self:
            # Loopback: a processor does not send data to itself.
            message = Message(self.tid, dst, tag, payload, 0, sent_at, engine.now)
            self.mailbox.put(message)
            done = engine.event(name=f"{self.name}.self-send")
            done.succeed(message)
            return done

        host = self.host
        spec = host.spec
        if target.host is host:
            # Same-host IPC between distinct tasks: packed through the
            # daemon on the shared CPU, but never touches the NIC or
            # the wire.
            pack = spec.pack_time(size)
            start = engine.now
            yield from host.cpu.occupy(pack)
            if trace.enabled:
                trace.emit(
                    engine.now, "pack", self.name, engine.now - start,
                    nbytes=size, dst=dst, local=True,
                )
            message = Message(self.tid, dst, tag, payload, size, sent_at, engine.now)
            target.mailbox.put(message)
            done = engine.event(name=f"{self.name}.local-send")
            done.succeed(message)
            return done

        network, level = vm.route(host, target.host)
        multiplier = vm.topology.pair_multiplier(host.machine_id, target.host.machine_id)
        if policy is None:
            policy = vm.delivery
        metrics = vm.metrics
        net_labels = (("network", network.name),)
        metrics.inc("repro_messages_sent_total", 1.0, net_labels)
        metrics.inc("repro_bytes_sent_total", float(size), net_labels)

        # 1. pack on the sender CPU
        pack = spec.pack_time(size)
        start = engine.now
        yield from host.cpu.occupy(pack)
        if trace.enabled:
            trace.emit(engine.now, "pack", self.name, engine.now - start, nbytes=size, dst=dst)

        # 2. inject through the sender NIC
        inject = size * network.effective_gap(spec.nic_gap) * multiplier
        if vm.injector is not None:
            inject = vm.injector.transfer_time(network.name, engine.now, inject)
        start = engine.now
        yield from host.nic_out.occupy(inject)
        if trace.enabled:
            trace.emit(
                engine.now, "inject", self.name, engine.now - start,
                nbytes=size, dst=dst, network=network.name, level=level,
            )

        # 3 + 4. wire latency then drain at the receiver, in background.
        arrival_name, deliver_name = self._names_for(target)
        done = engine.event(name=arrival_name)

        if policy is None or not policy.armed:
            # Fire-and-forget: one attempt; `done` resolves at delivery
            # (or with None at a fault-layer drop).
            engine.process(
                self._delivery(target, network, multiplier, size, payload, tag,
                               sent_at, uid=None, arrival=done, attempt=0),
                name=deliver_name,
            )
            return done

        # Reliable path: watch a timeout, retransmit with backoff, and
        # fail `done` with TimeoutError once attempts are exhausted.
        uid = vm.take_uid()
        arrival = engine.event(name=f"{self.name}->{target.name}#0")
        engine.process(
            self._delivery(target, network, multiplier, size, payload, tag,
                           sent_at, uid=uid, arrival=arrival, attempt=0),
            name=f"deliver:{self.name}->{target.name}#0",
        )
        monitor = engine.process(
            self._retry_monitor(target, network, multiplier, size, payload, tag,
                                sent_at, uid, policy, arrival, done),
            name=f"retry:{self.name}->{target.name}",
        )
        vm._fault_processes.append(monitor)
        return done

    def _delivery(
        self,
        target: "Task",
        network: "NetworkSpec",
        multiplier: float,
        size: int,
        payload: t.Any,
        tag: int,
        sent_at: float,
        *,
        uid: int | None,
        arrival: Event,
        attempt: int,
    ) -> t.Generator[Event, t.Any, None]:
        """One delivery attempt: wire latency, receiver drain, mailbox put.

        With a fault injector the message may be dropped (the attempt
        vanishes; ``arrival`` resolves with ``None`` only on the
        fire-and-forget path, where ``uid`` is None) or delayed.
        Retransmissions (``uid`` set) are suppressed at the receiver if
        an earlier attempt already landed.
        """
        vm = self.vm
        engine = vm.engine
        trace = vm.trace
        injector = vm.injector
        latency = network.latency
        if injector is not None:
            dropped, extra_delay = injector.message_fate(network.name, engine.now)
            if dropped:
                if trace.enabled:
                    trace.emit(
                        engine.now, "drop", self.name, 0.0,
                        dst=target.tid, nbytes=size, attempt=attempt,
                    )
                if uid is None:
                    arrival.succeed(None)
                return
            latency += injector.extra_latency(network.name, engine.now) + extra_delay
        yield engine.timeout(latency)
        drain = size * network.effective_gap(target.host.spec.nic_gap) * multiplier
        if injector is not None:
            drain = injector.transfer_time(network.name, engine.now, drain)
        start = engine.now
        yield from target.host.nic_in.occupy(drain)
        if trace.enabled:
            trace.emit(
                engine.now, "drain", target.name, engine.now - start,
                nbytes=size, src=self.tid, network=network.name,
            )
        if uid is not None:
            if uid in target._delivered_uids:
                return  # a prior attempt already delivered this send
            target._delivered_uids.add(uid)
        message = Message(self.tid, target.tid, tag, payload, size, sent_at, engine.now, uid)
        target.mailbox.put(message)
        arrival.succeed(message)

    def _retry_monitor(
        self,
        target: "Task",
        network: "NetworkSpec",
        multiplier: float,
        size: int,
        payload: t.Any,
        tag: int,
        sent_at: float,
        uid: int,
        policy: "DeliveryPolicy",
        first_arrival: Event,
        done: Event,
    ) -> t.Generator[Event, t.Any, None]:
        """Timeout/retransmit loop backing one reliable send.

        Each round waits ``policy.timeout`` for *any* outstanding
        attempt to land (late originals count); on expiry the payload
        is re-injected through the sender NIC after a bounded
        exponential backoff.  Exhaustion fails ``done``.
        """
        vm = self.vm
        engine = vm.engine
        arrivals = [first_arrival]
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                vm.metrics.inc("repro_send_retries_total")
                backoff = policy.backoff_for(attempt - 1)
                if backoff > 0:
                    yield engine.timeout(backoff)
                inject = size * network.effective_gap(self.host.spec.nic_gap) * multiplier
                if vm.injector is not None:
                    inject = vm.injector.transfer_time(network.name, engine.now, inject)
                start = engine.now
                yield from self.host.nic_out.occupy(inject)
                vm.trace.emit(
                    engine.now, "inject", self.name, engine.now - start,
                    nbytes=size, dst=target.tid, network=network.name, retry=attempt,
                )
                arrival = engine.event(name=f"{self.name}->{target.name}#{attempt}")
                engine.process(
                    self._delivery(target, network, multiplier, size, payload, tag,
                                   sent_at, uid=uid, arrival=arrival, attempt=attempt),
                    name=f"deliver:{self.name}->{target.name}#{attempt}",
                )
                arrivals.append(arrival)
            timer = engine.timeout(policy.timeout)
            yield AnyOf(engine, (*arrivals, timer), name=f"{self.name}.sendwait")
            delivered = next((a for a in arrivals if a.triggered and a.ok), None)
            if delivered is not None:
                done.succeed(delivered.value)
                return
            vm.metrics.inc("repro_send_timeouts_total")
            vm.trace.emit(
                engine.now, "timeout", self.name, 0.0,
                dst=target.tid, nbytes=size, attempt=attempt,
            )
        vm.metrics.inc("repro_sends_failed_total")
        done.fail(TimeoutError(
            f"send {self.name} -> {target.name} undelivered after "
            f"{policy.max_attempts} attempt(s) of {policy.timeout:g}s each",
            src=self.tid, dst=target.tid, attempts=policy.max_attempts,
        ))

    def recv(
        self,
        source: int | None = None,
        tag: int | None = None,
    ) -> t.Generator[Event, t.Any, Message]:
        """Blocking receive with PVM-style wildcards; charges unpack time.

        A generator: ``msg = yield from task.recv(...)``.
        """
        if source is None and tag is None:
            message: Message = yield self.mailbox.get()
        else:
            message = yield self.mailbox.get(lambda m: m.matches(source, tag))
        unpack = self.host.spec.unpack_time(message.nbytes)
        if unpack > 0:
            engine = self.vm.engine
            start = engine.now
            yield from self.host.cpu.occupy(unpack)
            trace = self.vm.trace
            if trace.enabled:
                trace.emit(
                    engine.now, "unpack", self.name,
                    engine.now - start, nbytes=message.nbytes, src=message.src,
                )
        self.received_messages += 1
        self.received_bytes += message.nbytes
        return message

    def try_recv(self, source: int | None = None, tag: int | None = None) -> Message | None:
        """Non-blocking probe-and-take (``pvm_nrecv``); no unpack charge."""
        if source is None and tag is None:
            message = self.mailbox.try_take()
        else:
            message = self.mailbox.try_take(lambda m: m.matches(source, tag))
        if message is not None:
            self.received_messages += 1
            self.received_bytes += message.nbytes
        return message

    # -- computation -----------------------------------------------------------
    def compute(self, work: float) -> t.Generator[Event, t.Any, None]:
        """Consume ``work`` CPU work units on this task's host.

        A generator: ``yield from task.compute(...)``.
        """
        duration = self.host.spec.compute_time(work)
        engine = self.vm.engine
        start = engine.now
        yield from self.host.cpu.occupy(duration)
        trace = self.vm.trace
        if trace.enabled:
            trace.emit(engine.now, "compute", self.name, engine.now - start, work=work)

    def sleep(self, duration: float) -> Event:
        """An event that fires after ``duration`` (idle wait, no CPU)."""
        return self.vm.engine.timeout(duration)

    @property
    def now(self) -> float:
        """Current virtual time (this task's local clock under the
        macro-event path)."""
        macro_now = self.macro_now
        return self.vm.engine.now if macro_now is None else macro_now

    def __repr__(self) -> str:
        return f"<Task {self.tid} {self.name!r} on {self.host.spec.name}>"
