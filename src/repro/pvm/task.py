"""Tasks: the processes of the PVM-like virtual machine.

A task runs a user generator on one host.  Its communication methods
are generators themselves (``yield from task.send(...)``) because they
consume virtual time on the host's CPU and NIC resources.

The timing of ``send(dst, payload)`` (see DESIGN.md §5):

1. **pack** — hold the sender host's CPU for
   ``machine.pack_time(nbytes)`` (PVM XDR encoding; slower on slower
   CPUs — the asymmetry behind the paper's p = 2 gather inversion);
2. **inject** — hold the sender's NIC out-port for
   ``nbytes · max(machine.nic_gap, network.gap)``;
3. **wire** — after ``network.latency``, the message reaches the
   receiver (the network is the LCA cluster's network);
4. **drain** — hold the receiver's NIC in-port for
   ``nbytes · max(receiver.nic_gap, network.gap)``; many senders
   targeting one receiver serialise here;
5. **unpack** — charged to the receiver's CPU inside ``recv``.

``send`` returns after step 2 (asynchronous, like ``pvm_send``); the
returned event completes at mailbox delivery so BSP-style supersteps
can wait for communication to finish.
"""

from __future__ import annotations

import typing as t

from repro.errors import PvmError
from repro.pvm.message import Message, payload_nbytes
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.pvm.vm import Host, VirtualMachine

__all__ = ["Task"]


class Task:
    """One task (process) of the virtual machine.

    Created via :meth:`repro.pvm.VirtualMachine.spawn`; user code
    receives the task object as its first argument.
    """

    def __init__(self, vm: "VirtualMachine", tid: int, host: "Host", name: str) -> None:
        self.vm = vm
        self.tid = tid
        self.host = host
        self.name = name
        from repro.sim.resources import Store

        self.mailbox = Store(vm.engine, name=f"{name}.mailbox")
        #: Statistics: (messages, bytes) sent and received.
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        self.process: t.Any = None  # set by VirtualMachine.spawn

    # -- communication -------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: t.Any,
        *,
        tag: int = 0,
        nbytes: int | None = None,
    ) -> t.Generator[Event, t.Any, Event]:
        """Send ``payload`` to task ``dst``; returns the delivery event.

        A generator: ``delivery = yield from task.send(...)``.  Control
        returns once the message has been packed and injected; the
        returned event succeeds (with the :class:`Message`) when the
        message lands in the destination mailbox.
        """
        vm = self.vm
        engine = vm.engine
        target = vm.task(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if size < 0:
            raise PvmError(f"nbytes must be >= 0, got {size}")
        sent_at = engine.now
        self.sent_messages += 1
        self.sent_bytes += size

        if target is self:
            # Loopback: a processor does not send data to itself.
            message = Message(self.tid, dst, tag, payload, 0, sent_at, engine.now)
            self.mailbox.put(message)
            done = engine.event(name=f"{self.name}.self-send")
            done.succeed(message)
            return done

        if target.host is self.host:
            # Same-host IPC between distinct tasks: packed through the
            # daemon on the shared CPU, but never touches the NIC or
            # the wire.
            pack = self.host.spec.pack_time(size)
            start = engine.now
            yield from self.host.cpu.occupy(pack)
            vm.trace.emit(
                engine.now, "pack", self.name, engine.now - start,
                nbytes=size, dst=dst, local=True,
            )
            message = Message(self.tid, dst, tag, payload, size, sent_at, engine.now)
            target.mailbox.put(message)
            done = engine.event(name=f"{self.name}.local-send")
            done.succeed(message)
            return done

        network, level = vm.route(self.host, target.host)
        multiplier = vm.topology.pair_multiplier(self.host.machine_id, target.host.machine_id)

        # 1. pack on the sender CPU
        pack = self.host.spec.pack_time(size)
        start = engine.now
        yield from self.host.cpu.occupy(pack)
        vm.trace.emit(engine.now, "pack", self.name, engine.now - start, nbytes=size, dst=dst)

        # 2. inject through the sender NIC
        inject = size * network.effective_gap(self.host.spec.nic_gap) * multiplier
        start = engine.now
        yield from self.host.nic_out.occupy(inject)
        vm.trace.emit(
            engine.now, "inject", self.name, engine.now - start,
            nbytes=size, dst=dst, network=network.name, level=level,
        )

        # 3 + 4. wire latency then drain at the receiver, in background.
        done = engine.event(name=f"{self.name}->{target.name}")

        def delivery() -> t.Generator[Event, t.Any, None]:
            yield engine.timeout(network.latency)
            drain = size * network.effective_gap(target.host.spec.nic_gap) * multiplier
            start = engine.now
            yield from target.host.nic_in.occupy(drain)
            vm.trace.emit(
                engine.now, "drain", target.name, engine.now - start,
                nbytes=size, src=self.tid, network=network.name,
            )
            message = Message(self.tid, dst, tag, payload, size, sent_at, engine.now)
            target.mailbox.put(message)
            done.succeed(message)

        engine.process(delivery(), name=f"deliver:{self.name}->{target.name}")
        return done

    def recv(
        self,
        source: int | None = None,
        tag: int | None = None,
    ) -> t.Generator[Event, t.Any, Message]:
        """Blocking receive with PVM-style wildcards; charges unpack time.

        A generator: ``msg = yield from task.recv(...)``.
        """
        message: Message = yield self.mailbox.get(
            lambda m: m.matches(source, tag)
        )
        unpack = self.host.spec.unpack_time(message.nbytes)
        if unpack > 0:
            start = self.vm.engine.now
            yield from self.host.cpu.occupy(unpack)
            self.vm.trace.emit(
                self.vm.engine.now, "unpack", self.name,
                self.vm.engine.now - start, nbytes=message.nbytes, src=message.src,
            )
        self.received_messages += 1
        self.received_bytes += message.nbytes
        return message

    def try_recv(self, source: int | None = None, tag: int | None = None) -> Message | None:
        """Non-blocking probe-and-take (``pvm_nrecv``); no unpack charge."""
        for message in self.mailbox.peek_all():
            if message.matches(source, tag):
                # Re-get deterministically through the store.
                event = self.mailbox.get(lambda m: m is message)
                assert event.triggered
                self.received_messages += 1
                self.received_bytes += message.nbytes
                return message
        return None

    # -- computation -----------------------------------------------------------
    def compute(self, work: float) -> t.Generator[Event, t.Any, None]:
        """Consume ``work`` CPU work units on this task's host.

        A generator: ``yield from task.compute(...)``.
        """
        duration = self.host.spec.compute_time(work)
        start = self.vm.engine.now
        yield from self.host.cpu.occupy(duration)
        self.vm.trace.emit(
            self.vm.engine.now, "compute", self.name, self.vm.engine.now - start, work=work
        )

    def sleep(self, duration: float) -> Event:
        """An event that fires after ``duration`` (idle wait, no CPU)."""
        return self.vm.engine.timeout(duration)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.vm.engine.now

    def __repr__(self) -> str:
        return f"<Task {self.tid} {self.name!r} on {self.host.spec.name}>"
