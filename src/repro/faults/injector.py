"""Compiling fault plans into simulation behaviour.

An :class:`Injector` is attached to one
:class:`~repro.pvm.VirtualMachine` (a fresh injector per run, like the
runtime itself) and translates the declarative plan into:

* per-machine CPU/NIC slowdown :class:`~repro.faults.timeline.Timeline`\\ s,
  installed as ``time_scale`` hooks on the host resources;
* per-network bandwidth timelines and additive latency windows,
  consulted by :meth:`repro.pvm.Task.send`;
* per-message drop/delay coins drawn from named
  :class:`~repro.util.rng.RngStream`\\ s (bit-reproducible per seed);
* background-load hog processes competing for host CPUs through the
  ordinary FIFO resources.

All scheduled randomness derives from ``derive_seed(seed, "faults",
...)`` streams, so two runs with the same plan and seed are identical.
"""

from __future__ import annotations

import math
import typing as t

from repro.errors import FaultError
from repro.faults.plan import (
    BackgroundLoad,
    FaultPlan,
    LinkDegradation,
    MachinePause,
    MachineSlowdown,
    MessageFaults,
)
from repro.faults.timeline import Timeline, Window
from repro.util.rng import RngStream

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.pvm.vm import Host, VirtualMachine

__all__ = ["Injector"]


class Injector:
    """Deterministic fault injection for one simulated run.

    Parameters
    ----------
    plan:
        The declarative :class:`~repro.faults.FaultPlan` to compile.
    seed:
        Root seed for every stochastic fault decision; two injectors
        with the same plan and seed behave identically.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.vm: "VirtualMachine | None" = None
        self._cpu_timelines: dict[int, Timeline] = {}
        self._nic_timelines: dict[int, Timeline] = {}
        self._link_timelines: dict[str, Timeline] = {}
        self._latency_windows: dict[str, list[LinkDegradation]] = {}
        self._message_rules: list[tuple[MessageFaults, RngStream]] = []
        self._processes: list[t.Any] = []

    # -- attachment -----------------------------------------------------------
    def attach(self, vm: "VirtualMachine") -> None:
        """Compile the plan against ``vm`` and install the hooks.

        Called by :class:`~repro.pvm.VirtualMachine` during
        construction; an injector is single-use.
        """
        if self.vm is not None:
            raise FaultError(
                "injector already attached; create a fresh Injector per run"
            )
        self.vm = vm
        self.plan.validate(vm.topology)
        stream = RngStream(self.seed, "faults")

        cpu_windows: dict[int, list[Window]] = {}
        nic_windows: dict[int, list[Window]] = {}
        link_windows: dict[str, list[Window]] = {}
        for index, fault in enumerate(self.plan):
            if isinstance(fault, MachineSlowdown):
                mid = vm.topology.machine_id(fault.machine)
                cpu_windows.setdefault(mid, []).append(
                    Window(fault.start, fault.end, fault.factor)
                )
            elif isinstance(fault, MachinePause):
                mid = vm.topology.machine_id(fault.machine)
                window = Window(fault.start, fault.end, math.inf)
                cpu_windows.setdefault(mid, []).append(window)
                nic_windows.setdefault(mid, []).append(window)
            elif isinstance(fault, LinkDegradation):
                if fault.gap_factor > 1.0:
                    link_windows.setdefault(fault.network, []).append(
                        Window(fault.start, fault.end, fault.gap_factor)
                    )
                if fault.extra_latency > 0:
                    self._latency_windows.setdefault(fault.network, []).append(fault)
            elif isinstance(fault, MessageFaults):
                self._message_rules.append(
                    (fault, stream.child("messages", index))
                )
            elif isinstance(fault, BackgroundLoad):
                mid = vm.topology.machine_id(fault.machine)
                self._processes.append(
                    vm.engine.process(
                        self._hog(vm.hosts[mid], fault, stream.child("bgload", index)),
                        name=f"bgload:{fault.machine}",
                    )
                )
            self._emit_fault_mark(vm, fault)

        self._cpu_timelines = {m: Timeline(w) for m, w in cpu_windows.items()}
        self._nic_timelines = {m: Timeline(w) for m, w in nic_windows.items()}
        self._link_timelines = {n: Timeline(w) for n, w in link_windows.items()}
        for mid, timeline in self._cpu_timelines.items():
            vm.hosts[mid].cpu.time_scale = timeline.stretch
        for mid, timeline in self._nic_timelines.items():
            vm.hosts[mid].nic_in.time_scale = timeline.stretch
            vm.hosts[mid].nic_out.time_scale = timeline.stretch

    @staticmethod
    def _emit_fault_mark(vm: "VirtualMachine", fault) -> None:
        """Trace the fault window (category ``"fault"``) for Gantt overlays."""
        end = getattr(fault, "end", math.inf)
        vm.trace.emit(
            fault.start,
            "fault",
            getattr(fault, "machine", None) or getattr(fault, "network", None) or "*",
            0.0 if math.isinf(end) else end - fault.start,
            kind=fault.kind,
        )

    @property
    def has_background(self) -> bool:
        """True when the plan spawned background (hog) processes."""
        return bool(self._processes)

    # Drop/delay statistics live in the attached machine's metrics
    # registry (single bookkeeping; exported via repro.obs); these
    # properties keep the original integer-attribute API.
    @property
    def dropped_messages(self) -> int:
        """Messages dropped by this injector so far."""
        if self.vm is None:
            return 0
        return int(self.vm.metrics.value("repro_messages_dropped_total"))

    @property
    def delayed_messages(self) -> int:
        """Messages delayed by this injector so far."""
        if self.vm is None:
            return 0
        return int(self.vm.metrics.value("repro_messages_delayed_total"))

    def shutdown(self) -> None:
        """Kill any still-running background processes (end of run)."""
        for process in self._processes:
            process.kill()

    # -- queries used by the PVM layer ----------------------------------------
    def transfer_time(self, network_name: str, start: float, nominal: float) -> float:
        """Actual NIC transfer duration under link congestion windows."""
        timeline = self._link_timelines.get(network_name)
        if timeline is None:
            return nominal
        return timeline.stretch(start, nominal)

    def extra_latency(self, network_name: str, now: float) -> float:
        """Additional one-way wire latency active on ``network_name`` now."""
        extra = 0.0
        for fault in self._latency_windows.get(network_name, ()):
            if fault.start <= now < fault.end:
                extra += fault.extra_latency
        return extra

    def message_fate(self, network_name: str, now: float) -> tuple[bool, float]:
        """Decide one message's fate: ``(dropped, extra_delay_seconds)``.

        Applies every matching :class:`MessageFaults` rule in plan
        order; the first drop wins, delays accumulate.
        """
        delay = 0.0
        for rule, stream in self._message_rules:
            if rule.network is not None and rule.network != network_name:
                continue
            if not rule.start <= now < rule.end:
                continue
            if rule.drop_prob > 0 and stream.uniform() < rule.drop_prob:
                self.vm.metrics.inc("repro_messages_dropped_total")
                return True, 0.0
            if rule.delay_prob > 0 and stream.uniform() < rule.delay_prob:
                delay += stream.exponential(rule.delay_mean)
        if delay > 0:
            self.vm.metrics.inc("repro_messages_delayed_total")
        return False, delay

    # -- background load --------------------------------------------------------
    def _hog(
        self, host: "Host", spec: BackgroundLoad, stream: RngStream
    ) -> t.Generator:
        """On/off CPU hog competing through the host's FIFO CPU resource."""
        engine = host.vm.engine
        if spec.start > 0:
            yield engine.timeout(spec.start)
        while engine.now < spec.end:
            busy = stream.exponential(spec.burst_mean * spec.intensity)
            idle = stream.exponential(spec.burst_mean * (1.0 - spec.intensity))
            busy = min(busy, spec.end - engine.now)
            if busy > 0:
                yield host.cpu.request()
                try:
                    yield engine.timeout(busy)
                finally:
                    host.cpu.release()
            if engine.now >= spec.end:
                break
            yield engine.timeout(min(idle, spec.end - engine.now))

    def __repr__(self) -> str:
        state = "attached" if self.vm is not None else "unattached"
        return f"Injector({self.plan!r}, seed={self.seed}, {state})"
