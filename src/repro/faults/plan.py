"""Declarative fault plans.

A :class:`FaultPlan` is a list of fault specifications — machine
slowdowns and pauses, link degradations, stochastic message faults,
and stochastic background CPU load — that the
:class:`~repro.faults.Injector` compiles against a concrete cluster.
Plans are plain data: they serialise to JSON (``repro run --faults
plan.json``) and validate against a topology before a run starts.

Durations of ``None`` mean "until the end of the run" where that is
well-defined (slowdowns, degradations, message faults); pauses and
background load must end so simulations terminate.
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing as t

from repro.errors import FaultPlanError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import ClusterTopology

__all__ = [
    "MachineSlowdown",
    "MachinePause",
    "LinkDegradation",
    "MessageFaults",
    "BackgroundLoad",
    "FaultPlan",
    "straggler_plan",
    "congestion_plan",
    "flaky_network_plan",
]


def _check_window(start: float, duration: float | None, *, finite: bool = False) -> None:
    if start < 0:
        raise FaultPlanError(f"start must be >= 0, got {start!r}")
    if duration is not None and duration <= 0:
        raise FaultPlanError(f"duration must be > 0, got {duration!r}")
    if finite and duration is None:
        raise FaultPlanError("this fault kind requires a finite duration")


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1], got {value!r}")


def _end(start: float, duration: float | None) -> float:
    return math.inf if duration is None else start + duration


@dataclasses.dataclass(frozen=True)
class MachineSlowdown:
    """CPU contention: work on ``machine`` takes ``factor`` times longer.

    Models a non-dedicated workstation picking up interactive load —
    compute, pack, and unpack charges all stretch inside the window.
    """

    machine: str
    factor: float
    start: float = 0.0
    duration: float | None = None

    kind: t.ClassVar[str] = "machine_slowdown"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.factor <= 0:
            raise FaultPlanError(f"slowdown factor must be > 0, got {self.factor!r}")

    @property
    def end(self) -> float:
        """Window end (``inf`` for a permanent slowdown)."""
        return _end(self.start, self.duration)


@dataclasses.dataclass(frozen=True)
class MachinePause:
    """A crash-restart window: ``machine`` makes no progress at all.

    CPU and NIC work freezes for the duration; in-flight messages to
    the machine wait at its NIC.  The window must end — a machine that
    never restarts would deadlock its communication partners.
    """

    machine: str
    start: float
    duration: float

    kind: t.ClassVar[str] = "machine_pause"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, finite=True)

    @property
    def end(self) -> float:
        """Restart time."""
        return self.start + self.duration


@dataclasses.dataclass(frozen=True)
class LinkDegradation:
    """Congestion on one network: less bandwidth, more latency.

    Transfers crossing ``network`` inside the window take
    ``gap_factor`` times longer and every message pays
    ``extra_latency`` additional one-way seconds.
    """

    network: str
    gap_factor: float = 1.0
    extra_latency: float = 0.0
    start: float = 0.0
    duration: float | None = None

    kind: t.ClassVar[str] = "link_degradation"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.gap_factor < 1.0:
            raise FaultPlanError(
                f"gap_factor must be >= 1, got {self.gap_factor!r}"
            )
        if self.extra_latency < 0:
            raise FaultPlanError(
                f"extra_latency must be >= 0, got {self.extra_latency!r}"
            )

    @property
    def end(self) -> float:
        """Window end (``inf`` for permanent congestion)."""
        return _end(self.start, self.duration)


@dataclasses.dataclass(frozen=True)
class MessageFaults:
    """Stochastic per-message faults on a network (or everywhere).

    Each message crossing ``network`` (``None`` matches every network)
    inside the window is independently dropped with ``drop_prob`` or
    delayed with ``delay_prob`` by an exponential extra delay of mean
    ``delay_mean`` seconds.  Coins come from a named RNG stream of the
    injector seed, so runs are reproducible.
    """

    network: str | None = None
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_mean: float = 0.0
    start: float = 0.0
    duration: float | None = None

    kind: t.ClassVar[str] = "message_faults"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_prob("drop_prob", self.drop_prob)
        _check_prob("delay_prob", self.delay_prob)
        if self.delay_mean < 0:
            raise FaultPlanError(f"delay_mean must be >= 0, got {self.delay_mean!r}")
        if self.delay_prob > 0 and self.delay_mean <= 0:
            raise FaultPlanError("delay_prob > 0 requires delay_mean > 0")

    @property
    def end(self) -> float:
        """Window end (``inf`` when the faults persist)."""
        return _end(self.start, self.duration)


@dataclasses.dataclass(frozen=True)
class BackgroundLoad:
    """Stochastic CPU hog on ``machine``: bursts of stolen CPU time.

    An on/off process competes for the machine's CPU through the normal
    FIFO resource: busy bursts of mean ``burst_mean * intensity``
    seconds alternate with idle gaps of mean
    ``burst_mean * (1 - intensity)`` seconds, so ``intensity`` is the
    long-run fraction of CPU stolen.  Must end so runs terminate.
    """

    machine: str
    intensity: float
    start: float
    duration: float
    burst_mean: float = 0.01

    kind: t.ClassVar[str] = "background_load"

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, finite=True)
        if not 0.0 < self.intensity < 1.0:
            raise FaultPlanError(
                f"intensity must be in (0, 1), got {self.intensity!r}"
            )
        if self.burst_mean <= 0:
            raise FaultPlanError(f"burst_mean must be > 0, got {self.burst_mean!r}")

    @property
    def end(self) -> float:
        """Time the background load stops."""
        return self.start + self.duration


#: Every concrete fault specification type.
FaultSpec = t.Union[
    MachineSlowdown, MachinePause, LinkDegradation, MessageFaults, BackgroundLoad
]

_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (MachineSlowdown, MachinePause, LinkDegradation, MessageFaults, BackgroundLoad)
}


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specifications.

    Build programmatically (``FaultPlan([MachineSlowdown(...), ...])``),
    from the preset builders (:func:`straggler_plan`,
    :func:`congestion_plan`, :func:`flaky_network_plan`), or from JSON
    (:meth:`from_json` / :meth:`from_file`).
    """

    faults: tuple[FaultSpec, ...] = ()

    def __init__(self, faults: "FaultSpec | t.Iterable[FaultSpec]" = ()) -> None:
        if type(faults) in _KINDS.values():  # a bare spec: wrap it
            faults = (faults,)
        faults = tuple(faults)
        for fault in faults:
            if type(fault) not in _KINDS.values():
                raise FaultPlanError(f"not a fault specification: {fault!r}")
        object.__setattr__(self, "faults", faults)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-op plan: runs with it are bit-identical to fault-free runs."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> t.Iterator[FaultSpec]:
        return iter(self.faults)

    def extended(self, *faults: FaultSpec) -> "FaultPlan":
        """A new plan with ``faults`` appended."""
        return FaultPlan(self.faults + tuple(faults))

    # -- validation -----------------------------------------------------------
    def validate(self, topology: "ClusterTopology") -> None:
        """Check every named machine/network exists in ``topology``."""
        machine_names = {m.name for m in topology.machines}
        network_names = {c.network.name for c in topology.clusters}
        for fault in self.faults:
            machine = getattr(fault, "machine", None)
            if machine is not None and machine not in machine_names:
                raise FaultPlanError(
                    f"{fault.kind} names unknown machine {machine!r}; "
                    f"known: {', '.join(sorted(machine_names))}"
                )
            network = getattr(fault, "network", None)
            if network is not None and network not in network_names:
                raise FaultPlanError(
                    f"{fault.kind} names unknown network {network!r}; "
                    f"known: {', '.join(sorted(network_names))}"
                )

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        out = []
        for fault in self.faults:
            record: dict[str, t.Any] = {"kind": fault.kind}
            record.update(dataclasses.asdict(fault))
            out.append(record)
        return {"faults": out}

    @classmethod
    def from_dict(cls, data: t.Mapping) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(data, t.Mapping) or "faults" not in data:
            raise FaultPlanError('fault plan must be an object with a "faults" list')
        faults = []
        for record in data["faults"]:
            record = dict(record)
            kind = record.pop("kind", None)
            if kind not in _KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; known: {', '.join(sorted(_KINDS))}"
                )
            try:
                faults.append(_KINDS[kind](**record))
            except TypeError as error:
                raise FaultPlanError(f"bad {kind} specification: {error}") from None
        return cls(faults)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (``repro run --faults plan.json``)."""
        try:
            with open(path, encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {error}") from None

    def __repr__(self) -> str:
        kinds = ", ".join(f.kind for f in self.faults) or "empty"
        return f"FaultPlan({kinds})"


# -- preset builders -----------------------------------------------------------
def straggler_plan(
    machine: str,
    *,
    factor: float = 4.0,
    start: float = 0.0,
    duration: float | None = None,
) -> FaultPlan:
    """One machine runs ``factor`` times slower — the classic straggler."""
    return FaultPlan([
        MachineSlowdown(machine=machine, factor=factor, start=start, duration=duration)
    ])


def congestion_plan(
    network: str,
    *,
    gap_factor: float = 3.0,
    extra_latency: float = 2e-3,
    start: float = 0.0,
    duration: float | None = None,
) -> FaultPlan:
    """One network loses bandwidth and gains latency — rush-hour Ethernet."""
    return FaultPlan([
        LinkDegradation(
            network=network,
            gap_factor=gap_factor,
            extra_latency=extra_latency,
            start=start,
            duration=duration,
        )
    ])


def flaky_network_plan(
    network: str | None = None,
    *,
    drop_prob: float = 0.02,
    delay_prob: float = 0.05,
    delay_mean: float = 5e-3,
    start: float = 0.0,
    duration: float | None = None,
) -> FaultPlan:
    """Messages randomly dropped/delayed — lossy, jittery links.

    Pair with ``DeliveryPolicy.retry(...)`` unless losing messages is
    the point of the experiment.
    """
    return FaultPlan([
        MessageFaults(
            network=network,
            drop_prob=drop_prob,
            delay_prob=delay_prob,
            delay_mean=delay_mean,
            start=start,
            duration=duration,
        )
    ])
