"""Piecewise-constant slowdown timelines.

A :class:`Timeline` answers "how long does ``nominal`` seconds of work
take when it starts at time ``t``?" for a machine or link whose
effective speed varies over scheduled fault windows.  Factors from
overlapping windows multiply; a factor of ``math.inf`` models a full
pause (no progress until the window ends).

The empty timeline is the identity — :meth:`Timeline.stretch` returns
``nominal`` unchanged, bit-for-bit, which is what makes an empty
:class:`~repro.faults.FaultPlan` reproduce fault-free runs exactly.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.errors import FaultPlanError

__all__ = ["Window", "Timeline"]


@dataclasses.dataclass(frozen=True)
class Window:
    """One slowdown interval: work inside it takes ``factor`` times longer.

    ``end`` may be ``math.inf`` for a permanent degradation, but only
    with a finite factor — a permanent pause could never finish.
    """

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultPlanError(f"window start must be >= 0, got {self.start!r}")
        if self.end <= self.start:
            raise FaultPlanError(
                f"window end must be > start, got [{self.start!r}, {self.end!r})"
            )
        if self.factor <= 0:
            raise FaultPlanError(f"window factor must be > 0, got {self.factor!r}")
        if math.isinf(self.factor) and math.isinf(self.end):
            raise FaultPlanError("a pause window (factor=inf) must end")

    def active_at(self, time: float) -> bool:
        """True when ``time`` falls inside the half-open window."""
        return self.start <= time < self.end


class Timeline:
    """A multiplicative slowdown profile built from fault windows."""

    def __init__(self, windows: t.Iterable[Window] = ()) -> None:
        self.windows = tuple(sorted(windows, key=lambda w: (w.start, w.end)))
        self._bounds = sorted(
            {w.start for w in self.windows}
            | {w.end for w in self.windows if not math.isinf(w.end)}
        )

    def __bool__(self) -> bool:
        return bool(self.windows)

    def factor_at(self, time: float) -> float:
        """Combined slowdown factor at ``time`` (1.0 outside all windows)."""
        factor = 1.0
        for window in self.windows:
            if window.active_at(time):
                factor *= window.factor
        return factor

    def stretch(self, start: float, nominal: float) -> float:
        """Actual duration of ``nominal`` seconds of work starting at ``start``.

        Work proceeds at rate ``1/factor(t)``; the stretch integrates
        that rate across window boundaries.  With no windows (or zero
        work) the nominal duration is returned unchanged.
        """
        if not self.windows or nominal <= 0:
            return nominal
        time = start
        remaining = nominal
        for bound in self._bounds:
            if bound <= time:
                continue
            factor = self.factor_at(time)
            if math.isinf(factor):
                time = bound  # paused: the clock advances, the work does not
                continue
            segment = bound - time
            if remaining * factor <= segment:
                return (time + remaining * factor) - start
            remaining -= segment / factor
            time = bound
        factor = self.factor_at(time)
        if math.isinf(factor):  # pragma: no cover - Window forbids endless pauses
            raise FaultPlanError("work started inside an endless pause")
        return (time + remaining * factor) - start

    def __repr__(self) -> str:
        return f"Timeline({len(self.windows)} windows)"
