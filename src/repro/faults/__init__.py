"""Deterministic fault injection and background load for the simulator.

The paper's testbed is a *non-dedicated* cluster of ten workstations:
machine speeds and link behaviour fluctuate under other users' load.
This package injects that reality into the otherwise quiet simulated
machine, reproducibly:

* :class:`FaultPlan` — a declarative, JSON-serialisable schedule of
  machine slowdowns/pauses, link degradations, stochastic message
  drops/delays, and stochastic background CPU load;
* :class:`Injector` — compiles a plan against one
  :class:`~repro.pvm.VirtualMachine`, drawing every coin from named
  :class:`~repro.util.rng.RngStream`\\ s so a (plan, seed) pair always
  produces the same simulation, and an *empty* plan is bit-identical
  to a fault-free run;
* :class:`~repro.pvm.DeliveryPolicy` (re-exported) — the runtime
  robustness semantics that survive the faults: per-send timeouts with
  bounded exponential-backoff retries, or explicit at-most-once.

See ``docs/faults.md`` for the plan schema and the determinism and
retry guarantees, and :mod:`repro.experiments.robustness` for the
experiment that re-runs the paper's Figure 3/4 comparisons under
straggler and congestion plans.
"""

from repro.errors import FaultError, FaultPlanError, TimeoutError
from repro.faults.injector import Injector
from repro.faults.plan import (
    BackgroundLoad,
    FaultPlan,
    LinkDegradation,
    MachinePause,
    MachineSlowdown,
    MessageFaults,
    congestion_plan,
    flaky_network_plan,
    straggler_plan,
)
from repro.faults.timeline import Timeline, Window
from repro.pvm.delivery import DeliveryPolicy

__all__ = [
    "FaultPlan",
    "Injector",
    "DeliveryPolicy",
    "MachineSlowdown",
    "MachinePause",
    "LinkDegradation",
    "MessageFaults",
    "BackgroundLoad",
    "Timeline",
    "Window",
    "straggler_plan",
    "congestion_plan",
    "flaky_network_plan",
    "FaultError",
    "FaultPlanError",
    "TimeoutError",
]
