"""Macro-event superstep engine: batched fault-free HBSP execution.

Within one superstep of a fault-free HBSP collective, everything the
object-event engine simulates message by message is data-parallel:
each task's pack/inject/compute charges advance a private local clock,
receiver NIC drains fold left-to-right over a per-port timeline, and a
barrier releases at ``max(arrivals) + L``.  :class:`MacroEngine`
computes all of that arithmetically and injects exactly **one**
"superstep boundary" event per barrier cycle into the DES heap,
instead of the O(messages) events of the object path.

Bit-exactness contract
----------------------

The macro path must produce *bit-identical* results to the object
path (same final time, superstep marks, metrics, mailbox contents and
order).  Every formula below therefore mirrors the exact float
operations of :mod:`repro.pvm.task` / :mod:`repro.hbsplib.context`:

* local clocks accumulate serially (``t = t + duration``), calling
  ``spec.pack_time`` / ``spec.unpack_time`` / ``spec.compute_time``
  directly — never precomputed coefficient splits, whose different
  association would drift in the last ulp;
* a NIC drain starts at ``max(previous drain end, arrival)`` — a
  *selection*, exact in floats — and ends one addition later;
* a barrier releases at ``max(arrival times) + L``: the object path
  creates the cost timeout at the last arrival, so the release is the
  same single addition.

Engagement is gated twice: :attr:`repro.pvm.vm.VirtualMachine.
macro_capable` (no injector, no delivery policy, no structured trace,
serialized NIC) and a per-program :func:`macro_safe` opt-in asserting
the program only uses the batched surface (``ctx.send`` / ``ctx.sync``
/ ``ctx.compute`` / message taking — no ad-hoc ``task`` access).  Any
live hook falls back to the object path; see
:meth:`repro.hbsplib.runtime.HbspRuntime.run`.

Boundary staleness
------------------

A cycle's release time is computed when its last party arrives, but a
*different* cluster's segment can later insert an earlier-arriving
send into a NIC timeline this cycle's flush depends on, folding its
drain ends — and therefore the release — upward (never downward: the
fold is work-conserving FIFO).  The boundary callback re-derives the
release when it fires and re-arms itself at the later time if it
grew.

The unpack cascade
------------------

The object path's collect loop keeps taking mailbox messages while
charging unpack serially, so each unpack advances the receiver clock
— and a drain that completes *while earlier unpacks run* is delivered
in the same superstep.  The macro collect replays that loop over the
merged put-order stream (timeline entries by drain end, loopback puts
by send time).  Because the cascade horizon can exceed the release,
and a different cycle releasing inside that window can register a
send the object path would deliver in this same superstep, each
party's collect is *finalized* separately: the boundary computes the
cascade horizon and re-arms until the engine clock reaches it (sends
register at engine time ≤ their arrival, so by then every candidate
entry is on the timeline), then commits and resumes the waiter.
"""

from __future__ import annotations

import typing as t
from bisect import bisect_right

from repro.pvm.message import Message, payload_nbytes
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.hbsplib.context import HbspContext
    from repro.hbsplib.runtime import HbspRuntime
    from repro.sim.barrier import Barrier

__all__ = ["MacroEngine", "macro_safe"]


def macro_safe(program: t.Callable) -> t.Callable:
    """Mark an HBSP program as eligible for the macro-event fast path.

    Safe programs interact with the machine only through the batched
    context surface — ``ctx.send`` / ``ctx.sync`` / ``ctx.compute`` /
    ``ctx.messages`` and the pure enquiry helpers.  Programs that
    reach into ``ctx.task`` (sleep, raw recv, ad-hoc events) must stay
    on the object path and should not carry this marker.
    """
    program._macro_safe = True
    return program


class _SendEntry:
    """One in-flight remote send, shared between the sender's flush
    list and the receiver's NIC-in timeline."""

    __slots__ = (
        "arrival", "inject_end", "drain", "drain_end", "reg",
        "src_tid", "dst_tid", "tag", "payload", "size", "sent_at",
    )

    def __init__(self, arrival: float, inject_end: float, drain: float,
                 reg: int, src_tid: int, dst_tid: int, tag: int,
                 payload: t.Any, size: int, sent_at: float) -> None:
        self.arrival = arrival
        self.inject_end = inject_end
        self.drain = drain
        self.drain_end = 0.0  # set by _NicTimeline.insert
        self.reg = reg
        self.src_tid = src_tid
        self.dst_tid = dst_tid
        self.tag = tag
        self.payload = payload
        self.size = size
        self.sent_at = sent_at


class _NicTimeline:
    """Drain schedule of one receiver NIC-in port.

    Unconsumed entries, sorted by ``(arrival, inject_end, reg)`` — the
    FIFO grant order of the serialized port.  ``inject_end`` breaks
    arrival ties: the object path spawns each delivery process the
    moment the sender's inject completes, so when two arrivals round
    to the *same* double after ``+ latency`` the event heap's FIFO
    sequence still grants the port in inject-completion order, which
    the arrival floats alone no longer encode.  Equal inject ends fall
    back to registration order.  Drain ends fold left to right:
    ``end = max(prev_end, arrival) + drain``, the exact float chain of
    ``Resource.occupy`` under contention.  ``prev_end`` carries the
    busy horizon of the already-consumed prefix across supersteps.

    Folding is lazy: :meth:`insert` only places the entry and marks
    the suffix dirty; drain ends are recomputed in one left-to-right
    pass by :meth:`refold` before anyone reads them (m inserts into a
    k-entry schedule cost O(m log k + k) instead of O(m k)).  Callers
    must :meth:`refold` before reading ``drain_end``.
    """

    __slots__ = ("entries", "keys", "prev_end", "dirty", "queued")

    def __init__(self) -> None:
        self.entries: list[_SendEntry] = []
        #: Parallel (arrival, inject_end, reg) sort keys.
        self.keys: list[tuple[float, float, int]] = []
        self.prev_end = 0.0
        #: First index whose drain_end may be stale (= len(entries)
        #: when the whole schedule is folded).
        self.dirty = 0
        #: True while sitting on the engine's dirty-timeline list.
        self.queued = False

    def insert(self, entry: _SendEntry) -> None:
        keys = self.keys
        key = (entry.arrival, entry.inject_end, entry.reg)
        index = len(keys)
        if index and key < keys[-1]:
            index = bisect_right(keys, key)
        keys.insert(index, key)
        self.entries.insert(index, entry)
        if index < self.dirty:
            self.dirty = index

    def refold(self) -> None:
        """Recompute drain ends from the first dirty index on."""
        entries = self.entries
        index = self.dirty
        if index >= len(entries):
            return
        prev = entries[index - 1].drain_end if index else self.prev_end
        for folded in entries[index:]:
            arrival = folded.arrival
            end = (prev if prev > arrival else arrival) + folded.drain
            folded.drain_end = end
            prev = end
        self.dirty = len(entries)

    def discard(self, count: int) -> None:
        """Drop the consumed prefix (``count`` > 0), carrying its busy
        horizon into ``prev_end`` for future folds."""
        entries = self.entries
        self.prev_end = entries[count - 1].drain_end
        del entries[:count]
        del self.keys[:count]
        self.dirty = len(entries)


class _PidState:
    """Macro-side per-process state: the private local clock plus the
    flush (pending sends) and loopback lists of the current superstep."""

    __slots__ = ("pid", "ctx", "task", "spec", "local_t", "pending", "loopback")

    def __init__(self, pid: int, ctx: "HbspContext") -> None:
        self.pid = pid
        self.ctx = ctx
        self.task = ctx.task
        self.spec = ctx.task.host.spec
        self.local_t = 0.0
        self.pending: list[_SendEntry] = []
        #: Self-sends: (put_time, reg, Message) — merged with drained
        #: messages by mailbox put order at collect time.
        self.loopback: list[tuple[float, int, Message]] = []


class _Cycle:
    """One barrier cycle being assembled: (state, local arrival time,
    flushed sends, waiter event) per arrived party."""

    __slots__ = ("barrier", "arrivals")

    def __init__(self, barrier: "Barrier") -> None:
        self.barrier = barrier
        self.arrivals: list[tuple[_PidState, float, list[_SendEntry], Event]] = []


class MacroEngine:
    """Batched superstep execution bound to one :class:`HbspRuntime`.

    Created by :meth:`HbspRuntime.run` when the capability check and
    the program's :func:`macro_safe` marker both hold; the context's
    ``send`` / ``compute`` / ``_barrier_round`` dispatch here instead
    of driving the PVM object path.
    """

    def __init__(self, runtime: "HbspRuntime") -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.vm = runtime.vm
        self._states = [_PidState(ctx.pid, ctx) for ctx in runtime._contexts]
        self._timelines = [_NicTimeline() for _ in self._states]
        self._tid_to_pid = {
            state.task.tid: state.pid for state in self._states
        }
        self._cycles: dict[int, _Cycle] = {}  # id(barrier) -> open cycle
        self._reg = 0
        # Routing is pure in the pid pair: the crossed network is the
        # one of the machines' lowest common ancestor cluster, so we
        # keep the per-pid root-first ancestor id chains and find the
        # LCA with an inline integer scan, caching network constants
        # per LCA.  effective_gap is pure, so the cached floats feed
        # the exact same per-send expressions bit for bit.
        topo = self.vm.topology
        self._mids = [state.task.host.machine_id for state in self._states]
        self._chains = [topo._machine_ancestors[mid] for mid in self._mids]
        self._lca_net: dict[int, tuple] = {}  # lca -> (latency, labels, network)
        self._gaps: dict[tuple[int, int], float] = {}  # (lca, pid) -> gap
        # Multiplying by a 1.0 pair multiplier is a bitwise no-op, so
        # the multiply is skipped entirely when no multipliers are set.
        self._has_pair_mult = bool(topo._pair_multipliers)
        #: Per-network sent counters, flushed to the metrics registry
        #: at superstep boundaries (sums of integer-valued floats are
        #: exact, so totals match the object path's per-send incs).
        self._net_counts: dict[tuple, list] = {}
        #: (pid, level) -> Barrier; barrier_for is a dict hit but this
        #: also skips its level normalisation/validation.
        self._barriers: dict[tuple[int, int | None], t.Any] = {}
        #: Timelines with stale drain ends (see _refold_all).
        self._dirty: list[_NicTimeline] = []
        for state in self._states:
            state.task.macro_now = 0.0

    # -- program-side operations (called from HbspContext) -------------------
    def compute(self, ctx: "HbspContext", work: float) -> None:
        """``ctx.compute``: one serial local-clock addition."""
        state = self._states[ctx.pid]
        duration = state.spec.compute_time(work)
        state.local_t = state.local_t + duration
        state.task.macro_now = state.local_t

    def send(self, ctx: "HbspContext", pid: int, payload: t.Any, tag: int,
             nbytes: int | None) -> None:
        """``ctx.send``: advance the sender clock by pack + inject and
        register the drain on the receiver's NIC timeline."""
        state = self._states[ctx.pid]
        task = state.task
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if size < 0:
            from repro.errors import PvmError

            raise PvmError(f"nbytes must be >= 0, got {size}")
        sent_at = state.local_t
        task.sent_messages += 1
        task.sent_bytes += size
        self._reg += 1
        reg = self._reg

        if pid == ctx.pid:
            # Loopback: no wire, zero charged bytes, immediate mailbox
            # put (available after the next sync, like every send).
            message = Message(task.tid, task.tid, tag, payload, 0, sent_at, sent_at)
            state.loopback.append((sent_at, reg, message))
            return

        target = self._states[pid]
        ca = self._chains[ctx.pid]
        cb = self._chains[pid]
        i = 1
        lim = min(len(ca), len(cb))
        while i < lim and ca[i] == cb[i]:
            i += 1
        lca = ca[i - 1]
        net = self._lca_net.get(lca)
        if net is None:
            network = self.vm.topology.clusters[lca].network
            net = (network.latency, (("network", network.name),), network)
            self._lca_net[lca] = net
        latency, net_labels, network = net
        send_gap = self._gaps.get((lca, ctx.pid))
        if send_gap is None:
            send_gap = network.effective_gap(state.spec.nic_gap)
            self._gaps[(lca, ctx.pid)] = send_gap
        drain_gap = self._gaps.get((lca, pid))
        if drain_gap is None:
            drain_gap = network.effective_gap(target.spec.nic_gap)
            self._gaps[(lca, pid)] = drain_gap
        counts = self._net_counts.get(net_labels)
        if counts is None:
            self._net_counts[net_labels] = [1, size]
        else:
            counts[0] += 1
            counts[1] += size

        # pack on the sender CPU, inject through the sender NIC —
        # uncontended (one task per host), so both are serial adds.
        t_local = sent_at + state.spec.pack_time(size)
        if self._has_pair_mult:
            multiplier = self.vm.topology.pair_multiplier(
                self._mids[ctx.pid], self._mids[pid]
            )
            t_local = t_local + size * send_gap * multiplier
            drain = size * drain_gap * multiplier
        else:
            t_local = t_local + size * send_gap
            drain = size * drain_gap
        state.local_t = t_local
        task.macro_now = t_local

        # wire latency, then the contended receiver drain (folded on
        # the timeline; drain_end is filled in by insert()).
        entry = _SendEntry(
            t_local + latency,
            t_local,
            drain,
            reg, task.tid, target.task.tid, tag, payload, size, sent_at,
        )
        timeline = self._timelines[pid]
        timeline.insert(entry)
        if not timeline.queued:
            timeline.queued = True
            self._dirty.append(timeline)
        state.pending.append(entry)

    def barrier_round(
        self, ctx: "HbspContext", level: int | None
    ) -> t.Generator[Event, t.Any, None]:
        """``HbspContext._barrier_round`` macro branch: register the
        arrival and suspend on the cycle's waiter event; all flush /
        release / collect bookkeeping happens in the boundary event."""
        barrier = self._barriers.get((ctx.pid, level))
        if barrier is None:
            barrier = self.runtime.barrier_for(ctx.pid, level)
            self._barriers[(ctx.pid, level)] = barrier
        state = self._states[ctx.pid]
        pending, state.pending = state.pending, []
        waiter = Event(self.engine, f"{barrier.name}.wait")
        cycle = self._cycles.get(id(barrier))
        if cycle is None:
            cycle = _Cycle(barrier)
            self._cycles[id(barrier)] = cycle
        cycle.arrivals.append((state, state.local_t, pending, waiter))
        if len(cycle.arrivals) == barrier.parties:
            # Parties block until release, so at most one open cycle
            # exists per barrier; the closure owns it from here.
            del self._cycles[id(barrier)]
            release = self._release_of(cycle)
            self.engine.call_at(release, lambda: self._boundary(cycle, release))
        yield waiter

    def finish(self, ctx: "HbspContext") -> t.Generator[Event, t.Any, None]:
        """Post-program clock stretch: the object engine keeps running
        until trailing local work and unflushed background drains are
        processed, so the macro path must advance the shared clock to
        the same final instant before the process finishes."""
        self._flush_metrics()
        state = self._states[ctx.pid]
        engine = self.engine
        while True:
            self._refold_all()
            target = state.local_t
            for entry in state.pending:
                if entry.drain_end > target:
                    target = entry.drain_end
            if target <= engine.now:
                return
            gate = Event(engine, f"pid{state.pid}.finish")
            engine.call_at(target, gate.succeed)
            # Re-check after the wait: a concurrent insert may have
            # folded an unflushed drain end later still.
            yield gate

    # -- boundary machinery ---------------------------------------------------
    def _flush_metrics(self) -> None:
        """Push the accumulated per-network sent counters into the
        metrics registry (first-send label order, integer-exact)."""
        net_counts = self._net_counts
        if not net_counts:
            return
        metrics = self.vm.metrics
        for labels, (msgs, nbytes) in net_counts.items():
            metrics.inc("repro_messages_sent_total", float(msgs), labels)
            metrics.inc("repro_bytes_sent_total", float(nbytes), labels)
        net_counts.clear()

    def _refold_all(self) -> None:
        """Bring every dirty NIC timeline's drain ends up to date
        (pending entries live on *other* pids' receive timelines, so
        reads of drain_end must be preceded by a global refold)."""
        dirty = self._dirty
        if not dirty:
            return
        for timeline in dirty:
            timeline.refold()
            timeline.queued = False
        dirty.clear()

    def _release_of(self, cycle: _Cycle) -> float:
        """Current release time: max over parties of their flush-resume
        (own clock vs own pending drain ends), plus the barrier cost —
        the exact float the object path's cost timeout lands on."""
        self._refold_all()
        last = 0.0
        for _state, local_t, pending, _waiter in cycle.arrivals:
            resume = local_t
            for entry in pending:
                if entry.drain_end > resume:
                    resume = entry.drain_end
            if resume > last:
                last = resume
        cost = cycle.barrier.cost
        return last + cost if cost else last

    def _boundary(self, cycle: _Cycle, scheduled: float) -> None:
        release = self._release_of(cycle)
        if release != scheduled:
            # An insert folded a flush drain later; re-arm (releases
            # only ever grow — see the module docstring).
            self.engine.call_at(release, lambda: self._boundary(cycle, release))
            return
        self._flush_metrics()
        barrier = cycle.barrier
        index = barrier.macro_cycle()
        arrivals = cycle.arrivals
        resumes = []
        for _state, local_t, pending, _waiter in arrivals:
            resume = local_t
            for entry in pending:
                if entry.drain_end > resume:
                    resume = entry.drain_end
            resumes.append(resume)
        # Waiters resume in arrival order (ties: registration order),
        # exactly like Barrier.release over its FIFO waiting list.
        for i in sorted(range(len(arrivals)), key=resumes.__getitem__):
            state, _local_t, _pending, waiter = arrivals[i]
            state.ctx._wait += release - resumes[i]
            self._finalize(state, release, waiter, index)

    def _walk_collect(self, state: _PidState, release: float) -> tuple[int, int, float]:
        """Replay the object path's collect loop arithmetically.

        ``HbspContext._collect`` keeps taking mailbox messages in put
        order while charging unpack serially — and because each unpack
        advances the receiver clock, a drain that completes *while
        earlier unpacks run* is delivered in the same superstep (the
        unpack cascade).  Returns ``(timeline prefix taken, loopback
        taken, final receiver clock)`` without committing anything.
        Drained entries keep the timeline's grant order and precede
        loopback puts with equal put times, like the object mailbox.
        """
        entries = self._timelines[state.pid].entries
        loopback = state.loopback
        unpack_time = state.spec.unpack_time
        local_t = release
        taken = 0
        li = 0
        n_entries = len(entries)
        n_loop = len(loopback)
        while True:
            entry = entries[taken] if taken < n_entries else None
            if entry is not None and entry.drain_end > local_t:
                entry = None  # still draining: blocks all later entries
            put = loopback[li] if li < n_loop else None
            if entry is not None and (put is None or entry.drain_end <= put[0]):
                taken += 1
                size = entry.size
            elif put is not None:
                # Loopback puts happen mid-superstep, so their put
                # times are <= the release and never block.
                li += 1
                size = put[2].nbytes
            else:
                break
            unpack = unpack_time(size)
            if unpack > 0:
                local_t = local_t + unpack
        return taken, li, local_t

    def _finalize(self, state: _PidState, release: float, waiter: Event,
                  index: int) -> None:
        """Commit one party's collect once its cascade is complete.

        The cascade horizon (the receiver clock after all unpacks) can
        exceed the release, and a *different* cycle releasing inside
        that window can register a send that the object path would
        drain and deliver in this same superstep.  Sends register at
        engine time <= their arrival, so waiting until the engine
        clock reaches the horizon guarantees every candidate entry is
        on the timeline; the walk is monotone in the entry set, so
        re-arming until the horizon stops growing is a fixpoint.
        """
        self._refold_all()
        taken, li, local_t = self._walk_collect(state, release)
        engine = self.engine
        if local_t > engine.now:
            engine.call_at(
                local_t, lambda: self._finalize(state, release, waiter, index)
            )
            return
        self._collect(state, release, taken, li, local_t)
        waiter.succeed(index)

    def _collect(self, state: _PidState, release: float, taken: int, li: int,
                 local_t: float) -> None:
        """BSP delivery at the release: move the walked timeline prefix
        + loopback puts into the context in mailbox put order
        (``HbspContext._collect`` without the object plumbing)."""
        timeline = self._timelines[state.pid]
        entries = timeline.entries
        loopback = state.loopback
        task = state.task
        available = state.ctx._available
        ei = 0
        pi = 0
        while ei < taken or pi < li:
            entry = entries[ei] if ei < taken else None
            put = loopback[pi] if pi < li else None
            if entry is not None and (put is None or entry.drain_end <= put[0]):
                ei += 1
                message = Message(entry.src_tid, entry.dst_tid, entry.tag,
                                  entry.payload, entry.size, entry.sent_at,
                                  entry.drain_end)
            else:
                pi += 1
                message = put[2]
            task.received_messages += 1
            task.received_bytes += message.nbytes
            available.append(message)
        if taken:
            timeline.discard(taken)
        if li:
            del loopback[:li]
        state.local_t = local_t
        task.macro_now = local_t
