"""The event loop and virtual clock of the DES engine."""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Event, Timeout

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Engine"]

#: Cached Process class (imported lazily once; process.py imports this
#: module at load time, so a top-level import would be circular).
_process_cls = None


class _Shim:
    """A minimal queue entry that just runs a function when processed.

    :meth:`Engine.call_soon` uses it instead of a full :class:`Event`;
    the engine only ever calls ``_process()`` on queue entries, so this
    skips the callback-list, value and name plumbing entirely.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: t.Callable[[], None]) -> None:
        self.fn = fn

    def _process(self) -> None:
        self.fn()


class Engine:
    """A deterministic discrete-event simulation engine.

    The engine owns a priority queue of triggered events keyed by
    ``(time, sequence)``.  The sequence number makes simultaneous events
    process in trigger order, which keeps every simulation in this
    library fully deterministic.

    Typical use::

        eng = Engine()
        eng.process(my_generator_function(eng))
        eng.run()
        print(eng.now)
    """

    def __init__(self) -> None:
        #: Current virtual time (seconds).
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Live (started, unfinished) processes, for deadlock reporting.
        self._live_processes: set["Process"] = set()
        self._events_processed = 0
        #: Optional observability hook (a repro.obs Tracer), set per run
        #: by the runtime when span tracing is active; each run()/
        #: run_until() call then records one "engine" span with its
        #: event-batch size.
        self.obs_tracer: t.Any | None = None
        self.obs_group = ""

    # -- event plumbing -----------------------------------------------------
    def _enqueue_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event to be processed ``delay`` from now."""
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
            at = self.now + delay
        else:
            at = self.now
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event))

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` bound to this engine."""
        return Event(self, name)

    def timeout(self, delay: float, value: t.Any = None, name: str = "") -> Event:
        """Create an event that succeeds ``delay`` units from now."""
        return Timeout(self, delay, value=value, name=name)

    def call_soon(self, func: t.Callable[[], None]) -> None:
        """Run ``func()`` at the current time, after already-queued events."""
        self._seq += 1
        heapq.heappush(self._queue, (self.now, self._seq, _Shim(func)))

    def process(self, generator: t.Generator, name: str = "") -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        global _process_cls
        if _process_cls is None:
            from repro.sim.process import Process

            _process_cls = Process
        return _process_cls(self, generator, name=name)

    # -- running ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _seq, event = heapq.heappop(self._queue)
        if time < self.now:  # pragma: no cover - guarded by _enqueue_event
            raise SimulationError("event queue went backwards in time")
        self.now = time
        self._events_processed += 1
        event._process()

    def run(self, until: float | None = None, *, check_deadlock: bool = True) -> float:
        """Run until the queue drains (or until time ``until``).

        Returns the final virtual time.  If the queue drains while
        processes are still blocked, raises :class:`DeadlockError`
        (unless ``check_deadlock=False``).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} is in the past (now={self.now!r})")
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        batch_start = self.now
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    self.now = until
                    return self.now
                time, _seq, event = pop(queue)
                self.now = time
                processed += 1
                event._process()
        finally:
            self._events_processed += processed
            self._record_batch(batch_start, processed)
        if until is not None:
            self.now = until
        if check_deadlock and self._live_processes:
            blocked = tuple(sorted(repr(p) for p in self._live_processes))
            raise DeadlockError(
                f"simulation deadlocked: {len(blocked)} process(es) still blocked",
                blocked=blocked,
            )
        return self.now

    def run_until(
        self,
        events: t.Sequence[Event],
        *,
        until: float | None = None,
        check_deadlock: bool = True,
    ) -> float:
        """Run until every event in ``events`` has triggered.

        Unlike :meth:`run`, the queue is allowed to hold untriggered
        work when this returns — the fault-injection layer uses it to
        stop the clock at program completion instead of waiting out
        background-load processes and retry timers.  If the queue
        drains first with the targets untriggered, the usual deadlock
        check applies.
        """
        targets = tuple(events)
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} is in the past (now={self.now!r})")
        # Count completions via callbacks so the loop stays O(1) per
        # step; the counter alone decides completion (every counted
        # target gets exactly one _one_done callback, which only fires
        # after the event triggered), so no per-step re-scan of the
        # target list is needed.
        pending = sum(1 for event in targets if not event.triggered)

        def _one_done(_event: Event) -> None:
            nonlocal pending
            pending -= 1

        for event in targets:
            if not event.triggered:
                event.add_callback(_one_done)
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        batch_start = self.now
        try:
            while queue:
                if pending == 0:
                    return self.now
                if until is not None and queue[0][0] > until:
                    self.now = until
                    return self.now
                time, _seq, event = pop(queue)
                self.now = time
                processed += 1
                event._process()
        finally:
            self._events_processed += processed
            self._record_batch(batch_start, processed)
        if pending == 0:
            return self.now
        if check_deadlock and self._live_processes:
            blocked = tuple(sorted(repr(p) for p in self._live_processes))
            raise DeadlockError(
                f"simulation deadlocked: {len(blocked)} process(es) still blocked",
                blocked=blocked,
            )
        return self.now

    def _record_batch(self, start: float, processed: int) -> None:
        """Emit one "engine" span per run call when observation is on."""
        tracer = self.obs_tracer
        if tracer is not None and processed:
            tracer.add(
                "engine", "event batch", group=self.obs_group, actor="engine",
                start=start, end=self.now, events=processed,
            )

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (a progress metric)."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now:.6g}, queued={len(self._queue)}, "
            f"live_processes={len(self._live_processes)})"
        )
