"""The event loop and virtual clock of the DES engine.

Queue layout — slotted struct-of-arrays event store
---------------------------------------------------

The engine used to heap ``(time, seq, Event)`` 3-tuples and wrap every
:meth:`Engine.call_soon` function in a shim object.  It now keeps a
preallocated **event store**: a float64 ``array`` of fire times, an
int32 ``array`` of entry kinds, and a plain list of payload objects,
all indexed by *slot* and recycled through a free list.  The heap holds
only ``(time, key)`` 2-tuples where ``key`` packs everything the
tie-break needs::

    key = (lane << 62) | (seq << 24) | slot

``lane``
    0 for entries whose fire time equals ``now`` at enqueue (event
    triggers, ``call_soon``, zero-delay timeouts), 1 for entries
    scheduled into the future.  At an equal fire time, work that was
    *ready immediately* therefore always processes before a timeout
    that merely *lands* on that instant — regardless of creation
    order.  This fixes the old shim ordering edge where a ``call_soon``
    at the current timestamp could lose a heap tie to a ``Timeout``
    created earlier.
``seq``
    monotonically increasing enqueue counter (38 bits), keeping
    same-time same-lane entries FIFO and the whole simulation
    deterministic.
``kind``
    0 — the payload is an :class:`Event` (the engine calls
    ``_process()``); 1 — a bare callable (the engine calls it
    directly, which is what lets ``call_soon`` skip allocating any
    wrapper object).
"""

from __future__ import annotations

import typing as t
from array import array
from heapq import heappop, heappush

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import _LANE_FUTURE, _SLOT_BITS, _SLOT_MASK, Event, Timeout

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Engine"]

#: Cached Process class (imported lazily once; process.py imports this
#: module at load time, so a top-level import would be circular).
_process_cls = None

#: Initial store capacity (slots); grows by doubling.
_INITIAL_SLOTS = 1024


class Engine:
    """A deterministic discrete-event simulation engine.

    The engine owns a priority queue of triggered events keyed by
    ``(time, lane, sequence)``; see the module docstring for the
    packed-key layout.  The sequence number makes simultaneous
    same-lane events process in trigger order, which keeps every
    simulation in this library fully deterministic.

    Typical use::

        eng = Engine()
        eng.process(my_generator_function(eng))
        eng.run()
        print(eng.now)
    """

    def __init__(self) -> None:
        #: Current virtual time (seconds).
        self.now: float = 0.0
        # The slotted event store (see module docstring): parallel
        # arrays indexed by slot, plus the free list of recyclable
        # slots and the heap of (time, packed_key) pairs.
        self._times = array("d", bytes(8 * _INITIAL_SLOTS))
        self._kinds = array("i", bytes(4 * _INITIAL_SLOTS))
        self._objs: list[t.Any] = [None] * _INITIAL_SLOTS
        self._free: list[int] = list(range(_INITIAL_SLOTS - 1, -1, -1))
        self._heap: list[tuple[float, int]] = []
        self._seq = 0
        #: Live (started, unfinished) processes, for deadlock reporting.
        self._live_processes: set["Process"] = set()
        self._events_processed = 0
        #: Optional observability hook (a repro.obs Tracer), set per run
        #: by the runtime when span tracing is active; each run()/
        #: run_until() call then records one "engine" span with its
        #: event-batch size.
        self.obs_tracer: t.Any | None = None
        self.obs_group = ""

    # -- event plumbing -----------------------------------------------------
    def _grow(self) -> int:
        """Double the store and return a fresh slot (free list is empty)."""
        old = len(self._objs)
        if old << 1 > _SLOT_MASK + 1:
            raise SimulationError(
                f"event store overflow: more than {_SLOT_MASK + 1} simultaneous entries"
            )
        self._times.extend(array("d", bytes(8 * old)))
        self._kinds.extend(array("i", bytes(4 * old)))
        self._objs.extend([None] * old)
        # Hand out the last new slot; queue the rest for recycling.
        self._free.extend(range(2 * old - 2, old - 1, -1))
        return 2 * old - 1

    def _push(self, at: float, lane: int, kind: int, obj: t.Any) -> None:
        """Stash ``obj`` in the store and heap its packed key."""
        free = self._free
        slot = free.pop() if free else self._grow()
        self._times[slot] = at
        self._kinds[slot] = kind
        self._objs[slot] = obj
        self._seq += 1
        key = (self._seq << _SLOT_BITS) | slot
        if lane:
            key |= _LANE_FUTURE
        heappush(self._heap, (at, key))

    def _enqueue_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event to be processed ``delay`` from now."""
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
            self._push(self.now + delay, 1, 0, event)
        else:
            self._push(self.now, 0, 0, event)

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` bound to this engine."""
        return Event(self, name)

    def timeout(self, delay: float, value: t.Any = None, name: str = "") -> Event:
        """Create an event that succeeds ``delay`` units from now."""
        return Timeout(self, delay, value=value, name=name)

    def call_soon(self, func: t.Callable[[], None]) -> None:
        """Run ``func()`` at the current time, after already-queued events.

        Entries created *at* the current timestamp (this, event
        triggers, zero-delay timeouts) always run before previously
        scheduled timeouts that fire at the same instant; among
        themselves they stay FIFO.
        """
        self._push(self.now, 0, 1, func)

    def call_at(self, at: float, func: t.Callable[[], None]) -> None:
        """Run ``func()`` at absolute virtual time ``at``.

        Unlike ``timeout(at - now)``, the fire time is stored exactly —
        ``now + (at - now)`` need not equal ``at`` in floating point,
        and the macro-event path (:mod:`repro.sim.macro`) depends on
        boundary events landing on exact precomputed times.
        """
        if at < self.now:
            raise SimulationError(f"cannot schedule into the past (at={at!r}, now={self.now!r})")
        self._push(at, 1 if at > self.now else 0, 1, func)

    def process(self, generator: t.Generator, name: str = "") -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        global _process_cls
        if _process_cls is None:
            from repro.sim.process import Process

            _process_cls = Process
        return _process_cls(self, generator, name=name)

    # -- running ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        time, key = heappop(self._heap)
        if time < self.now:  # pragma: no cover - guarded by the enqueue paths
            raise SimulationError("event queue went backwards in time")
        slot = key & _SLOT_MASK
        obj = self._objs[slot]
        self._objs[slot] = None
        self._free.append(slot)
        self.now = time
        self._events_processed += 1
        if self._kinds[slot]:
            obj()
        else:
            obj._process()

    def run(self, until: float | None = None, *, check_deadlock: bool = True) -> float:
        """Run until the queue drains (or until time ``until``).

        Returns the final virtual time.  If the queue drains while
        processes are still blocked, raises :class:`DeadlockError`
        (unless ``check_deadlock=False``).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} is in the past (now={self.now!r})")
        heap = self._heap
        kinds = self._kinds
        objs = self._objs
        free_slot = self._free.append
        pop = heappop
        processed = 0
        batch_start = self.now
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return self.now
                time, key = pop(heap)
                slot = key & _SLOT_MASK
                obj = objs[slot]
                objs[slot] = None
                free_slot(slot)
                self.now = time
                processed += 1
                if kinds[slot]:
                    obj()
                else:
                    obj._process()
        finally:
            self._events_processed += processed
            self._record_batch(batch_start, processed)
        if until is not None:
            self.now = until
        if check_deadlock and self._live_processes:
            blocked = tuple(sorted(repr(p) for p in self._live_processes))
            raise DeadlockError(
                f"simulation deadlocked: {len(blocked)} process(es) still blocked",
                blocked=blocked,
            )
        return self.now

    def run_until(
        self,
        events: t.Sequence[Event],
        *,
        until: float | None = None,
        check_deadlock: bool = True,
    ) -> float:
        """Run until every event in ``events`` has triggered.

        Unlike :meth:`run`, the queue is allowed to hold untriggered
        work when this returns — the fault-injection layer uses it to
        stop the clock at program completion instead of waiting out
        background-load processes and retry timers.  If the queue
        drains first with the targets untriggered, the usual deadlock
        check applies.
        """
        targets = tuple(events)
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} is in the past (now={self.now!r})")
        # Count completions via callbacks so the loop stays O(1) per
        # step; the counter alone decides completion (every counted
        # target gets exactly one _one_done callback, which only fires
        # after the event triggered), so no per-step re-scan of the
        # target list is needed.
        pending = sum(1 for event in targets if not event.triggered)

        def _one_done(_event: Event) -> None:
            nonlocal pending
            pending -= 1

        for event in targets:
            if not event.triggered:
                event.add_callback(_one_done)
        heap = self._heap
        kinds = self._kinds
        objs = self._objs
        free_slot = self._free.append
        pop = heappop
        processed = 0
        batch_start = self.now
        try:
            while heap:
                if pending == 0:
                    return self.now
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return self.now
                time, key = pop(heap)
                slot = key & _SLOT_MASK
                obj = objs[slot]
                objs[slot] = None
                free_slot(slot)
                self.now = time
                processed += 1
                if kinds[slot]:
                    obj()
                else:
                    obj._process()
        finally:
            self._events_processed += processed
            self._record_batch(batch_start, processed)
        if pending == 0:
            return self.now
        if check_deadlock and self._live_processes:
            blocked = tuple(sorted(repr(p) for p in self._live_processes))
            raise DeadlockError(
                f"simulation deadlocked: {len(blocked)} process(es) still blocked",
                blocked=blocked,
            )
        return self.now

    def _record_batch(self, start: float, processed: int) -> None:
        """Emit one "engine" span per run call when observation is on."""
        tracer = self.obs_tracer
        if tracer is not None and processed:
            tracer.add(
                "engine", "event batch", group=self.obs_group, actor="engine",
                start=start, end=self.now, events=processed,
            )

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (a progress metric)."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now:.6g}, queued={len(self._heap)}, "
            f"live_processes={len(self._live_processes)})"
        )
