"""Structured tracing for simulations.

The experiment harness uses traces to break simulated runs into the
paper's cost components (compute, pack, inject, drain, sync) and to
verify claims such as "the root's NIC drain serializes at large p".

Tracing is off by default; when disabled every call is a cheap no-op.
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import defaultdict

__all__ = ["TraceRecord", "Trace"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced interval or point event.

    Attributes
    ----------
    time:
        Virtual time at which the record was emitted (interval end).
    category:
        One of the library's categories: ``"compute"``, ``"pack"``,
        ``"unpack"``, ``"inject"``, ``"transfer"``, ``"drain"``,
        ``"sync"``, ``"superstep"``, or a caller-defined string.
    actor:
        The acting entity (machine name, task id, barrier name...).
    duration:
        Interval length (0.0 for point events).
    detail:
        Free-form metadata (message sizes, peers, superstep index...).
    """

    time: float
    category: str
    actor: str
    duration: float = 0.0
    detail: t.Mapping[str, t.Any] = dataclasses.field(default_factory=dict)


class Trace:
    """An append-only trace with simple aggregation queries.

    Hot paths should guard argument evaluation on :attr:`enabled`
    (``if trace.enabled: trace.emit(...)``) so a disabled trace costs a
    single attribute read per candidate record — :meth:`emit` still
    no-ops defensively either way.
    """

    __slots__ = ("enabled", "records")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(
        self,
        time: float,
        category: str,
        actor: str,
        duration: float = 0.0,
        **detail: t.Any,
    ) -> None:
        """Record an event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(time, category, actor, duration, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> t.Iterator[TraceRecord]:
        return iter(self.records)

    # -- queries -------------------------------------------------------------
    def filter(
        self,
        category: str | None = None,
        actor: str | None = None,
    ) -> list[TraceRecord]:
        """Records matching the given category and/or actor."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (actor is None or r.actor == actor)
        ]

    def total_duration(self, category: str, actor: str | None = None) -> float:
        """Sum of durations for a category (optionally one actor)."""
        return sum(r.duration for r in self.filter(category, actor))

    def by_actor(self, category: str) -> dict[str, float]:
        """Total duration per actor for one category."""
        out: dict[str, float] = defaultdict(float)
        for record in self.filter(category):
            out[record.actor] += record.duration
        return dict(out)

    def categories(self) -> dict[str, float]:
        """Total duration per category."""
        out: dict[str, float] = defaultdict(float)
        for record in self.records:
            out[record.category] += record.duration
        return dict(out)

    def gantt(
        self,
        *,
        width: int = 72,
        categories: t.Sequence[str] = ("compute", "pack", "inject", "drain", "unpack"),
        actors: t.Sequence[str] | None = None,
    ) -> str:
        """Render an ASCII Gantt chart of traced intervals per actor.

        Each actor gets one row of ``width`` character cells spanning
        [0, makespan]; a cell shows the first letter of the category
        that occupied most of its time slice (``.`` for idle).  Useful
        for eyeballing where a collective's time goes — e.g. the root's
        solid run of ``d``/``u`` cells during a gather.
        """
        intervals = [r for r in self.records if r.duration > 0 and r.category in categories]
        if not intervals:
            return "(no traced intervals)"
        horizon = max(r.time for r in intervals)
        if horizon <= 0:
            return "(no traced intervals)"
        if actors is None:
            actors = sorted({r.actor for r in intervals})
        rows = [f"gantt [0 .. {horizon:.6g}s], cell = {horizon / width:.3g}s"]
        for actor in actors:
            cells = [dict() for _ in range(width)]  # type: list[dict[str, float]]
            for record in intervals:
                if record.actor != actor:
                    continue
                start = record.time - record.duration
                lo = int(start / horizon * width)
                hi = int(record.time / horizon * width)
                for cell in range(max(0, lo), min(width, hi + 1)):
                    cell_lo = cell * horizon / width
                    cell_hi = (cell + 1) * horizon / width
                    overlap = min(record.time, cell_hi) - max(start, cell_lo)
                    if overlap > 0:
                        cells[cell][record.category] = (
                            cells[cell].get(record.category, 0.0) + overlap
                        )
            line = "".join(
                max(cell, key=cell.get)[0] if cell else "." for cell in cells
            )
            rows.append(f"{actor:>24s} |{line}|")
        rows.append(
            "legend: " + ", ".join(f"{c[0]}={c}" for c in categories) + ", .=idle"
        )
        return "\n".join(rows)

    def __repr__(self) -> str:
        return f"Trace({len(self.records)} records, enabled={self.enabled})"
