"""Contended resources and mailboxes for the DES engine.

:class:`Resource` models capacity-limited, FIFO-granted exclusive use —
we use it for CPU cores and for NIC in/out ports (the per-endpoint
serialization that produces the paper's root-drain bottleneck).

:class:`Store` models an unbounded mailbox with optional filtered
receive — the PVM layer builds typed/tagged message matching on it.
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO resource with integral capacity.

    Usage from a process::

        yield resource.request()
        try:
            yield engine.timeout(duration)
        finally:
            resource.release()

    or, equivalently, ``yield from resource.occupy(duration)``.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity!r}")
        self.engine = engine
        self.capacity = int(capacity)
        self.name = name or "resource"
        self._request_name = self.name + ".request"
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: Cumulative busy time integral (for utilisation statistics).
        self._busy_time = 0.0
        self._last_change = 0.0
        #: Optional hold-time transform ``(start, nominal) -> actual``
        #: applied by :meth:`occupy` at grant time.  The fault-injection
        #: layer installs piecewise slowdown timelines here so that CPU
        #: and NIC charges become time-varying; ``None`` (the default)
        #: keeps holds at their nominal duration.
        self.time_scale: t.Callable[[float, float], float] | None = None

    # -- accounting ----------------------------------------------------------
    def _note_change(self) -> None:
        now = self.engine.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Average fraction of capacity in use since the start of time."""
        self._note_change()
        if self.engine.now == 0:
            return 0.0
        return self._busy_time / (self.engine.now * self.capacity)

    # -- acquisition ----------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a unit is granted."""
        event = Event(self.engine, self._request_name)
        if self._in_use < self.capacity and not self._waiters:
            self._note_change()
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held unit, granting the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit straight to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._note_change()
            self._in_use -= 1

    def occupy(self, duration: float) -> t.Generator[Event, t.Any, None]:
        """Generator helper: hold one unit for ``duration`` virtual time.

        With a :attr:`time_scale` installed the hold is stretched by the
        transform, evaluated at the moment the unit is granted.
        """
        yield self.request()
        try:
            if self.time_scale is not None:
                duration = self.time_scale(self.engine.now, duration)
            yield self.engine.timeout(duration)
        finally:
            self.release()

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, {self._in_use}/{self.capacity} in use, "
            f"{len(self._waiters)} waiting)"
        )


class Store:
    """An unbounded FIFO store with optional filtered gets.

    ``put`` never blocks.  ``get`` returns an event that succeeds with
    the oldest item accepted by the (optional) predicate.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name or "store"
        self._get_name = self.name + ".get"
        self._items: deque[t.Any] = deque()
        self._getters: deque[tuple[Event, t.Callable[[t.Any], bool] | None]] = deque()
        self._closed = False
        #: Total number of items ever put (throughput statistic).
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, exception: BaseException) -> None:
        """Close the store; pending and future gets fail with ``exception``."""
        self._closed = True
        self._close_exception = exception
        while self._getters:
            event, _pred = self._getters.popleft()
            event.fail(exception)

    def put(self, item: t.Any) -> None:
        """Deposit ``item``, waking the oldest matching getter if any."""
        if self._closed:
            raise SimulationError(f"put() on closed store {self.name!r}")
        self.total_put += 1
        for i, (event, predicate) in enumerate(self._getters):
            if predicate is None or predicate(item):
                del self._getters[i]
                event.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: t.Callable[[t.Any], bool] | None = None) -> Event:
        """Return an event yielding the oldest item matching ``predicate``."""
        event = Event(self.engine, self._get_name)
        if self._closed:
            event.fail(self._close_exception)
            return event
        for i, item in enumerate(self._items):
            if predicate is None or predicate(item):
                del self._items[i]
                event.succeed(item)
                return event
        self._getters.append((event, predicate))
        return event

    def try_take(self, predicate: t.Callable[[t.Any], bool] | None = None) -> t.Any | None:
        """Synchronously remove and return the oldest matching item.

        Returns ``None`` when nothing matches — the non-blocking probe
        path, without the :class:`Event` round-trip of :meth:`get`.
        """
        if self._closed:
            raise SimulationError(f"try_take() on closed store {self.name!r}")
        items = self._items
        if predicate is None:
            return items.popleft() if items else None
        for i, item in enumerate(items):
            if predicate(item):
                del items[i]
                return item
        return None

    def peek_all(self) -> tuple[t.Any, ...]:
        """Snapshot of currently stored items (oldest first)."""
        return tuple(self._items)

    def __repr__(self) -> str:
        return f"Store({self.name!r}, {len(self._items)} items, {len(self._getters)} getters)"
