"""Event primitives for the DES engine.

An :class:`Event` moves through three states:

``pending``
    created, nobody has triggered it yet;
``triggered``
    :meth:`Event.succeed` or :meth:`Event.fail` was called — the event
    holds a value (or an exception) and is queued on the engine;
``processed``
    the engine has run its callbacks.

Processes (see :mod:`repro.sim.process`) wait on events by yielding
them; the engine resumes the process with the event's value once the
event is processed.
"""

from __future__ import annotations

import typing as t
from heapq import heappush

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["UNSET", "Event", "Timeout", "AllOf", "AnyOf"]

#: Packed heap-key layout shared with :class:`repro.sim.engine.Engine`
#: (defined here because the hot trigger paths below inline the push;
#: the engine imports them back).  ``key = (lane << 62) | (seq << 24)
#: | slot`` — see the engine module docstring.
_SLOT_BITS = 24
_SLOT_MASK = (1 << _SLOT_BITS) - 1
_LANE_FUTURE = 1 << 62


class _Unset:
    """Sentinel for "no value yet"; falsy and with a readable repr."""

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "<UNSET>"


#: Sentinel used for events that have not produced a value yet.
UNSET = _Unset()


class Event:
    """A one-shot occurrence in virtual time.

    Parameters
    ----------
    engine:
        The engine that will process this event's callbacks.
    name:
        Optional human-readable label (used in deadlock reports).
    """

    __slots__ = ("engine", "name", "callbacks", "_value", "_exception", "_processed")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        #: Callables invoked with this event when it is processed.
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: t.Any = UNSET
        self._exception: BaseException | None = None
        self._processed = False

    # -- state -------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not UNSET or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> t.Any:
        """The success value (raises if the event failed or is pending)."""
        if self._exception is not None:
            raise self._exception
        if self._value is UNSET:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, if any."""
        return self._exception

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: t.Any = None) -> "Event":
        """Mark the event successful and enqueue its callbacks."""
        if self._value is not UNSET or self._exception is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        # Inlined Engine._push(now, lane=0, kind=0, self) — this is the
        # hottest trigger path in the simulator (every grant, delivery
        # and process completion lands here).
        engine = self.engine
        free = engine._free
        slot = free.pop() if free else engine._grow()
        engine._times[slot] = engine.now
        engine._kinds[slot] = 0
        engine._objs[slot] = self
        engine._seq += 1
        heappush(engine._heap, (engine.now, (engine._seq << _SLOT_BITS) | slot))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes will see ``exception``."""
        if self._value is not UNSET or self._exception is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self.engine._enqueue_event(self)
        return self

    def add_callback(self, callback: t.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback is scheduled to
        run immediately (at the current virtual time).
        """
        if self.callbacks is None:
            # Already processed: schedule a zero-delay shim so ordering
            # stays deterministic relative to other queued events.
            self.engine.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks (engine internal)."""
        if self._processed:  # pragma: no cover - engine guards this
            raise SimulationError(f"event {self!r} processed twice")
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if self._exception is not None and not callbacks:
            # A failure nobody is waiting on would otherwise vanish
            # silently; surface it to the caller of Engine.run().
            raise self._exception
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.engine.now:.6g}>"


class Timeout(Event):
    """An event that succeeds after ``delay`` units of virtual time.

    The hot path of every simulation: holds, barrier costs, wire
    latencies and retry timers all come through here, so construction
    stays allocation-light — the descriptive ``timeout(...)`` label is
    only rendered on demand by :meth:`__repr__`, never eagerly.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: t.Any = None, name: str = "") -> None:
        if delay < 0:
            raise SimulationError(f"Timeout delay must be >= 0, got {delay!r}")
        # Inlined Event.__init__ + Engine._push: a Timeout is born
        # triggered, so both collapse to attribute stores and one push.
        # A positive delay lands in the "future" lane: at an equal fire
        # time, call_soon / trigger entries created *at* that time must
        # process first (see the engine module docstring).
        self.engine = engine
        self.name = name
        self.callbacks = []
        self._exception = None
        self._processed = False
        delay = float(delay)
        self.delay = delay
        self._value = value if value is not None else delay
        at = engine.now + delay
        free = engine._free
        slot = free.pop() if free else engine._grow()
        engine._times[slot] = at
        engine._kinds[slot] = 0
        engine._objs[slot] = self
        engine._seq += 1
        key = (engine._seq << _SLOT_BITS) | slot
        if at > engine.now:
            key |= _LANE_FUTURE
        heappush(engine._heap, (at, key))

    def __repr__(self) -> str:
        if not self.name:
            state = "processed" if self._processed else "triggered"
            return f"<timeout({self.delay:.6g}) {state} at t={self.engine.now:.6g}>"
        return super().__repr__()


class _Condition(Event):
    """Base class for events composed of other events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: t.Sequence[Event], name: str) -> None:
        super().__init__(engine, name)
        self.events = tuple(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(())
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded.

    The value is a tuple of the children's values in construction order.
    If any child fails, this condition fails with the same exception.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: t.Sequence[Event], name: str = "") -> None:
        super().__init__(engine, events, name or f"all_of({len(events)})")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(tuple(child.value for child in self.events))


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a ``(index, value)`` pair identifying the winner.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: t.Sequence[Event], name: str = "") -> None:
        super().__init__(engine, events, name or f"any_of({len(events)})")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self.succeed((self.events.index(event), event.value))
