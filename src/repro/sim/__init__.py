"""A small discrete-event simulation (DES) engine.

This is the bottom-most substrate of the reproduction: the PVM-like
runtime (:mod:`repro.pvm`) and the HBSP programming library
(:mod:`repro.hbsplib`) both execute on virtual time provided by this
engine.

The design follows the classic event-queue / process-interaction style
(compare SimPy): *processes* are Python generators that ``yield`` events
they want to wait on; *resources* model contended capacity (CPUs, NIC
ports); *stores* model mailboxes; *barriers* model cost-charging global
synchronisations.

Everything is deterministic: ties in the event queue are broken by a
monotonically increasing sequence number, never by object identity.
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, Timeout, AllOf, AnyOf, UNSET
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource, Store
from repro.sim.barrier import Barrier
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "UNSET",
    "Process",
    "ProcessKilled",
    "Resource",
    "Store",
    "Barrier",
    "Trace",
    "TraceRecord",
]
