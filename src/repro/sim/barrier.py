"""Cost-charging barriers.

An HBSP^k barrier over the machines of cluster ``M_{i,j}`` costs
``L_{i,j}`` (Section 3.3 of the paper).  :class:`Barrier` implements a
reusable (cyclic) barrier on the DES engine: when the last of the
``parties`` arrives, *all* waiters are released ``cost`` virtual-time
units later, charging the synchronisation overhead exactly once per
cycle, to every participant.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Barrier"]


class Barrier:
    """A reusable barrier for a fixed set of parties.

    Parameters
    ----------
    engine:
        The owning engine.
    parties:
        Number of processes that must arrive to complete a cycle.
    cost:
        Virtual time charged per cycle (the model's ``L``); all waiters
        are released ``cost`` after the last arrival.
    name:
        Label for tracing.
    """

    def __init__(self, engine: Engine, parties: int, cost: float = 0.0, name: str = "") -> None:
        if parties < 1:
            raise SimulationError(f"Barrier parties must be >= 1, got {parties!r}")
        if cost < 0:
            raise SimulationError(f"Barrier cost must be >= 0, got {cost!r}")
        self.engine = engine
        self.parties = int(parties)
        self.cost = float(cost)
        self.name = name or "barrier"
        self._waiting: list[Event] = []
        #: Number of completed cycles (superstep counter for the runtime).
        self.cycles = 0

    @property
    def arrived(self) -> int:
        """How many parties have arrived in the current cycle."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Arrive at the barrier; returns an event released at cycle end.

        The event's value is the index of the completed cycle.
        """
        event = Event(self.engine, f"{self.name}.wait")
        self._waiting.append(event)
        if len(self._waiting) > self.parties:  # pragma: no cover - logic guard
            raise SimulationError(f"barrier {self.name!r} overfull")
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            cycle = self.cycles
            self.cycles += 1

            def release() -> None:
                for waiter in waiting:
                    waiter.succeed(cycle)

            if self.cost > 0:
                timer = self.engine.timeout(self.cost, name=f"{self.name}.L")
                timer.add_callback(lambda _ev: release())
            else:
                self.engine.call_soon(release)
        return event

    def macro_cycle(self) -> int:
        """Claim the next cycle index without the per-waiter plumbing.

        The macro-event path (:mod:`repro.sim.macro`) computes arrival
        and release times arithmetically and releases its own waiter
        events; it still reuses this barrier object for ``parties`` /
        ``cost`` validation and advances the shared cycle counter here
        so mixed introspection stays consistent.
        """
        if self._waiting:  # pragma: no cover - the paths never mix mid-cycle
            raise SimulationError(
                f"barrier {self.name!r} has object-path waiters during a macro cycle"
            )
        index = self.cycles
        self.cycles += 1
        return index

    def __repr__(self) -> str:
        return (
            f"Barrier({self.name!r}, {len(self._waiting)}/{self.parties} arrived, "
            f"cost={self.cost:.6g}, cycles={self.cycles})"
        )
