"""Generator-coroutine processes for the DES engine.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding an event suspends the process until the event is
processed; the event's value is sent back into the generator::

    def producer(engine, store):
        yield engine.timeout(1.0)      # sleep 1 virtual second
        store.put("item")
        result = yield store_get_event  # wait and receive a value

A process is itself an event: it succeeds with the generator's return
value, so processes can wait for each other (fork/join).
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Thrown into a generator when its process is killed."""


class Process(Event):
    """A running generator, resumed by the events it yields.

    Parameters
    ----------
    engine:
        The owning engine.
    generator:
        A generator object (not a function) to execute.
    name:
        Label used in tracing and deadlock reports.
    """

    __slots__ = ("generator", "_waiting_on", "_started")

    def __init__(self, engine: Engine, generator: t.Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator object, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(engine, name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        self._started = False
        engine._live_processes.add(self)
        # Kick off the process at the current time via the queue so that
        # construction order determines execution order deterministically.
        engine.call_soon(self._start)

    # -- lifecycle ----------------------------------------------------------
    def _start(self) -> None:
        if self.triggered:  # killed before it ever ran
            return
        self._started = True
        self._advance(None, None)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if self.triggered:  # killed while waiting
            return
        if event.ok:
            self._advance(event.value, None)
        else:
            self._advance(None, event.exception)

    def _advance(self, value: t.Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except ProcessKilled:
            self._finish(None)
            return
        except BaseException as error:
            self.engine._live_processes.discard(self)
            if isinstance(error, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(error)
            return
        if not isinstance(target, Event):
            self.engine._live_processes.discard(self)
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes may "
                    "only yield Event objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish(self, value: t.Any) -> None:
        self.engine._live_processes.discard(self)
        self.succeed(value)

    def kill(self) -> None:
        """Terminate the process.

        If the process is currently suspended, :class:`ProcessKilled` is
        thrown into its generator so ``finally`` blocks run.
        """
        if self.triggered:
            return
        self.engine._live_processes.discard(self)
        if self._started and self._waiting_on is not None:
            waiting, self._waiting_on = self._waiting_on, None
            # Detach from the event we were waiting on.
            if waiting.callbacks is not None and self._resume in waiting.callbacks:
                waiting.callbacks.remove(self._resume)
            try:
                self.generator.throw(ProcessKilled())
            except (StopIteration, ProcessKilled):
                pass
        else:
            self.generator.close()
        self.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def __repr__(self) -> str:
        state = "done" if self.triggered else ("blocked" if self._waiting_on else "ready")
        waiting = f" waiting_on={self._waiting_on.name}" if self._waiting_on else ""
        return f"<Process {self.name} {state}{waiting}>"
