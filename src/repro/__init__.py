"""repro — a reproduction of the HBSP^k model and its collectives.

Paper: Tiffani Williams and Rebecca Parsons, *Exploiting Hierarchy in
Heterogeneous Environments*, IPPS/IPDPS 2001.

Layered architecture (bottom-up):

* :mod:`repro.sim` — discrete-event simulation engine;
* :mod:`repro.cluster` — heterogeneous k-level cluster descriptions;
* :mod:`repro.cluster.discover` — hierarchy inference from pairwise
  probe matrices + parametric 10^3-10^4-leaf topology generators;
* :mod:`repro.bytemark` — BYTEmark-style machine ranking;
* :mod:`repro.pvm` — PVM-like message-passing runtime on the simulator;
* :mod:`repro.model` — the HBSP^k machine tree, parameters, and cost model;
* :mod:`repro.hbsplib` — the BSPlib-style programming library;
* :mod:`repro.collectives` — gather, broadcast, and the extended toolkit;
* :mod:`repro.faults` — deterministic fault injection and background load;
* :mod:`repro.perf` — parallel sweep execution with deterministic merge;
* :mod:`repro.obs` — span tracing, metrics, and superstep cost accounting;
* :mod:`repro.tuning` — auto-tuned collective schedules with a
  persistent decision cache;
* :mod:`repro.serve` — an open-loop serving layer: seeded arrivals,
  admission control, batching, and proportional subtree placement;
* :mod:`repro.experiments` — the harness regenerating every figure/table.

Quickstart::

    from repro import ucf_testbed, run_gather, RootPolicy
    outcome = run_gather(ucf_testbed(8), 25600, root=RootPolicy.FASTEST)
    print(outcome.time, outcome.predicted_time)

Robustness (see ``docs/faults.md``)::

    from repro import FaultPlan, DeliveryPolicy, run_gather, ucf_testbed
    from repro.faults import straggler_plan
    outcome = run_gather(
        ucf_testbed(8), 25600,
        faults=straggler_plan("sun-ultra1", factor=4.0), fault_seed=1,
        delivery=DeliveryPolicy.retry(3, timeout=0.25),
    )
"""

from repro.errors import FaultError, TimeoutError  # noqa: A004
from repro.faults import DeliveryPolicy, FaultPlan, Injector
from repro.sim.trace import Trace, TraceRecord
from repro.cluster import (
    Cluster,
    ClusterTopology,
    DiscoveryResult,
    MachineSpec,
    NetworkSpec,
    ProbeMatrix,
    cloud_spot_mix,
    discover,
    fat_tree,
    flat_cluster,
    grid_three_level,
    multi_rack,
    multicore_nodes,
    smp_sgi_lan,
    synthesize,
    two_lans,
    ucf_testbed,
)
from repro.collectives import (
    CollectiveOutcome,
    RootPolicy,
    WorkloadPolicy,
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_gather,
    run_reduce,
    run_scan,
    run_scatter,
)
from repro.hbsplib import HbspContext, HbspResult, HbspRuntime
from repro.model import HBSPParams, HBSPTree, CostLedger, calibrate
from repro.obs import (
    MetricsRegistry,
    Observation,
    RunObs,
    Span,
    SuperstepLedger,
    Tracer,
    chrome_trace,
    current_observation,
    observe,
    prometheus_text,
)
from repro.perf import SimJob, SimResult, SweepExecutor, evaluate, sweep
from repro.serve import (
    ServiceConfig,
    ServiceReport,
    default_config,
    run_service,
)

__version__ = "1.5.0"

__all__ = [
    "Cluster",
    "ClusterTopology",
    "MachineSpec",
    "NetworkSpec",
    "flat_cluster",
    "grid_three_level",
    "smp_sgi_lan",
    "two_lans",
    "ucf_testbed",
    "ProbeMatrix",
    "DiscoveryResult",
    "discover",
    "synthesize",
    "fat_tree",
    "multi_rack",
    "cloud_spot_mix",
    "multicore_nodes",
    "CollectiveOutcome",
    "RootPolicy",
    "WorkloadPolicy",
    "run_allgather",
    "run_allreduce",
    "run_alltoall",
    "run_broadcast",
    "run_gather",
    "run_reduce",
    "run_scan",
    "run_scatter",
    "HbspContext",
    "HbspResult",
    "HbspRuntime",
    "HBSPParams",
    "HBSPTree",
    "CostLedger",
    "calibrate",
    "SimJob",
    "SimResult",
    "SweepExecutor",
    "evaluate",
    "sweep",
    "FaultPlan",
    "Injector",
    "DeliveryPolicy",
    "FaultError",
    "TimeoutError",
    "Trace",
    "TraceRecord",
    "MetricsRegistry",
    "Observation",
    "RunObs",
    "Span",
    "SuperstepLedger",
    "Tracer",
    "chrome_trace",
    "current_observation",
    "observe",
    "prometheus_text",
    "ServiceConfig",
    "ServiceReport",
    "default_config",
    "run_service",
    "__version__",
]
