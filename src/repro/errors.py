"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SimulationError",
    "DeadlockError",
    "TopologyError",
    "RoutingError",
    "PvmError",
    "TaskNotFound",
    "MailboxClosed",
    "FaultError",
    "FaultPlanError",
    "TimeoutError",
    "HbspError",
    "SuperstepError",
    "PartitionError",
    "ModelError",
    "CalibrationError",
    "DiscoveryError",
    "CollectiveError",
    "ExperimentError",
    "ServeError",
    "DynamicsError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """A user-supplied parameter failed validation.

    Also derives from :class:`ValueError` so idiomatic call sites that
    expect ``ValueError`` for bad arguments keep working.
    """


class SimulationError(ReproError):
    """The discrete-event simulation engine entered an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Raised by :meth:`repro.sim.Engine.run` when at least one live process
    is waiting on an event that can never be triggered — typically a
    receive without a matching send, or a barrier that a member never
    reached.
    """

    def __init__(self, message: str, blocked: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        #: Human-readable descriptions of the blocked processes.
        self.blocked = blocked


class TopologyError(ReproError):
    """A cluster topology is structurally invalid."""


class RoutingError(TopologyError):
    """No route exists between two machines of a topology."""


class PvmError(ReproError):
    """Base class for errors from the PVM-like runtime."""


class TaskNotFound(PvmError, KeyError):
    """A task id (tid) does not name a live task in the virtual machine."""


class MailboxClosed(PvmError):
    """A receive was attempted on a task whose mailbox has been closed."""


class FaultError(PvmError):
    """Base class for errors caused by injected faults.

    Raised by the fault-injection subsystem (:mod:`repro.faults`) and by
    the runtime robustness machinery built on top of it.
    """


class FaultPlanError(FaultError, ValueError):
    """A declarative fault plan is malformed or names unknown entities."""


class TimeoutError(FaultError):  # noqa: A001 - deliberate shadow, scoped to repro.errors
    """A send exceeded its delivery timeout after exhausting all retries.

    Carries the endpoints and the attempt count so programs can react
    (e.g. re-route around a crashed machine).
    """

    def __init__(self, message: str, *, src: int | None = None,
                 dst: int | None = None, attempts: int = 0) -> None:
        super().__init__(message)
        #: Task ids of the endpoints, when known.
        self.src = src
        self.dst = dst
        #: Number of delivery attempts made (1 + retries).
        self.attempts = attempts


class HbspError(ReproError):
    """Base class for errors from the HBSPlib programming layer."""


class SuperstepError(HbspError):
    """A program violated superstep semantics.

    Examples: sending to a pid outside the process group, calling a
    context method after the program finished, or reading messages that
    belong to a future superstep.
    """


class PartitionError(HbspError, ValueError):
    """A workload partition does not conserve the problem size."""


class ModelError(ReproError):
    """Base class for errors from the HBSP^k cost model."""


class CalibrationError(ModelError):
    """Model parameters could not be derived from a cluster topology."""


class DiscoveryError(ModelError):
    """A cluster hierarchy could not be inferred from probe data.

    Raised by :mod:`repro.cluster.discover` when a probe matrix is
    malformed (non-square, negative entries) or when inference produces
    an inconsistent partition stack.
    """


class CollectiveError(ReproError):
    """A collective operation was invoked with inconsistent arguments."""


class ExperimentError(ReproError):
    """An experiment sweep was configured inconsistently."""


class ServeError(ReproError):
    """A serving-session configuration is malformed or inconsistent.

    Raised by :mod:`repro.serve` for invalid :class:`ServiceConfig`
    documents (unknown stage ops, non-positive rates, bad policy knobs)
    and for cluster specs that cannot host the configured placement.
    """


class DynamicsError(ReproError, ValueError):
    """A dynamic-cluster plan is malformed or names unknown entities.

    Raised by :mod:`repro.dynamics` for invalid :class:`DynamicPlan`
    documents (unknown event kinds, bad windows or drift processes) and
    for plans that reference machines absent from the target topology.
    """
