"""Closed-form HBSP^k cost predictions for the Section-4 algorithms.

Two families of functions:

* ``predict_gather`` / ``predict_broadcast`` — *exact* h-relation
  evaluations of the paper's algorithms on an arbitrary HBSP^k
  parameter set (any k, any root, any workload distribution).  These
  return an itemised :class:`~repro.model.cost.CostLedger`.
* ``paper_*`` — the paper's *simplified* formulas, verbatim
  (e.g. HBSP^1 gather ``= g·n + L_{1,0}``), used by tests and by the
  Section-4 analysis benchmarks to show where the simplifications hold.

Conventions: ``n`` counts data items, ``item_bytes`` converts items to
the bytes that ``g`` (seconds/byte) is expressed against.  Volumes
follow the paper's accounting — a machine's ``h`` is the largest number
of units it *sends or receives* in the step, and a processor never
sends data to itself.
"""

from __future__ import annotations

import typing as t

from repro.bytemark.ranking import partition_items
from repro.errors import CollectiveError, ModelError
from repro.model.cost import CostLedger
from repro.model.params import HBSPParams, Key
from repro.util.units import BYTES_PER_INT

__all__ = [
    "default_counts",
    "predict_gather",
    "predict_broadcast",
    "predict_gather_plan",
    "predict_broadcast_plan",
    "paper_gather_hbsp1",
    "paper_gather_hbsp2_super2",
    "paper_broadcast_hbsp1_one_phase",
    "paper_broadcast_hbsp1_two_phase",
    "paper_broadcast_hbsp2_super2_one_phase",
    "paper_broadcast_hbsp2_super2_two_phase",
]


def default_counts(params: HBSPParams, n: int) -> list[int]:
    """Balanced workloads: ``x_{0,j} = c_{0,j}·n`` as whole items."""
    fractions = {str(j): params.c_of(0, j) for j in range(params.p)}
    part = partition_items(n, fractions)
    return [part[str(j)] for j in range(params.p)]


def _coordinator_leaf(params: HBSPParams, key: Key, root: int | None) -> int:
    """Leaf (level-0 index) acting as coordinator of subtree ``key``.

    The fastest member (smallest ``r``) coordinates, except that the
    subtree containing ``root`` is coordinated by ``root`` itself — this
    is how the experiments re-root a collective on a chosen processor.
    """
    leaves = params.leaf_indices(*key)
    if root is not None and root in leaves:
        return root
    return min(leaves, key=lambda j: (params.r_of(0, j), j))


def _check_inputs(params: HBSPParams, n: int, root: int | None) -> int:
    if n < 0:
        raise CollectiveError(f"n must be >= 0, got {n}")
    if root is None:
        root = params.fastest_index(0)
    if not 0 <= root < params.p:
        raise CollectiveError(f"root {root} out of range for p={params.p}")
    return root


def predict_gather(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Cost of the HBSP^k gather (Sections 4.2–4.3, generalised).

    Level by level, every cluster gathers onto its coordinator
    (concurrently — the super^i-step costs the *largest* cluster time),
    then coordinators forward their subtree totals upward until the
    root holds all ``n`` items.

    ``counts[j]`` is processor ``j``'s initial item count (default:
    the balanced workload ``c_{0,j}·n``).  ``root`` overrides the
    coordinator of its own chain (default: the fastest processor).
    """
    root = _check_inputs(params, n, root)
    if counts is None:
        counts = default_counts(params, n)
    if len(counts) != params.p:
        raise CollectiveError(f"counts must have p={params.p} entries")
    if sum(counts) != n:
        raise CollectiveError(f"counts sum to {sum(counts)}, expected n={n}")

    ledger = CostLedger(f"gather(k={params.k}, n={n})")
    if params.k == 0 or params.p == 1:
        return ledger  # nothing to communicate

    # Items held by the coordinator of each subtree as the gather
    # ascends: starts as each leaf's own count.
    subtree_total: dict[Key, int] = {(0, j): int(counts[j]) for j in range(params.p)}

    for level in range(1, params.k + 1):
        worst: tuple[float, float, float, str] | None = None  # (total, gh, L, label)
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            total_items = sum(subtree_total[c] for c in children)
            subtree_total[key] = total_items
            coord = _coordinator_leaf(params, key, root)
            r_coord = params.r_of(0, coord)
            # The child subtree whose coordinator *is* this cluster's
            # coordinator keeps its data local (no self-send).
            own = next(
                (c for c in children if _coordinator_leaf(params, c, root) == coord),
                None,
            )
            received = total_items - (subtree_total[own] if own is not None else 0)
            loads = [(r_coord, received * item_bytes)]
            for child in children:
                if child == own:
                    continue
                sender = _coordinator_leaf(params, child, root)
                loads.append(
                    (params.r_of(0, sender), subtree_total[child] * item_bytes)
                )
            from repro.model.cost import h_relation

            gh = params.g * h_relation(loads)
            L = params.L_of(level, j)
            total = gh + L
            if worst is None or total > worst[0]:
                worst = (total, gh, L, f"super{level}: gather into {key}")
        assert worst is not None
        ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
    return ledger


def predict_broadcast(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
    phases: str | t.Mapping[int, str] = "two",
    fractions: t.Sequence[float] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Cost of the HBSP^k one-to-all broadcast (Sections 4.4–4.5).

    Top-down: at each level the cluster coordinator distributes the
    ``n`` items to its child coordinators using a one-phase or
    two-phase scheme, then every child cluster broadcasts internally
    (concurrently; the super^i-step costs the largest cluster time).

    Parameters
    ----------
    phases:
        ``"one"``/``"two"`` for all levels, or a mapping
        ``{level: "one"|"two"}`` (e.g. the paper's HBSP^2 variants use
        either at level 2 and two-phase at level 1).
    fractions:
        Optional per-*child* first-phase shares for the two-phase
        scheme (Fig. 4(b)'s balanced first phase); equal split when
        omitted.  Interpreted per cluster over its children by
        normalised child ``c`` when given as ``"c"``.
    """
    root = _check_inputs(params, n, root)

    def phase_of(level: int) -> str:
        if isinstance(phases, str):
            mode = phases
        else:
            mode = phases.get(level, "two")
        if mode not in ("one", "two"):
            raise CollectiveError(f"phase must be 'one' or 'two', got {mode!r}")
        return mode

    ledger = CostLedger(f"broadcast(k={params.k}, n={n}, phases={phases!r})")
    if params.k == 0 or params.p == 1 or n == 0:
        return ledger

    from repro.model.cost import h_relation

    for level in range(params.k, 0, -1):
        mode = phase_of(level)
        worst: tuple[float, float, float, int, str] | None = None
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            m = len(children)
            if m <= 1:
                continue  # singleton wrapper cluster: nothing to send
            coord = _coordinator_leaf(params, key, root)
            r_coord = params.r_of(0, coord)
            child_coords = [_coordinator_leaf(params, c, root) for c in children]
            own_pos = next(
                (i for i, c in enumerate(child_coords) if c == coord), None
            )
            peers = [i for i in range(m) if i != own_pos]
            if mode == "one":
                loads = [(r_coord, n * len(peers) * item_bytes)]
                loads += [(params.r_of(0, child_coords[i]), n * item_bytes) for i in peers]
                gh = params.g * h_relation(loads)
                L = params.L_of(level, j)
                total, n_L = gh + L, 1
                label = f"super{level}: one-phase bcast in {key}"
                parts = (gh, L)
            else:
                if fractions is None:
                    shares = {i: n // m + (1 if i < n % m else 0) for i in range(m)}
                else:
                    if len(fractions) != params.p:
                        raise CollectiveError(
                            f"fractions must have p={params.p} entries"
                        )
                    weights = {
                        str(i): sum(params.c_of(0, leaf) for leaf in params.leaf_indices(*children[i]))
                        for i in range(m)
                    }
                    total_w = sum(weights.values())
                    part = partition_items(
                        n, {k_: v / total_w for k_, v in weights.items()}
                    )
                    shares = {i: part[str(i)] for i in range(m)}
                own_share = shares[own_pos] if own_pos is not None else 0
                # Phase A: coordinator scatters shares.
                loads_a = [(r_coord, (n - own_share) * item_bytes)]
                loads_a += [
                    (params.r_of(0, child_coords[i]), shares[i] * item_bytes)
                    for i in peers
                ]
                # Phase B: total exchange of shares among children.
                loads_b = [
                    (
                        params.r_of(0, child_coords[i]),
                        max(shares[i] * (m - 1), n - shares[i]) * item_bytes,
                    )
                    for i in range(m)
                ]
                gh = params.g * (h_relation(loads_a) + h_relation(loads_b))
                L = params.L_of(level, j)
                total, n_L = gh + 2 * L, 2
                label = f"super{level}: two-phase bcast in {key}"
                parts = (gh, 2 * L)
            if worst is None or total > worst[0]:
                worst = (total, parts[0], parts[1], n_L, label)
        if worst is not None:
            ledger.charge(worst[4], level=level, gh=worst[1], L=worst[2])
    return ledger


# ---------------------------------------------------------------------------
# Schedule-plan predictions (the auto-tuner's scalar reference)
# ---------------------------------------------------------------------------
#
# ``predict_gather_plan`` / ``predict_broadcast_plan`` price an explicit
# :class:`~repro.tuning.plan.SchedulePlan` — per-level flat/binomial
# algorithm choice plus message segmentation — with the same per-level
# worst-cluster accounting as the plan-less predictors above.  On the
# default plan they charge the *identical* ledger (same floats, same
# labels) as ``predict_gather`` / ``predict_broadcast``; the vectorized
# ``model.kernels`` plan evaluators are bit-identical to these scalars.
#
# Modelling conventions for the extended space:
#
# * **segmentation** (``segments = S``): every sender splits its payload
#   into ``S`` chunks (chunk ``s`` holds ``T//S + (1 if s < T%S)``
#   items) and the level runs ``S`` chunked sub-steps, each charging its
#   own ``g·h + L`` — latency multiplies, peak h-relation shrinks.
# * **binomial**: ⌈log₂C⌉ rounds over the child-coordinator positions,
#   rotated so the cluster coordinator sits at relative position 0.  In
#   round ``t`` the holder at relative ``q`` (``q mod 2^{t+1} = 2^t``)
#   sends its accumulated window ``[q, q+2^t)`` down to ``q - 2^t``
#   (gather), or position ``q < 2^t`` forwards the full payload up to
#   ``q + 2^t`` (broadcast); each round charges ``g·h + L`` with the
#   h-relation over that round's senders and receivers.  Clusters with
#   fewer rounds than the level's worst simply drop out of the later
#   rounds' worst-cluster scans.


def _binomial_rounds(fan_out: int) -> int:
    """⌈log₂ fan_out⌉ — rounds of a binomial tree over the children."""
    return max(0, fan_out - 1).bit_length()


def _chunk(total: int, segments: int, s: int) -> int:
    """Items in chunk ``s`` when ``total`` splits into ``segments``."""
    return total // segments + (1 if s < total % segments else 0)


def predict_gather_plan(
    params: HBSPParams,
    n: int,
    plan: t.Any,
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Cost of the HBSP^k gather under an explicit schedule plan.

    ``plan`` is a :class:`repro.tuning.plan.SchedulePlan` with
    ``op == "gather"`` and one :class:`~repro.tuning.plan.LevelSchedule`
    per hierarchy level.  The default plan reproduces
    :func:`predict_gather` exactly.
    """
    from repro.model.cost import h_relation

    if plan.op != "gather":
        raise CollectiveError(f"plan is for {plan.op!r}, expected 'gather'")
    root = _check_inputs(params, n, root)
    if counts is None:
        counts = default_counts(params, n)
    if len(counts) != params.p:
        raise CollectiveError(f"counts must have p={params.p} entries")
    if sum(counts) != n:
        raise CollectiveError(f"counts sum to {sum(counts)}, expected n={n}")
    if plan.k != params.k:
        raise CollectiveError(
            f"plan schedules {plan.k} levels, topology has k={params.k}"
        )

    ledger = CostLedger(f"gather(k={params.k}, n={n}, plan={plan.key})")
    if params.k == 0 or params.p == 1:
        return ledger

    subtree_total: dict[Key, int] = {(0, j): int(counts[j]) for j in range(params.p)}

    for level in range(1, params.k + 1):
        schedule = plan.level(level)
        # Per-cluster facts, shared by every sub-step of the level.
        clusters = []
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            totals = [subtree_total[c] for c in children]
            subtree_total[key] = sum(totals)
            coord = _coordinator_leaf(params, key, root)
            child_coords = [_coordinator_leaf(params, c, root) for c in children]
            own_pos = next(
                (i for i, c in enumerate(child_coords) if c == coord), None
            )
            clusters.append(
                (
                    key,
                    totals,
                    params.r_of(0, coord),
                    [params.r_of(0, c) for c in child_coords],
                    own_pos,
                    params.L_of(level, j),
                )
            )
        if schedule.algorithm == "flat":
            S = schedule.segments
            for s in range(S):
                worst: tuple[float, float, float, str] | None = None
                for key, totals, r_coord, child_r, own_pos, L in clusters:
                    chunks = [_chunk(c, S, s) for c in totals]
                    received = sum(
                        c for i, c in enumerate(chunks) if i != own_pos
                    )
                    loads = [(r_coord, received * item_bytes)]
                    loads += [
                        (child_r[i], chunks[i] * item_bytes)
                        for i in range(len(chunks))
                        if i != own_pos
                    ]
                    gh = params.g * h_relation(loads)
                    total = gh + L
                    label = (
                        f"super{level}: gather into {key}"
                        if S == 1
                        else f"super{level}.{s + 1}: gather into {key}"
                    )
                    if worst is None or total > worst[0]:
                        worst = (total, gh, L, label)
                assert worst is not None
                ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
        else:  # binomial
            rounds = [_binomial_rounds(len(c[1])) for c in clusters]
            for t_round in range(max(rounds, default=0)):
                worst = None
                half = 1 << t_round
                for (key, totals, _r_coord, child_r, own_pos, L), R in zip(
                    clusters, rounds
                ):
                    if R <= t_round:
                        continue
                    C = len(totals)
                    assert own_pos is not None
                    loads = []
                    for q in range(half, C, 2 * half):
                        held = sum(
                            totals[(own_pos + u) % C]
                            for u in range(q, min(q + half, C))
                        )
                        volume = held * item_bytes
                        loads.append((child_r[(own_pos + q) % C], volume))
                        loads.append((child_r[(own_pos + q - half) % C], volume))
                    gh = params.g * h_relation(loads)
                    total = gh + L
                    label = (
                        f"super{level}: binomial gather round {t_round + 1} "
                        f"in {key}"
                    )
                    if worst is None or total > worst[0]:
                        worst = (total, gh, L, label)
                if worst is not None:
                    ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
    return ledger


def predict_broadcast_plan(
    params: HBSPParams,
    n: int,
    plan: t.Any,
    *,
    root: int | None = None,
    fractions: t.Sequence[float] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Cost of the HBSP^k broadcast under an explicit schedule plan.

    The default plan (two-phase everywhere) reproduces
    :func:`predict_broadcast` exactly; ``fractions`` selects the
    c-weighted first-phase shares for two-phase levels, as there.
    """
    from repro.model.cost import h_relation

    if plan.op != "broadcast":
        raise CollectiveError(f"plan is for {plan.op!r}, expected 'broadcast'")
    root = _check_inputs(params, n, root)
    if plan.k != params.k:
        raise CollectiveError(
            f"plan schedules {plan.k} levels, topology has k={params.k}"
        )

    ledger = CostLedger(f"broadcast(k={params.k}, n={n}, plan={plan.key})")
    if params.k == 0 or params.p == 1 or n == 0:
        return ledger

    for level in range(params.k, 0, -1):
        schedule = plan.level(level)
        clusters = []
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            m = len(children)
            if m <= 1:
                continue  # singleton wrapper cluster: nothing to send
            coord = _coordinator_leaf(params, key, root)
            child_coords = [_coordinator_leaf(params, c, root) for c in children]
            own_pos = next(
                (i for i, c in enumerate(child_coords) if c == coord), None
            )
            clusters.append(
                (
                    key,
                    children,
                    params.r_of(0, coord),
                    [params.r_of(0, c) for c in child_coords],
                    own_pos,
                    params.L_of(level, j),
                )
            )
        if not clusters:
            continue
        if schedule.algorithm == "one":
            S = schedule.segments
            for s in range(S):
                chunk = _chunk(n, S, s)
                worst: tuple[float, float, float, str] | None = None
                for key, children, r_coord, child_r, own_pos, L in clusters:
                    m = len(children)
                    peers = [i for i in range(m) if i != own_pos]
                    loads = [(r_coord, chunk * len(peers) * item_bytes)]
                    loads += [(child_r[i], chunk * item_bytes) for i in peers]
                    gh = params.g * h_relation(loads)
                    total = gh + L
                    label = (
                        f"super{level}: one-phase bcast in {key}"
                        if S == 1
                        else f"super{level}.{s + 1}: one-phase bcast in {key}"
                    )
                    if worst is None or total > worst[0]:
                        worst = (total, gh, L, label)
                assert worst is not None
                ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
        elif schedule.algorithm == "two":
            worst = None
            for key, children, r_coord, child_r, own_pos, L in clusters:
                m = len(children)
                peers = [i for i in range(m) if i != own_pos]
                if fractions is None:
                    shares = {i: n // m + (1 if i < n % m else 0) for i in range(m)}
                else:
                    if len(fractions) != params.p:
                        raise CollectiveError(
                            f"fractions must have p={params.p} entries"
                        )
                    weights = {
                        str(i): sum(
                            params.c_of(0, leaf)
                            for leaf in params.leaf_indices(*children[i])
                        )
                        for i in range(m)
                    }
                    total_w = sum(weights.values())
                    part = partition_items(
                        n, {k_: v / total_w for k_, v in weights.items()}
                    )
                    shares = {i: part[str(i)] for i in range(m)}
                own_share = shares[own_pos] if own_pos is not None else 0
                loads_a = [(r_coord, (n - own_share) * item_bytes)]
                loads_a += [(child_r[i], shares[i] * item_bytes) for i in peers]
                loads_b = [
                    (
                        child_r[i],
                        max(shares[i] * (m - 1), n - shares[i]) * item_bytes,
                    )
                    for i in range(m)
                ]
                gh = params.g * (h_relation(loads_a) + h_relation(loads_b))
                total = gh + 2 * L
                label = f"super{level}: two-phase bcast in {key}"
                if worst is None or total > worst[0]:
                    worst = (total, gh, 2 * L, label)
            assert worst is not None
            ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
        else:  # binomial
            rounds = [_binomial_rounds(len(c[1])) for c in clusters]
            for t_round in range(max(rounds, default=0)):
                worst = None
                half = 1 << t_round
                for (key, children, _r_coord, child_r, own_pos, L), R in zip(
                    clusters, rounds
                ):
                    if R <= t_round:
                        continue
                    m = len(children)
                    assert own_pos is not None
                    volume = n * item_bytes
                    loads = []
                    for q in range(min(half, m - half)):
                        loads.append((child_r[(own_pos + q) % m], volume))
                        loads.append((child_r[(own_pos + q + half) % m], volume))
                    gh = params.g * h_relation(loads)
                    total = gh + L
                    label = (
                        f"super{level}: binomial bcast round {t_round + 1} "
                        f"in {key}"
                    )
                    if worst is None or total > worst[0]:
                        worst = (total, gh, L, label)
                if worst is not None:
                    ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
    return ledger


# ---------------------------------------------------------------------------
# The paper's simplified formulas (verbatim from Section 4)
# ---------------------------------------------------------------------------

def _nbytes(n: int, item_bytes: int) -> float:
    return float(n) * item_bytes


def paper_gather_hbsp1(params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT) -> float:
    """Section 4.2: balanced HBSP^1 gather costs ``g·n + L_{1,0}``."""
    if params.k != 1:
        raise ModelError("paper formula applies to HBSP^1 machines")
    return params.g * _nbytes(n, item_bytes) + params.L_of(1, 0)


def paper_gather_hbsp2_super2(
    params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT
) -> float:
    """Section 4.3: the balanced HBSP^2 gather super²-step is ``g·n + L_{2,0}``."""
    if params.k != 2:
        raise ModelError("paper formula applies to HBSP^2 machines")
    return params.g * _nbytes(n, item_bytes) + params.L_of(2, 0)


def paper_broadcast_hbsp1_one_phase(
    params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT
) -> float:
    """Section 4.4: one-phase HBSP^1 broadcast costs ``g·n·m + L_{1,0}``.

    (The paper prints ``m_{2,0}`` in this formula; on an HBSP^1 machine
    the sender fan-out is ``m_{1,0}``.)
    """
    if params.k != 1:
        raise ModelError("paper formula applies to HBSP^1 machines")
    return params.g * _nbytes(n, item_bytes) * params.m_of(1, 0) + params.L_of(1, 0)


def paper_broadcast_hbsp1_two_phase(
    params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT
) -> float:
    """Section 4.4: two-phase HBSP^1 broadcast costs ``g·n(1+r_{0,s}) + 2L_{1,0}``."""
    if params.k != 1:
        raise ModelError("paper formula applies to HBSP^1 machines")
    r_s = params.slowest_r(0)
    return params.g * _nbytes(n, item_bytes) * (1.0 + r_s) + 2 * params.L_of(1, 0)


def paper_broadcast_hbsp2_super2_one_phase(
    params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT
) -> float:
    """Section 4.4 HBSP^2 analysis, one-phase super²-step.

    ``g·max(r_{1,s}·n, r_{2,0}·n·m_{2,0}) + L_{2,0}``.
    """
    if params.k != 2:
        raise ModelError("paper formula applies to HBSP^2 machines")
    r_1s = params.slowest_r(1)
    r_root = params.r_of(2, 0)
    m = params.m_of(2, 0)
    nb = _nbytes(n, item_bytes)
    return params.g * max(r_1s * nb, r_root * nb * m) + params.L_of(2, 0)


def paper_broadcast_hbsp2_super2_two_phase(
    params: HBSPParams, n: int, *, item_bytes: int = BYTES_PER_INT
) -> float:
    """Section 4.4 HBSP^2 analysis, two-phase super²-steps.

    First step: ``g·max(r_{1,s}·n/m_{2,0}, r_{2,0}·n)``;
    second step: ``g·r_{1,s}·n``; plus ``2L_{2,0}``.
    """
    if params.k != 2:
        raise ModelError("paper formula applies to HBSP^2 machines")
    r_1s = params.slowest_r(1)
    r_root = params.r_of(2, 0)
    m = params.m_of(2, 0)
    nb = _nbytes(n, item_bytes)
    first = max(r_1s * nb / m, r_root * nb)
    second = r_1s * nb
    return params.g * (first + second) + 2 * params.L_of(2, 0)
