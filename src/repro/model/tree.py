"""The tree representation of an HBSP^k machine (Section 3.1).

An HBSP^k machine is a tree ``T = (V, E)`` of height ``k``.  Nodes at
level ``i`` are HBSP^i machines, labelled ``M_{i,0} .. M_{i,m_i-1}``
left to right.  A level-``i`` node with children is a *cluster* whose
children are HBSP^{i-1} machines; its *coordinator* is (by the paper's
convention) the fastest machine in its subtree, so the root coordinator
is the fastest machine of the entire system.

:class:`HBSPTree` is built from a :class:`~repro.cluster.ClusterTopology`
(normalised so every processor sits at level 0) and gives the model and
the algorithms a uniform way to talk about levels, clusters, members,
and coordinators.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import ClusterTopology
from repro.errors import ModelError

__all__ = ["HBSPNode", "HBSPTree"]


@dataclasses.dataclass
class HBSPNode:
    """One node ``M_{i,j}`` of the HBSP^k tree.

    Attributes
    ----------
    level:
        The paper's ``i``: 0 for processors, ``k`` for the root.
    index:
        The paper's ``j``: position among level-``i`` nodes, left to
        right.
    name:
        The underlying cluster or machine name.
    machine:
        For level-0 nodes, the processor's global machine id in the
        source topology; for clusters, ``None``.
    coordinator:
        Global machine id of this subtree's coordinator (its fastest
        member; for a level-0 node, the machine itself).
    children:
        Child nodes (HBSP^{i-1} machines); empty for level 0.
    members:
        Global machine ids of all level-0 processors in this subtree.
    cluster_id:
        Id of the corresponding cluster in the source topology
        (``None`` for level-0 nodes).
    """

    level: int
    index: int
    name: str
    machine: int | None
    coordinator: int
    children: list["HBSPNode"] = dataclasses.field(default_factory=list)
    members: tuple[int, ...] = ()
    cluster_id: int | None = None

    @property
    def label(self) -> str:
        """The paper's ``M_{i,j}`` label."""
        return f"M_{{{self.level},{self.index}}}"

    @property
    def fan_out(self) -> int:
        """The paper's ``m_{i,j}``: number of children."""
        return len(self.children)

    @property
    def is_processor(self) -> bool:
        """True for level-0 nodes (HBSP^0 machines)."""
        return self.level == 0

    def __repr__(self) -> str:
        return f"<{self.label} {self.name!r} coord=m{self.coordinator} fan_out={self.fan_out}>"


class HBSPTree:
    """The HBSP^k view over a cluster topology.

    Parameters
    ----------
    topology:
        Any :class:`ClusterTopology`; it is normalised internally so
        every processor sits at level 0 (machines attached higher up —
        like Figure 1's lone SGI — become chains of singleton clusters,
        matching the paper's "a machine can play different roles at
        different levels").
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.source = topology
        self.topology = topology.normalized()
        self._levels: list[list[HBSPNode]] = [[] for _ in range(self.topology.height + 1)]
        self.root = self._build(self.topology.cluster_id(self.topology.clusters[0].name))
        # Assign j indices left-to-right per level.  _build appends in
        # DFS order, which is left-to-right within each level already;
        # we still number explicitly for clarity and safety.
        for level_nodes in self._levels:
            for j, node in enumerate(level_nodes):
                node.index = j

    def _build(self, cluster_id: int) -> HBSPNode:
        topo = self.topology
        cluster = topo.clusters[cluster_id]
        level = topo.cluster_level(cluster_id)
        node = HBSPNode(
            level=level,
            index=-1,
            name=cluster.name,
            machine=None,
            coordinator=topo.coordinator(cluster_id),
            members=topo.members(cluster_id),
            cluster_id=cluster_id,
        )
        self._levels[level].append(node)
        # Children appear in the cluster's declared order: machines
        # become level-0 nodes, sub-clusters recurse.
        child_cluster_ids = iter(topo.child_clusters(cluster_id))
        for child in cluster.children:
            if isinstance(child, MachineSpec):
                mid = topo.machine_id(child.name)
                leaf = HBSPNode(
                    level=level - 1,
                    index=-1,
                    name=child.name,
                    machine=mid,
                    coordinator=mid,
                    members=(mid,),
                    cluster_id=None,
                )
                if leaf.level != 0:  # pragma: no cover - normalized() guarantees this
                    raise ModelError(
                        f"machine {child.name!r} at level {leaf.level}; "
                        "topology was not normalised"
                    )
                self._levels[0].append(leaf)
                node.children.append(leaf)
            else:
                node.children.append(self._build(next(child_cluster_ids)))
        return node

    # -- queries ---------------------------------------------------------------
    @property
    def k(self) -> int:
        """The machine-class level: height of the tree."""
        return self.topology.height

    @property
    def num_processors(self) -> int:
        """Number of level-0 processors (``m_0``)."""
        return len(self._levels[0])

    def level_nodes(self, level: int) -> tuple[HBSPNode, ...]:
        """All nodes at ``level``, ordered by ``j`` (``M_{i,0}`` first)."""
        if not 0 <= level <= self.k:
            raise ModelError(f"level must be in [0, {self.k}], got {level}")
        return tuple(self._levels[level])

    def m(self, level: int) -> int:
        """The paper's ``m_i``: number of HBSP^i machines on ``level``."""
        return len(self.level_nodes(level))

    def node(self, level: int, index: int) -> HBSPNode:
        """The node ``M_{level,index}``."""
        nodes = self.level_nodes(level)
        if not 0 <= index < len(nodes):
            raise ModelError(
                f"M_{{{level},{index}}} does not exist (m_{level} = {len(nodes)})"
            )
        return nodes[index]

    def processor_node(self, machine: int) -> HBSPNode:
        """The level-0 node for global machine id ``machine``."""
        for node in self._levels[0]:
            if node.machine == machine:
                return node
        raise ModelError(f"no processor node for machine id {machine}")

    def parent(self, node: HBSPNode) -> HBSPNode | None:
        """The parent cluster of ``node`` (``None`` for the root)."""
        for level in range(node.level + 1, self.k + 1):
            for candidate in self._levels[level]:
                if node in candidate.children:
                    return candidate
        return None

    def walk(self) -> t.Iterator[HBSPNode]:
        """All nodes, root first, in DFS order."""

        def dfs(node: HBSPNode) -> t.Iterator[HBSPNode]:
            yield node
            for child in node.children:
                yield from dfs(child)

        return dfs(self.root)

    def machine_class(self, node: HBSPNode) -> int:
        """The smallest class HBSP^i containing this node's subtree.

        A node at level ``i`` is an HBSP^i machine; the containment
        chain HBSP^0 ⊂ HBSP^1 ⊂ ... ⊂ HBSP^k of Section 3.1 means it is
        also an HBSP^j machine for every ``j >= i``.
        """
        return node.level

    def contains_class(self, outer: int, inner: int) -> bool:
        """True iff HBSP^inner ⊆ HBSP^outer (i.e. ``inner <= outer``)."""
        if outer < 0 or inner < 0:
            raise ModelError("machine classes are non-negative")
        return inner <= outer

    def describe(self) -> str:
        """Multi-line rendering with ``M_{i,j}`` labels (cf. Figure 2)."""
        lines = [f"HBSP^{self.k} machine, {self.num_processors} processors"]

        def walk(node: HBSPNode, indent: int) -> None:
            pad = "  " * indent
            coord = self.topology.machines[node.coordinator].name
            lines.append(f"{pad}{node.label} {node.name} (coordinator: {coord})")
            for child in node.children:
                walk(child, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"HBSPTree(k={self.k}, p={self.num_processors})"
