"""Fitting residuals: the superstep ledger as linear equations.

The analytic model charges a superstep at level ``l`` as

    ``d = w + g * max_j(r_j * h_j) + L_l``

and the :class:`~repro.obs.accounting.SuperstepLedger` already joins
every simulated superstep against that prediction 1:1.  This module
re-reads the join as a system of *equations in the parameters*: with
``G_j = g * r_j`` the unknowns, each step contributes

    ``G_crit * h_crit + L_l = d - w``

where ``h_j`` is the per-machine byte h-relation diffed from the run's
marks and ``crit`` is the machine the model says dominates
(``argmax_j G_j * h_j``).  :mod:`repro.calib` solves these by iterated
least squares; the ledger's exact sim/pred divergence is precisely the
residual such a fit drives down.

Two observation sources:

* ``"simulated"`` — ``d`` is the ledger's frontier advance (what the
  DES actually took).  Fitting against it yields *effective* parameters
  absorbing per-message overheads the analytic model omits; the
  residual honestly reports what remains.
* ``"predicted"`` — ``d`` is the exported analytic ``w + gh + L``.
  Fitting against it is the estimator round-trip: noise-free data must
  recover the generating parameters exactly (to solver precision).

Steps whose marks do not join 1:1 against the prediction (the
two-phase broadcast lumps two syncs per analytic step) are rejected
run-wholesale — equations from a misaligned join would be garbage.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import CalibrationError
from repro.obs.accounting import RunObs, SuperstepLedger

__all__ = ["StepEquation", "step_equations", "OBSERVATION_SOURCES"]

OBSERVATION_SOURCES = ("simulated", "predicted")


@dataclasses.dataclass(frozen=True)
class StepEquation:
    """One superstep as a linear equation in ``(G_j, L_level)``.

    ``observed - w = G_crit * h[crit] + L_level`` with ``crit`` chosen
    by the solver's current parameter estimate.
    """

    run: str
    step: int
    level: int
    w: float
    observed: float
    h: tuple[tuple[str, float], ...]  # (machine name, h bytes), every pid

    @property
    def rhs(self) -> float:
        """The equation's right-hand side, ``observed - w``."""
        return self.observed - self.w


def step_equations(
    run: RunObs, *, source: str = "simulated"
) -> tuple[StepEquation, ...]:
    """Extract the fit equations of one run (empty when unusable).

    A run contributes nothing when it carries no prediction (apps) or
    when its marks do not join 1:1 against the analytic steps (lumped
    multi-sync steps) — both would anchor equations to wrong levels.
    """
    if source not in OBSERVATION_SOURCES:
        raise CalibrationError(
            f"unknown observation source {source!r}; "
            f"known: {', '.join(OBSERVATION_SOURCES)}"
        )
    if run.predicted is None:
        return ()
    if run.supersteps != len(run.predicted):
        return ()
    ledger = SuperstepLedger(run)
    if len(ledger.rows) != len(run.predicted):
        return ()
    out: list[StepEquation] = []
    for row in ledger.rows:
        if row.predicted is None:  # pragma: no cover - lengths match above
            continue
        _, level, w, _, _ = run.predicted[row.step]
        observed = row.simulated if source == "simulated" else row.predicted
        out.append(
            StepEquation(
                run=run.name,
                step=row.step,
                level=level,
                w=w,
                observed=float(observed),
                h=tuple((m.machine, float(m.h)) for m in row.machines),
            )
        )
    return tuple(out)
