"""The HBSP^k model: machine tree, parameters, and cost algebra.

This package is the paper's primary contribution (Section 3):

* :mod:`repro.model.tree` — the tree representation ``T = (V, E)`` of an
  HBSP^k machine, with the paper's ``M_{i,j}`` indexing, levels, and
  coordinator selection;
* :mod:`repro.model.params` — the parameter set (``g``, ``r_{i,j}``,
  ``L_{i,j}``, ``c_{i,j}``, ``m_i``, ``m_{i,j}``) with validation and
  calibration from a :class:`~repro.cluster.ClusterTopology`;
* :mod:`repro.model.cost` — the cost model: heterogeneous h-relations
  and super^i-step costs ``T_i = w_i + g h + L_{i,j}``, with an
  itemised :class:`~repro.model.cost.CostLedger`;
* :mod:`repro.model.predict` — closed-form costs for every algorithm
  analysed in Section 4 (gather, one-phase and two-phase broadcast, at
  levels 1, 2, and general k);
* :mod:`repro.model.kernels` — the same predictions vectorized: whole
  grids of ``(n, root, workload, phases)`` points in one numpy pass,
  bit-identical to the scalar predictors.
"""

from repro.model.tree import HBSPNode, HBSPTree
from repro.model.params import HBSPParams, calibrate
from repro.model.cost import CostLedger, SuperstepCost, h_relation, superstep_cost
from repro.model import predict
from repro.model.kernels import (
    BroadcastKernel,
    GatherKernel,
    KernelGrid,
    balanced_counts,
    equal_counts,
)
from repro.model.planner import (
    best_broadcast_phases,
    best_root,
    hierarchy_penalty,
    rank_plans,
    score_plans,
)
from repro.model.residuals import OBSERVATION_SOURCES, StepEquation, step_equations
from repro.model.probe import (
    LinkEstimate,
    ProbeReport,
    probe_link,
    probe_matrix,
    probe_params,
    probe_sync,
)

__all__ = [
    "HBSPNode",
    "HBSPTree",
    "HBSPParams",
    "calibrate",
    "CostLedger",
    "SuperstepCost",
    "h_relation",
    "superstep_cost",
    "OBSERVATION_SOURCES",
    "StepEquation",
    "step_equations",
    "predict",
    "BroadcastKernel",
    "GatherKernel",
    "KernelGrid",
    "balanced_counts",
    "equal_counts",
    "best_broadcast_phases",
    "best_root",
    "rank_plans",
    "score_plans",
    "hierarchy_penalty",
    "LinkEstimate",
    "ProbeReport",
    "probe_link",
    "probe_matrix",
    "probe_params",
    "probe_sync",
]
