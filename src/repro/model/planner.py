"""Cost-model-driven planning of collective configurations.

Section 3.4: "The HBSP^k model provides the user with ways to
manipulate these costs" — this module turns that claim into an API.
Given calibrated parameters and a problem size, the planner enumerates
the algorithm's discrete choices (which phase scheme per level, which
root) and returns the configuration the cost model predicts to be the
cheapest.  The benchmarks validate the plans against simulation.
"""

from __future__ import annotations

import itertools
import typing as t

from repro.errors import ModelError
from repro.model.cost import CostLedger
from repro.model.params import HBSPParams
from repro.model.predict import predict_broadcast, predict_gather

__all__ = ["best_broadcast_phases", "best_root", "hierarchy_penalty"]


def best_broadcast_phases(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
) -> tuple[dict[int, str], CostLedger]:
    """The per-level one-/two-phase choice with the lowest predicted cost.

    Enumerates all ``2^k`` combinations (k is small by construction)
    and returns ``(phases, predicted_ledger)``.  The choice captures
    both Section-4.4 regimes: one-phase for tiny fan-outs or when
    ``r_{i,s} > m``, two-phase otherwise.
    """
    if params.k < 1:
        raise ModelError("broadcast planning needs k >= 1")
    best: tuple[dict[int, str], CostLedger] | None = None
    for combo in itertools.product(("one", "two"), repeat=params.k):
        phases = {level: combo[level - 1] for level in range(1, params.k + 1)}
        ledger = predict_broadcast(params, n, root=root, phases=phases)
        if best is None or ledger.total < best[1].total:
            best = (phases, ledger)
    assert best is not None
    return best


def best_root(
    params: HBSPParams,
    n: int,
    *,
    collective: str = "gather",
    counts: t.Sequence[int] | None = None,
) -> tuple[int, CostLedger]:
    """The root pid with the lowest predicted cost for a collective.

    Supports ``"gather"`` and ``"broadcast"``.  For the gather the
    model recommends the fastest processor (its drain rate dominates
    the h-relation); for the broadcast, the choice barely matters —
    which is itself the paper's finding, visible in the near-tie this
    returns.
    """
    predictors: dict[str, t.Callable[..., CostLedger]] = {
        "gather": lambda root: predict_gather(params, n, root=root, counts=counts),
        "broadcast": lambda root: predict_broadcast(params, n, root=root),
    }
    try:
        predictor = predictors[collective]
    except KeyError:
        raise ModelError(
            f"unknown collective {collective!r}; choose from {sorted(predictors)}"
        ) from None
    best: tuple[int, CostLedger] | None = None
    for root in range(params.p):
        ledger = predictor(root)
        if best is None or ledger.total < best[1].total:
            best = (root, ledger)
    assert best is not None
    return best


def hierarchy_penalty(
    params: HBSPParams,
    n: int,
    *,
    collective: str = "gather",
) -> dict[str, float]:
    """Quantify the Section-3.4 penalty of the hierarchical platform.

    Returns ``{"total": T, "penalty": P, "fraction": P/T}`` where ``P``
    is the predicted cost charged by super^i-steps with i >= 2 — the
    part a 1-level machine would not pay.
    """
    if collective == "gather":
        ledger = predict_gather(params, n)
    elif collective == "broadcast":
        ledger = predict_broadcast(params, n)
    else:
        raise ModelError(f"unknown collective {collective!r}")
    total = ledger.total
    penalty = ledger.hierarchy_penalty()
    return {
        "total": total,
        "penalty": penalty,
        "fraction": penalty / total if total > 0 else 0.0,
    }
