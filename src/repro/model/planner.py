"""Cost-model-driven planning of collective configurations.

Section 3.4: "The HBSP^k model provides the user with ways to
manipulate these costs" — this module turns that claim into an API.
Given calibrated parameters and a problem size, the planner enumerates
the algorithm's discrete choices (which phase scheme per level, which
root) and returns the configuration the cost model predicts to be the
cheapest.  The benchmarks validate the plans against simulation.

The enumeration is batched: every candidate configuration becomes one
point of a single :mod:`repro.model.kernels` evaluation (all ``2^k``
phase combinations, or all ``p`` roots, in one vectorized pass) instead
of a Python loop over scalar ``predict_*`` calls.  The kernels are
bit-identical to the scalar predictors, so the argmin — and the ledger
returned for it — are exactly what the scalar enumeration would pick.
"""

from __future__ import annotations

import itertools
import typing as t

import numpy as np

from repro.errors import ModelError
from repro.model.cost import CostLedger
from repro.model.kernels import BroadcastKernel, GatherKernel
from repro.model.params import HBSPParams
from repro.model.predict import predict_broadcast, predict_gather

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.tuning.plan import SchedulePlan

__all__ = [
    "best_broadcast_phases",
    "best_root",
    "hierarchy_penalty",
    "rank_plans",
    "score_plans",
]


def best_broadcast_phases(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
) -> tuple[dict[int, str], CostLedger]:
    """The per-level one-/two-phase choice with the lowest predicted cost.

    Enumerates all ``2^k`` combinations (k is small by construction)
    as one kernel grid and returns ``(phases, predicted_ledger)``.  The
    choice captures both Section-4.4 regimes: one-phase for tiny
    fan-outs or when ``r_{i,s} > m``, two-phase otherwise.
    """
    if params.k < 1:
        raise ModelError("broadcast planning needs k >= 1")
    specs = [
        {level: combo[level - 1] for level in range(1, params.k + 1)}
        for combo in itertools.product(("one", "two"), repeat=params.k)
    ]
    grid = BroadcastKernel(params).evaluate(
        np.full(len(specs), n, dtype=np.int64), roots=root, phases=specs
    )
    best = int(np.argmin(grid.totals))  # first minimum, like the scalar scan
    return specs[best], grid.ledger(best)


def best_root(
    params: HBSPParams,
    n: int,
    *,
    collective: str = "gather",
    counts: t.Sequence[int] | None = None,
) -> tuple[int, CostLedger]:
    """The root pid with the lowest predicted cost for a collective.

    Supports ``"gather"`` and ``"broadcast"``.  All ``p`` candidate
    roots are evaluated as one kernel grid.  For the gather the model
    recommends the fastest processor (its drain rate dominates the
    h-relation); for the broadcast, the choice barely matters — which
    is itself the paper's finding, visible in the near-tie this
    returns.
    """
    predictors = ("broadcast", "gather")
    if collective not in predictors:
        raise ModelError(
            f"unknown collective {collective!r}; choose from {sorted(predictors)}"
        )
    ns = np.full(params.p, n, dtype=np.int64)
    roots = np.arange(params.p, dtype=np.int64)
    if collective == "gather":
        counts_grid = None
        if counts is not None:
            counts_grid = np.broadcast_to(
                np.asarray(list(counts), dtype=np.int64),
                (params.p, len(counts)),
            )
        grid = GatherKernel(params).evaluate(ns, roots=roots, counts=counts_grid)
    else:
        grid = BroadcastKernel(params).evaluate(ns, roots=roots)
    best = int(np.argmin(grid.totals))
    return best, grid.ledger(best)


def score_plans(
    params: HBSPParams,
    n: int,
    plans: "t.Sequence[SchedulePlan]",
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
) -> np.ndarray:
    """Predicted cost of each plan, batched through the kernels.

    All plans must share one op; each becomes one grid point of a
    single :meth:`~repro.model.kernels.GatherKernel.evaluate_plans`
    pass, bit-identical to the scalar ``predict_*_plan`` enumeration.
    """
    if not plans:
        raise ModelError("score_plans needs at least one plan")
    ops = {plan.op for plan in plans}
    if len(ops) > 1:
        raise ModelError(f"plans mix ops {sorted(ops)!r}")
    op = plans[0].op
    ns = np.full(len(plans), n, dtype=np.int64)
    if op == "gather":
        counts_grid = None
        if counts is not None:
            counts_grid = np.broadcast_to(
                np.asarray(list(counts), dtype=np.int64),
                (len(plans), len(counts)),
            )
        grid = GatherKernel(params).evaluate_plans(
            ns, list(plans), roots=root, counts=counts_grid
        )
    else:
        grid = BroadcastKernel(params).evaluate_plans(
            ns, list(plans), roots=root
        )
    return grid.totals


def rank_plans(
    params: HBSPParams,
    n: int,
    plans: "t.Sequence[SchedulePlan]",
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
    top: int | None = None,
) -> list[tuple["SchedulePlan", float]]:
    """Plans sorted by predicted cost, cheapest first.

    Ties keep the enumeration order (stable sort), so with
    :func:`repro.tuning.space.enumerate_plans` input the default plan
    wins any exact tie.  ``top`` truncates the ranking.
    """
    totals = score_plans(params, n, plans, root=root, counts=counts)
    order = np.argsort(totals, kind="stable")
    if top is not None:
        order = order[: max(0, int(top))]
    return [(plans[int(i)], float(totals[int(i)])) for i in order]


def hierarchy_penalty(
    params: HBSPParams,
    n: int,
    *,
    collective: str = "gather",
) -> dict[str, float]:
    """Quantify the Section-3.4 penalty of the hierarchical platform.

    Returns ``{"total": T, "penalty": P, "fraction": P/T}`` where ``P``
    is the predicted cost charged by super^i-steps with i >= 2 — the
    part a 1-level machine would not pay.
    """
    if collective == "gather":
        ledger = predict_gather(params, n)
    elif collective == "broadcast":
        ledger = predict_broadcast(params, n)
    else:
        raise ModelError(f"unknown collective {collective!r}")
    total = ledger.total
    penalty = ledger.hierarchy_penalty()
    return {
        "total": total,
        "penalty": penalty,
        "fraction": penalty / total if total > 0 else 0.0,
    }
