"""The HBSP^k cost model (Section 3.4).

The execution time of super^i-step ``λ`` is::

    T_i(λ) = w_i + g·h + L_{i,j}

where ``w_i`` is the largest local computation performed by a level-i
node in the step, and the *heterogeneous h-relation* is
``h = max_j { r_{i,j} · h_{i,j} }`` with ``h_{i,j}`` the largest number
of message units sent or received by ``M_{i,j}``.  The overall cost of
a program is the sum of its super^i-step times.

:class:`CostLedger` accumulates super-step costs with labels so that
predictions stay inspectable (which step dominates, what the hierarchy
penalty is — Section 3.4's "penalty associated with using a particular
heterogeneous environment").
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.errors import ModelError
from repro.util.validation import check_non_negative

__all__ = ["h_relation", "superstep_cost", "SuperstepCost", "CostLedger"]


def h_relation(loads: t.Iterable[tuple[float, float]]) -> float:
    """Size of a heterogeneous h-relation.

    ``loads`` yields ``(r, h)`` pairs: each participating machine's
    slowness and its largest send-or-receive volume.  Returns
    ``max(r · h)`` (0.0 for no participants — an empty step).
    """
    best = 0.0
    for r, h in loads:
        if r < 1.0 - 1e-12:
            raise ModelError(f"r must be >= 1, got {r!r}")
        check_non_negative("h", h)
        best = max(best, r * h)
    return best


def superstep_cost(w: float, g: float, h: float, L: float) -> float:
    """Equation (1): ``T_i = w_i + g·h + L_{i,j}``."""
    return (
        check_non_negative("w", w)
        + check_non_negative("g", g) * check_non_negative("h", h)
        + check_non_negative("L", L)
    )


@dataclasses.dataclass(frozen=True)
class SuperstepCost:
    """One itemised super^i-step cost.

    Attributes
    ----------
    label:
        Human-readable step name (e.g. ``"super1: leaves -> coordinators"``).
    level:
        The step's ``i`` (1 for superstep of an HBSP^1 cluster...).
    w:
        Largest local computation in the step.
    gh:
        Communication term ``g·h``.
    L:
        Synchronisation overhead charged by the step.
    """

    label: str
    level: int
    w: float
    gh: float
    L: float

    @property
    def total(self) -> float:
        """``w + g·h + L``."""
        return self.w + self.gh + self.L


class CostLedger:
    """An ordered record of super-step costs for one program/algorithm."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.steps: list[SuperstepCost] = []

    def charge(
        self,
        label: str,
        *,
        level: int,
        w: float = 0.0,
        gh: float = 0.0,
        L: float = 0.0,
    ) -> SuperstepCost:
        """Append one super^level-step with the given components."""
        if level < 0:
            raise ModelError(f"level must be >= 0, got {level}")
        step = SuperstepCost(
            label,
            level,
            check_non_negative("w", w),
            check_non_negative("gh", gh),
            check_non_negative("L", L),
        )
        self.steps.append(step)
        return step

    def charge_step(
        self,
        label: str,
        *,
        level: int,
        g: float,
        loads: t.Iterable[tuple[float, float]],
        w: float = 0.0,
        L: float = 0.0,
    ) -> SuperstepCost:
        """Charge a step whose communication is a heterogeneous h-relation."""
        return self.charge(label, level=level, w=w, gh=g * h_relation(loads), L=L)

    def extend(self, other: "CostLedger", prefix: str = "") -> None:
        """Append all of ``other``'s steps (optionally label-prefixed)."""
        for step in other.steps:
            self.steps.append(
                dataclasses.replace(step, label=f"{prefix}{step.label}")
            )

    @property
    def total(self) -> float:
        """Sum of all super-step times (the overall cost, Section 3.4)."""
        return math.fsum(step.total for step in self.steps)

    def component(self, which: str) -> float:
        """Total of one component across steps: ``"w"``, ``"gh"`` or ``"L"``."""
        if which not in ("w", "gh", "L"):
            raise ModelError(f"unknown component {which!r}")
        return math.fsum(getattr(step, which) for step in self.steps)

    def hierarchy_penalty(self) -> float:
        """Overheads attributable to levels above 1 (sync + comm there).

        Section 3.4: hierarchical platforms add synchronisation and
        communication costs at each level; this reports the part of the
        total charged by super^i-steps with ``i >= 2``.
        """
        return math.fsum(step.total for step in self.steps if step.level >= 2)

    def num_supersteps(self, level: int | None = None) -> int:
        """Count of charged steps (optionally at one level)."""
        if level is None:
            return len(self.steps)
        return sum(1 for step in self.steps if step.level == level)

    def describe(self) -> str:
        """Render the ledger as a table."""
        from repro.util.tables import AsciiTable

        table = AsciiTable(
            f"cost ledger: {self.name}", ["step", "level", "w", "g*h", "L", "total"]
        )
        for step in self.steps:
            table.add_row([step.label, step.level, step.w, step.gh, step.L, step.total])
        table.add_row(["TOTAL", "", self.component("w"), self.component("gh"), self.component("L"), self.total])
        return table.render()

    def __repr__(self) -> str:
        return f"CostLedger({self.name!r}, {len(self.steps)} steps, total={self.total:.6g})"
