"""Empirical parameter probing, in the spirit of BSPlib's ``bsp_probe``.

The paper assumes parameter values "have been determined appropriately"
(Section 3.3).  :func:`repro.model.params.calibrate` derives them from
the declared specs; this module instead *measures* them by running
micro-benchmark programs on the simulated machine — the way real BSP
libraries parameterise real hardware [8]:

* ``probe_sync`` — time M empty supersteps → the cluster's ``L``;
* ``probe_link`` — ping messages of two sizes between a machine pair →
  per-byte gap (slope) and fixed per-message overhead (intercept);
* ``probe_params`` — the full sweep: ``g`` (best per-byte gap of the
  fastest machine), ``r_{0,j}`` (each machine's gap over ``g``), and
  ``L`` per cluster.

Probed values include the runtime effects the spec-based calibration
ignores (pack/unpack time in the per-byte slope), so probed ``r`` is
an *effective* slowness — the tests check it brackets the calibrated
one.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cluster.topology import ClusterTopology
from repro.model.tree import HBSPTree
from repro.util.validation import check_positive_int

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.discover.matrix import ProbeMatrix

__all__ = [
    "LinkEstimate",
    "ProbeReport",
    "probe_sync",
    "probe_link",
    "probe_params",
    "probe_matrix",
]


@dataclasses.dataclass(frozen=True)
class LinkEstimate:
    """Measured characteristics of one machine pair.

    Attributes
    ----------
    src / dst:
        Machine indices probed.
    gap:
        Seconds per byte (slope between the two probe sizes).
    overhead:
        Fixed seconds per message (intercept).
    """

    src: int
    dst: int
    gap: float
    overhead: float


@dataclasses.dataclass(frozen=True)
class ProbeReport:
    """The measured HBSP parameters of a machine.

    ``g`` and ``r`` follow the model's definitions but are *effective*
    values (they include pack/unpack and protocol overheads); ``L`` is
    keyed like :class:`~repro.model.HBSPParams.L` by ``(level, j)``.
    """

    g: float
    r: dict[int, float]
    L: dict[tuple[int, int], float]
    links: tuple[LinkEstimate, ...]


def probe_sync(
    topology: ClusterTopology,
    *,
    level: int | None = None,
    rounds: int = 8,
) -> float:
    """Measure the per-superstep synchronisation cost at ``level``.

    Runs ``rounds`` empty supersteps and returns the mean time per
    superstep — an estimate of the (deepest) ``L`` charged at that
    level plus scheduling overhead.
    """
    rounds = check_positive_int("rounds", rounds)
    from repro.hbsplib.runtime import HbspRuntime

    def program(ctx):
        for _ in range(rounds):
            yield from ctx.sync(level)

    runtime = HbspRuntime(topology)
    result = runtime.run(program)
    return result.time / rounds


def probe_link(
    topology: ClusterTopology,
    src: int,
    dst: int,
    *,
    small: int = 1024,
    large: int = 65536,
    pings: int = 4,
) -> LinkEstimate:
    """Measure per-byte gap and per-message overhead between two machines.

    Sends ``pings`` one-way messages of each size from ``src`` to
    ``dst`` (each in its own superstep, so transfers don't pipeline)
    and fits time = overhead + gap·bytes through the two means.
    """
    if src == dst:
        raise ValueError("probe_link needs two distinct machines")
    check_positive_int("pings", pings)
    if not 0 < small < large:
        raise ValueError("need 0 < small < large probe sizes")

    from repro.hbsplib.runtime import HbspRuntime

    def measure(nbytes: int) -> float:
        def program(ctx):
            for _ in range(pings):
                if ctx.pid == src:
                    yield from ctx.send(dst, b"", nbytes=nbytes)
                yield from ctx.sync()

        runtime = HbspRuntime(topology)
        sync_only = probe_sync(topology)
        result = runtime.run(program)
        per_step = result.time / pings
        return max(0.0, per_step - sync_only)

    t_small = measure(small)
    t_large = measure(large)
    gap = (t_large - t_small) / (large - small)
    overhead = t_small - gap * small
    return LinkEstimate(src=src, dst=dst, gap=max(gap, 0.0), overhead=max(overhead, 0.0))


def probe_params(
    topology: ClusterTopology,
    *,
    reference: int | None = None,
) -> ProbeReport:
    """Measure ``g``, ``r_{0,j}`` and per-cluster ``L`` empirically.

    Each machine's effective gap is measured by sending *to* the
    reference machine (default: the fastest), so the shared receive
    path cancels in the ratios; ``g`` is the smallest measured gap and
    ``r_j = gap_j / g``.  ``L`` is probed per *level* via level-scoped
    empty supersteps (clusters sync concurrently, so the measurement is
    the slowest cluster's cost — every node at the level reports it).
    """
    tree = HBSPTree(topology)
    topo = tree.topology
    if reference is None:
        reference = topo.fastest()

    links: list[LinkEstimate] = []
    gaps: dict[int, float] = {}
    for machine in range(topo.num_machines):
        if machine == reference:
            continue
        estimate = probe_link(topo, machine, reference)
        links.append(estimate)
        gaps[machine] = estimate.gap
    # The reference's own send gap: probe against the second machine.
    other = next(m for m in range(topo.num_machines) if m != reference)
    ref_estimate = probe_link(topo, reference, other)
    links.append(ref_estimate)
    gaps[reference] = ref_estimate.gap

    g = min(gaps.values())
    r = {machine: gap / g for machine, gap in gaps.items()}

    L: dict[tuple[int, int], float] = {}
    for node in tree.walk():
        if node.level >= 1:
            L[(node.level, node.index)] = probe_sync(topo, level=node.level)

    return ProbeReport(g=g, r=r, L=L, links=tuple(links))


def probe_matrix(
    topology: ClusterTopology,
    *,
    small: int = 1024,
    large: int = 65536,
    sync_rounds: int = 8,
) -> "ProbeMatrix":
    """Measure the dense all-pairs (latency, gap) matrices in ONE run.

    The input to hierarchy discovery
    (:func:`repro.cluster.discover.discover`) is a
    :class:`~repro.cluster.discover.ProbeMatrix`; measuring it with
    :func:`probe_link` would cost ``p * (p - 1)`` separate simulated
    runs (each paying simulator start-up and its own sync baseline).
    This helper runs a single program instead: ``sync_rounds`` empty
    supersteps establish the barrier baseline, then every ordered pair
    sends one ``small`` and one ``large`` message in its own superstep,
    each followed by an empty *spacer* superstep (delivery of a message
    can complete after its sender reached the barrier, spilling cost
    into the following superstep — the spacer absorbs it so pairs don't
    contaminate each other).  Per-superstep times come off the
    simulated clock (``ctx.time`` at each barrier), and the same
    two-size fit as :func:`probe_link` turns them into per-byte gap
    (slope) and per-message latency (intercept).  On the deterministic
    simulator one ping per size measures exactly what ``pings = 4``
    would.

    ``speeds`` carries each machine's declared ``cpu_rate`` (the
    stand-in for a BYTEmark campaign, which the simulator already
    ranks machines by).
    """
    check_positive_int("sync_rounds", sync_rounds)
    if not 0 < small < large:
        raise ValueError("need 0 < small < large probe sizes")

    import numpy as np

    from repro.cluster.discover.matrix import ProbeMatrix
    from repro.hbsplib.runtime import HbspRuntime

    p = topology.num_machines
    speeds = tuple(m.cpu_rate for m in topology.machines)
    names = tuple(m.name for m in topology.machines)
    if p == 1:
        zero = np.zeros((1, 1))
        return ProbeMatrix(names=names, latency=zero, gap=zero.copy(), speeds=speeds)

    pairs = [(i, j) for i in range(p) for j in range(p) if i != j]
    sizes = (small, large)
    marks: list[float] = []

    def program(ctx):
        for _ in range(sync_rounds):
            yield from ctx.sync()
            if ctx.pid == 0:
                marks.append(ctx.time)
        for src, dst in pairs:
            for nbytes in sizes:
                if ctx.pid == src:
                    yield from ctx.send(dst, b"", nbytes=nbytes)
                yield from ctx.sync()
                if ctx.pid == 0:
                    marks.append(ctx.time)
                yield from ctx.sync()  # spacer: absorbs delivery spillover
                if ctx.pid == 0:
                    marks.append(ctx.time)

    HbspRuntime(topology).run(program)

    durations = np.diff(np.concatenate(([0.0], np.asarray(marks))))
    baseline = float(durations[:sync_rounds].mean())
    step = durations[sync_rounds:]
    latency = np.zeros((p, p))
    gap = np.zeros((p, p))
    for index, (src, dst) in enumerate(pairs):
        # Each measurement spans its superstep plus the spacer.
        t_small = max(0.0, step[4 * index] + step[4 * index + 1] - 2 * baseline)
        t_large = max(0.0, step[4 * index + 2] + step[4 * index + 3] - 2 * baseline)
        slope = max((t_large - t_small) / (large - small), 0.0)
        gap[src, dst] = slope
        latency[src, dst] = max(t_small - slope * small, 0.0)
    return ProbeMatrix(names=names, latency=latency, gap=gap, speeds=speeds)
