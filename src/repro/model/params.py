"""HBSP^k model parameters (Section 3.3, Table 1).

An HBSP^k computer is characterised by:

``m_i``
    number of HBSP^i machines on level ``i``;
``m_{i,j}``
    number of children of ``M_{i,j}``;
``g``
    bandwidth indicator: the speed with which the *fastest* machine can
    inject packets into the network (seconds per byte here);
``r_{i,j}``
    slowness of ``M_{i,j}``'s injection relative to the fastest machine
    (the fastest machine has ``r = 1``; ``r = t`` communicates ``t``
    times slower);
``L_{i,j}``
    overhead of a barrier synchronisation over the machines in the
    ``j``-th cluster of level ``i``;
``c_{i,j}``
    fraction of the problem size that ``M_{i,j}`` receives (the
    load-balancing feature; proportional to machine abilities).

The model "says nothing about how the parameter values should be
calculated ... it assumes that such costs have been determined
appropriately" — :func:`calibrate` is our determination: it derives the
parameters from a :class:`~repro.cluster.ClusterTopology` and
(optionally) BYTEmark scores, mirroring how the paper parameterised its
testbed.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.bytemark.ranking import fractions_from_scores
from repro.bytemark.suite import true_scores
from repro.cluster.topology import ClusterTopology
from repro.errors import CalibrationError, ValidationError
from repro.model.tree import HBSPNode, HBSPTree
from repro.util.validation import check_positive

__all__ = ["HBSPParams", "calibrate"]

Key = tuple[int, int]  # (level i, index j)


@dataclasses.dataclass(frozen=True)
class HBSPParams:
    """A complete, validated HBSP^k parameter set.

    Keys are ``(i, j)`` pairs addressing ``M_{i,j}``.  ``r`` and ``c``
    are defined for every node; ``L`` is defined for every cluster node
    (level >= 1).  ``fan_out[(i, j)]`` is ``m_{i,j}``.
    """

    k: int
    g: float
    m: tuple[int, ...]  # m[i] = number of HBSP^i machines on level i
    r: t.Mapping[Key, float]
    L: t.Mapping[Key, float]
    c: t.Mapping[Key, float]
    fan_out: t.Mapping[Key, int]

    def __post_init__(self) -> None:
        check_positive("g", self.g)
        if self.k < 0:
            raise ValidationError(f"k must be >= 0, got {self.k}")
        if len(self.m) != self.k + 1:
            raise ValidationError(
                f"m must have k+1 = {self.k + 1} entries, got {len(self.m)}"
            )
        for level, count in enumerate(self.m):
            if count < 1:
                raise ValidationError(f"m_{level} must be >= 1, got {count}")
            for j in range(count):
                if (level, j) not in self.r:
                    raise ValidationError(f"missing r for M_{{{level},{j}}}")
        for key, value in self.r.items():
            if value < 1.0 - 1e-12:
                raise ValidationError(
                    f"r{key} = {value!r} < 1; r is relative to the fastest "
                    "machine, which is normalised to 1"
                )
        if min(self.r[(0, j)] for j in range(self.m[0])) > 1.0 + 1e-9:
            raise ValidationError("the fastest processor must have r = 1")
        for key, value in self.L.items():
            if value < 0:
                raise ValidationError(f"L{key} must be >= 0, got {value!r}")
        # c on level 0 must be a partition of the problem.
        total_c0 = math.fsum(self.c.get((0, j), 0.0) for j in range(self.m[0]))
        if abs(total_c0 - 1.0) > 1e-9:
            raise ValidationError(f"level-0 fractions c must sum to 1, got {total_c0!r}")

    # -- convenience accessors -----------------------------------------------------
    def r_of(self, level: int, index: int) -> float:
        """``r_{level,index}``."""
        return self.r[(level, index)]

    def L_of(self, level: int, index: int) -> float:
        """``L_{level,index}`` (clusters only)."""
        return self.L[(level, index)]

    def c_of(self, level: int, index: int) -> float:
        """``c_{level,index}``."""
        return self.c[(level, index)]

    def m_of(self, level: int, index: int) -> int:
        """``m_{level,index}``: fan-out of node ``M_{level,index}``."""
        return self.fan_out[(level, index)]

    @property
    def p(self) -> int:
        """Number of processors (``m_0``)."""
        return self.m[0]

    def slowest_r(self, level: int) -> float:
        """``r_{level,s}``: the slowest node's ``r`` on ``level``."""
        return max(self.r[(level, j)] for j in range(self.m[level]))

    def fastest_index(self, level: int) -> int:
        """Index ``j`` of the fastest node on ``level`` (smallest r)."""
        return min(range(self.m[level]), key=lambda j: (self.r[(level, j)], j))

    def slowest_index(self, level: int) -> int:
        """Index ``j`` of the slowest node on ``level`` (largest r)."""
        return max(range(self.m[level]), key=lambda j: (self.r[(level, j)], -j))

    # -- structure navigation ---------------------------------------------------
    # Levels are filled left-to-right in DFS order, so the children of
    # M_{i,j} are a contiguous run of level-(i-1) nodes starting at the
    # sum of the fan-outs of M_{i,0} .. M_{i,j-1}.
    def children_of(self, level: int, index: int) -> tuple[Key, ...]:
        """Keys of the children of ``M_{level,index}`` (level-1 nodes)."""
        if level < 1:
            return ()
        offset = sum(self.fan_out[(level, j)] for j in range(index))
        return tuple(
            (level - 1, offset + j) for j in range(self.fan_out[(level, index)])
        )

    def parent_of(self, level: int, index: int) -> Key | None:
        """Key of the parent of ``M_{level,index}`` (``None`` for the root)."""
        if level >= self.k:
            return None
        for j in range(self.m[level + 1]):
            if (level, index) in self.children_of(level + 1, j):
                return (level + 1, j)
        return None  # pragma: no cover - every non-root node has a parent

    def leaf_indices(self, level: int, index: int) -> tuple[int, ...]:
        """Level-0 indices in the subtree of ``M_{level,index}``."""
        if level == 0:
            return (index,)
        out: list[int] = []
        for child in self.children_of(level, index):
            out.extend(self.leaf_indices(*child))
        return tuple(out)

    def with_equal_fractions(self) -> "HBSPParams":
        """A copy with ``c_{0,j} = 1/p`` (the unbalanced baseline)."""
        c = dict(self.c)
        for j in range(self.p):
            c[(0, j)] = 1.0 / self.p
        return dataclasses.replace(self, c=c)

    def with_fractions(self, level0_fractions: t.Sequence[float]) -> "HBSPParams":
        """A copy with the given level-0 fractions (must sum to 1)."""
        if len(level0_fractions) != self.p:
            raise ValidationError(
                f"need {self.p} fractions, got {len(level0_fractions)}"
            )
        c = dict(self.c)
        for j, fraction in enumerate(level0_fractions):
            c[(0, j)] = float(fraction)
        return dataclasses.replace(self, c=c)

    def describe(self) -> str:
        """Render the parameter set as a Table-1-style listing."""
        from repro.util.tables import AsciiTable

        table = AsciiTable(
            f"HBSP^{self.k} parameters (g = {self.g:g} s/byte)",
            ["node", "m_ij", "r_ij", "L_ij", "c_ij"],
        )
        for level in range(self.k, -1, -1):
            for j in range(self.m[level]):
                key = (level, j)
                table.add_row(
                    [
                        f"M_{{{level},{j}}}",
                        self.fan_out.get(key, 0),
                        self.r[key],
                        self.L.get(key, float("nan")),
                        self.c.get(key, float("nan")),
                    ]
                )
        return table.render()


def calibrate(
    topology: ClusterTopology,
    *,
    scores: t.Mapping[str, float] | None = None,
    tree: HBSPTree | None = None,
) -> HBSPParams:
    """Derive HBSP^k parameters from a cluster topology.

    * ``g`` is the NIC gap of the fastest-injecting machine;
    * ``r_{0,j}`` is each processor's NIC gap over ``g``; a cluster's
      ``r`` is its coordinator's ``r`` (coordinators represent their
      cluster in inter-cluster communication, Section 3.1);
    * ``L_{i,j}`` is the cluster network's barrier cost over its
      ``m_{i,j}`` children;
    * ``c_{0,j}`` comes from ``scores`` (BYTEmark indices; defaults to
      the machines' true speeds) proportionally, and a cluster's ``c``
      is the sum over its subtree.

    Pass ``scores=simulate_scores(topology, ...)`` to calibrate from
    noisy measurements as the paper did.
    """
    tree = tree if tree is not None else HBSPTree(topology)
    topo = tree.topology
    if scores is None:
        scores = true_scores(topo)
    missing = [m.name for m in topo.machines if m.name not in scores]
    if missing:
        raise CalibrationError(f"scores missing for machines: {missing}")

    g = topo.min_nic_gap()
    fractions = fractions_from_scores({m.name: scores[m.name] for m in topo.machines})

    r: dict[Key, float] = {}
    L: dict[Key, float] = {}
    c: dict[Key, float] = {}
    fan_out: dict[Key, int] = {}
    m_counts = [tree.m(level) for level in range(tree.k + 1)]

    for node in tree.walk():
        key = (node.level, node.index)
        coordinator = topo.machines[node.coordinator]
        r[key] = coordinator.nic_gap / g
        fan_out[key] = node.fan_out
        c[key] = math.fsum(fractions[topo.machines[mid].name] for mid in node.members)
        if node.level >= 1:
            cluster = topo.clusters[t.cast(int, node.cluster_id)]
            L[key] = cluster.network.sync_cost(max(1, node.fan_out))

    # Guard against pathological float drift on level 0.
    total = math.fsum(c[(0, j)] for j in range(m_counts[0]))
    if abs(total - 1.0) > 1e-9:  # pragma: no cover - fractions sum to 1 already
        raise CalibrationError(f"calibrated fractions sum to {total!r}")

    return HBSPParams(
        k=tree.k,
        g=g,
        m=tuple(m_counts),
        r=r,
        L=L,
        c=c,
        fan_out=fan_out,
    )
