"""Vectorized analytic cost kernels: whole grids in one numpy pass.

:mod:`repro.model.predict` walks the HBSP^k tree once per ``(n, root,
workload, phases)`` configuration — fine for a single prediction,
wasteful for the planner's ``2^k x roots`` enumeration and for the
experiment modules' model-side curves, which evaluate hundreds of
closely-related points.  This module *compiles* a parameter set once —
tree slices, coordinator tables, per-cluster labels — and then
evaluates an entire grid of configurations with array operations:
per-level ``r·h`` maxima, ``g·h + L`` ledger terms, and workload
subtree sums all become numpy expressions over the grid axis.

Bit-identity contract
---------------------

The kernels are not approximations.  For every grid point, the charged
``(label, level, gh, L)`` steps and the ledger total are **the same
floats** the scalar :func:`~repro.model.predict.predict_gather` /
:func:`~repro.model.predict.predict_broadcast` produce — enforced by
``tests/model/test_kernels.py`` and the hypothesis suite in
``tests/properties/test_prop_kernels.py`` with exact ``==`` on every
component.  This works because the scalar path is a fixed sequence of
IEEE-754 double operations (``r*h`` products, a running max, ``g*h``,
``+ L``) and the vectorized path performs the *same* operations
elementwise; integer workload arithmetic (subtree sums, two-phase
shares) is exact in int64.  The only knowingly scalar piece is
:func:`~repro.bytemark.ranking.partition_items` (largest-remainder
with string-keyed tie-breaks), which runs once per *unique* ``n``
rather than once per grid point.

Usage
-----

>>> kernel = GatherKernel(params)
>>> grid = kernel.evaluate(ns, roots=roots)      # one pass, G points
>>> grid.totals                                  # (G,) float64
>>> grid.ledger(3)                               # == predict_gather(...)
"""

from __future__ import annotations

import dataclasses
import functools
import math
import typing as t

import numpy as np

from repro.bytemark.ranking import partition_items
from repro.errors import CollectiveError, ModelError
from repro.model.cost import CostLedger
from repro.model.params import HBSPParams
from repro.model.predict import default_counts
from repro.util.units import BYTES_PER_INT

__all__ = [
    "GatherKernel",
    "BroadcastKernel",
    "KernelGrid",
    "PlanGrid",
    "balanced_counts",
    "equal_counts",
]

#: Phase-scheme spec accepted per point: the same shapes the scalar
#: ``predict_broadcast`` takes (``"one"``/``"two"`` or a per-level map).
PhaseSpec = t.Union[str, t.Mapping[int, str]]


# ---------------------------------------------------------------------------
# Workload grids
# ---------------------------------------------------------------------------

def balanced_counts(params: HBSPParams, ns: np.ndarray) -> np.ndarray:
    """Balanced per-point workloads: ``default_counts`` per unique n.

    Returns an ``(G, p)`` int64 matrix.  The integer partition itself is
    the scalar largest-remainder routine (bit-identity requires its
    string-keyed tie-breaks), run once per distinct problem size.
    """
    ns = np.asarray(ns, dtype=np.int64)
    unique, inverse = np.unique(ns, return_inverse=True)
    table = np.array(
        [default_counts(params, int(n)) for n in unique], dtype=np.int64
    )
    return table[inverse]


def equal_counts(params: HBSPParams, ns: np.ndarray) -> np.ndarray:
    """Equal-share workloads (``c_j = 1/p``), the BSP-habit baseline."""
    return balanced_counts(params.with_equal_fractions(), ns)


# ---------------------------------------------------------------------------
# Grid results
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _Step:
    """One charged super-step, for every grid point at once.

    ``labels[mode][cluster]`` resolves the label; gather steps carry a
    single mode, broadcast steps one per phase scheme (``code`` holds
    the per-point mode index).
    """

    level: int
    gh: np.ndarray  # (G,) selected g*h per point
    L: np.ndarray  # (G,) selected L charge per point
    choice: np.ndarray  # (G,) index into the level's cluster list
    labels: tuple[tuple[str, ...], ...]
    code: np.ndarray | None = None  # (G,) mode per point; None = mode 0

    def label(self, i: int) -> str:
        mode = 0 if self.code is None else int(self.code[i])
        return self.labels[mode][int(self.choice[i])]


class KernelGrid:
    """The evaluated grid: per-step arrays plus ledger reconstruction.

    ``totals`` reproduces :attr:`CostLedger.total` exactly (``math.fsum``
    over step totals; for <= 2 steps a single IEEE add is the correctly
    rounded sum, so it vectorizes).  ``ledger(i)`` rebuilds the full
    itemised :class:`~repro.model.cost.CostLedger` for one point —
    bit-identical to the scalar prediction.
    """

    def __init__(
        self,
        collective: str,
        ns: np.ndarray,
        roots: np.ndarray,
        steps: t.Sequence[_Step],
        active: np.ndarray,
        name_of: t.Callable[[int], str],
    ) -> None:
        self.collective = collective
        self.ns = ns
        self.roots = roots
        self.steps = list(steps)
        self.active = active
        self._name_of = name_of

    @property
    def size(self) -> int:
        """Number of grid points."""
        return int(self.ns.size)

    @functools.cached_property
    def totals(self) -> np.ndarray:
        """``(G,)`` ledger totals, matching ``CostLedger.total`` exactly."""
        G = self.size
        steps = self.steps
        if not steps:
            return np.zeros(G)
        step_totals = [step.gh + step.L for step in steps]
        if len(step_totals) == 1:
            out = step_totals[0].copy()
        elif len(step_totals) == 2:
            # fsum of two addends is the correctly rounded sum — i.e.
            # exactly one IEEE double addition.
            out = step_totals[0] + step_totals[1]
        else:
            matrix = np.stack(step_totals)
            out = np.array([math.fsum(column) for column in matrix.T])
        if not self.active.all():
            out = np.where(self.active, out, 0.0)
        return out

    def ledger(self, i: int) -> CostLedger:
        """The full cost ledger of grid point ``i``."""
        if not 0 <= i < self.size:
            raise ModelError(f"grid index {i} out of range for size {self.size}")
        ledger = CostLedger(self._name_of(i))
        if self.active[i]:
            for step in self.steps:
                ledger.charge(
                    step.label(i),
                    level=step.level,
                    gh=float(step.gh[i]),
                    L=float(step.L[i]),
                )
        return ledger

    def ledgers(self) -> list[CostLedger]:
        """All ledgers, in grid order."""
        return [self.ledger(i) for i in range(self.size)]

    def __repr__(self) -> str:
        return (
            f"KernelGrid({self.collective}, points={self.size}, "
            f"steps={len(self.steps)})"
        )


class PlanGrid:
    """A grid evaluated under per-point :class:`~repro.tuning.plan.SchedulePlan`s.

    Different plans charge different step *sequences* (segmentation and
    binomial rounds change the super-step count), so the grid is
    partitioned into uniform-plan groups, each a :class:`KernelGrid`;
    this wrapper scatters group results back onto the caller's axis.
    ``totals`` and ``ledger(i)`` keep the bit-identity contract against
    the scalar ``predict_gather_plan`` / ``predict_broadcast_plan``.
    """

    def __init__(
        self,
        collective: str,
        ns: np.ndarray,
        roots: np.ndarray,
        plans: t.Sequence[t.Any],
        grids: t.Sequence[KernelGrid],
        group_of: np.ndarray,
        pos_of: np.ndarray,
    ) -> None:
        self.collective = collective
        self.ns = ns
        self.roots = roots
        self.plans = list(plans)
        self.grids = list(grids)
        self._group_of = group_of
        self._pos_of = pos_of

    @property
    def size(self) -> int:
        """Number of grid points."""
        return int(self.ns.size)

    @functools.cached_property
    def totals(self) -> np.ndarray:
        """``(G,)`` ledger totals, matching ``CostLedger.total`` exactly."""
        out = np.zeros(self.size)
        for gid, grid in enumerate(self.grids):
            mask = self._group_of == gid
            out[mask] = grid.totals[self._pos_of[mask]]
        return out

    def ledger(self, i: int) -> CostLedger:
        """The full cost ledger of grid point ``i``."""
        if not 0 <= i < self.size:
            raise ModelError(f"grid index {i} out of range for size {self.size}")
        return self.grids[int(self._group_of[i])].ledger(int(self._pos_of[i]))

    def ledgers(self) -> list[CostLedger]:
        """All ledgers, in grid order."""
        return [self.ledger(i) for i in range(self.size)]

    def __repr__(self) -> str:
        return (
            f"PlanGrid({self.collective}, points={self.size}, "
            f"groups={len(self.grids)})"
        )


def _check_plans(
    plans: t.Any, op: str, k: int, G: int
) -> list[t.Any]:
    """Normalise/validate the per-point plan axis."""
    from repro.tuning.plan import SchedulePlan

    if isinstance(plans, SchedulePlan):
        plan_list = [plans] * G
    else:
        plan_list = list(plans)
        if len(plan_list) != G:
            raise CollectiveError(
                f"plans must be one plan or a length-{G} sequence, "
                f"got {len(plan_list)}"
            )
    for plan in set(plan_list):
        if not isinstance(plan, SchedulePlan):
            raise CollectiveError(f"expected a SchedulePlan, got {plan!r}")
        if plan.op != op:
            raise CollectiveError(f"plan is for {plan.op!r}, expected {op!r}")
        if plan.k != k:
            raise CollectiveError(
                f"plan schedules {plan.k} levels, topology has k={k}"
            )
    return plan_list


def _group_plans(
    plan_list: t.Sequence[t.Any], G: int
) -> tuple[list[tuple[t.Any, np.ndarray]], np.ndarray, np.ndarray]:
    """Partition grid indices into uniform-plan groups."""
    groups: dict[t.Any, list[int]] = {}
    for i, plan in enumerate(plan_list):
        groups.setdefault(plan, []).append(i)
    group_of = np.zeros(G, dtype=np.int64)
    pos_of = np.zeros(G, dtype=np.int64)
    out = []
    for gid, (plan, idxs) in enumerate(groups.items()):
        sel = np.array(idxs, dtype=np.int64)
        group_of[sel] = gid
        pos_of[sel] = np.arange(sel.size, dtype=np.int64)
        out.append((plan, sel))
    return out, group_of, pos_of


# ---------------------------------------------------------------------------
# Compiled topology tables (shared by both kernels)
# ---------------------------------------------------------------------------

class _CompiledTree:
    """Per-params tables: slices, coordinators, labels — computed once."""

    def __init__(self, params: HBSPParams) -> None:
        self.params = params
        p, k = params.p, params.k
        self.p, self.k, self.g = p, k, params.g
        self.r0 = np.array([params.r_of(0, j) for j in range(p)])
        self.fastest = params.fastest_index(0) if p else 0

        #: leaves[level][j] — level-0 indices of M_{level,j}'s subtree.
        self.leaves: list[list[tuple[int, ...]]] = [
            [(j,) for j in range(p)]
        ]
        #: child_start[level] — reduceat offsets into level-1 nodes.
        self.child_start: dict[int, np.ndarray] = {}
        #: child_slice[level][j] — (start, stop) run of M_{level,j}'s children.
        self.child_slice: dict[int, list[tuple[int, int]]] = {}
        #: in_sub[level] — (m_level, p) bool: is leaf r in M_{level,j}'s subtree?
        self.in_sub: dict[int, np.ndarray] = {}
        #: dc[level] — (m_level,) default coordinator (min by (r, j)).
        self.dc: dict[int, np.ndarray] = {}
        #: child_pos[level][j] — (p,) position of the child containing a leaf.
        self.child_pos: dict[int, list[np.ndarray]] = {}
        #: L[level] — (m_level,) synchronisation costs.
        self.L: dict[int, np.ndarray] = {}
        #: weighted[level][j] — child fractions for "c"-weighted two-phase
        #: shares ({str(i): w_i / total_w} in child order), lazily built.
        self._weighted: dict[tuple[int, int], dict[str, float]] = {}

        for level in range(1, k + 1):
            m_here = params.m[level]
            starts, slices, level_leaves = [], [], []
            in_sub = np.zeros((m_here, p), dtype=bool)
            child_pos = []
            offset = 0
            for j in range(m_here):
                fan = params.fan_out[(level, j)]
                starts.append(offset)
                slices.append((offset, offset + fan))
                merged: list[int] = []
                pos = np.zeros(p, dtype=np.int64)
                for c_index in range(fan):
                    child_leaves = self.leaves[level - 1][offset + c_index]
                    merged.extend(child_leaves)
                    for leaf in child_leaves:
                        pos[leaf] = c_index
                level_leaves.append(tuple(merged))
                in_sub[j, merged] = True
                child_pos.append(pos)
                offset += fan
            self.leaves.append(level_leaves)
            self.child_start[level] = np.array(starts, dtype=np.int64)
            self.child_slice[level] = slices
            self.in_sub[level] = in_sub
            self.dc[level] = np.array(
                [
                    min(leaves, key=lambda j: (params.r_of(0, j), j))
                    for leaves in level_leaves
                ],
                dtype=np.int64,
            )
            self.child_pos[level] = child_pos
            self.L[level] = np.array(
                [params.L_of(level, j) for j in range(m_here)]
            )

    # -- per-evaluation helpers -------------------------------------------------
    def check_roots(
        self, roots: int | t.Sequence[int] | np.ndarray | None, G: int
    ) -> np.ndarray:
        """Resolve/validate the per-point root axis (None = fastest)."""
        if roots is None:
            return np.full(G, self.fastest, dtype=np.int64)
        arr = np.asarray(roots, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(G, int(arr), dtype=np.int64)
        if arr.shape != (G,):
            raise CollectiveError(
                f"roots must be a scalar or a length-{G} sequence, "
                f"got shape {arr.shape}"
            )
        bad = (arr < 0) | (arr >= self.p)
        if bad.any():
            root = int(arr[np.argmax(bad)])
            raise CollectiveError(f"root {root} out of range for p={self.p}")
        return arr

    def coords(self, level: int, roots: np.ndarray) -> np.ndarray:
        """``(m_level, G)`` coordinator leaf of every node, per point.

        The default coordinator (fastest leaf, ties by index) applies
        unless the point's root lies inside the subtree — then the root
        coordinates its own chain, exactly as the scalar
        ``_coordinator_leaf`` resolves it.
        """
        if level == 0:
            raise ModelError("level-0 nodes coordinate themselves")
        return np.where(
            self.in_sub[level][:, roots],
            roots[np.newaxis, :],
            self.dc[level][:, np.newaxis],
        )

    def sender_r(
        self, level: int, start: int, stop: int, coords_below: np.ndarray | None
    ) -> np.ndarray:
        """``r`` of the child coordinators in a cluster's child run."""
        if level - 1 == 0:
            # A leaf coordinates itself whatever the root is.
            return self.r0[start:stop][:, np.newaxis]
        assert coords_below is not None
        return self.r0[coords_below[start:stop]]

    def weighted_fractions(self, level: int, j: int) -> dict[str, float]:
        """Per-child first-phase fractions for the "c"-weighted scheme.

        Mirrors the scalar arithmetic exactly: builtin ``sum`` over each
        child's leaf fractions in leaf order, builtin ``sum`` over the
        children in child order, then one division per child.
        """
        key = (level, j)
        cached = self._weighted.get(key)
        if cached is None:
            params = self.params
            start, stop = self.child_slice[level][j]
            weights = [
                sum(
                    params.c_of(0, leaf)
                    for leaf in self.leaves[level - 1][child]
                )
                for child in range(start, stop)
            ]
            total_w = sum(weights)
            cached = self._weighted[key] = {
                str(i): w / total_w for i, w in enumerate(weights)
            }
        return cached


def _check_ns(ns: np.ndarray | t.Sequence[int]) -> np.ndarray:
    arr = np.asarray(ns, dtype=np.int64)
    if arr.ndim != 1:
        raise CollectiveError(f"ns must be one-dimensional, got shape {arr.shape}")
    if arr.size and int(arr.min()) < 0:
        first_bad = int(arr[arr < 0][0])
        raise CollectiveError(f"n must be >= 0, got {first_bad}")
    return arr


# ---------------------------------------------------------------------------
# Gather
# ---------------------------------------------------------------------------

class GatherKernel:
    """Vectorized :func:`~repro.model.predict.predict_gather`.

    Compile once per parameter set; evaluate arbitrary grids of
    ``(n, root, counts)`` points.  The gather ascends level by level:
    subtree totals are ``np.add.reduceat`` segment sums, the per-cluster
    h-relation is an elementwise max over ``r·h`` products, and the
    worst cluster per level is an ``argmax`` (first-max, matching the
    scalar strict ``>`` scan).
    """

    def __init__(self, params: HBSPParams, *, item_bytes: int = BYTES_PER_INT) -> None:
        self.params = params
        self.item_bytes = int(item_bytes)
        self._tree = _CompiledTree(params)
        self._labels = {
            level: tuple(
                f"super{level}: gather into {(level, j)}"
                for j in range(params.m[level])
            )
            for level in range(1, params.k + 1)
        }

    def evaluate(
        self,
        ns: np.ndarray | t.Sequence[int],
        *,
        roots: int | t.Sequence[int] | np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> KernelGrid:
        """Evaluate every ``(n, root, counts)`` point in one pass.

        ``counts`` is an optional ``(G, p)`` int64 matrix of initial
        per-processor item counts (default: the balanced workload per
        point, as in the scalar predictor).
        """
        tree = self._tree
        params, item_bytes = self.params, self.item_bytes
        ns = _check_ns(ns)
        G = ns.size
        roots_arr = tree.check_roots(roots, G)
        if counts is None:
            counts = balanced_counts(params, ns)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (G, params.p):
                raise CollectiveError(
                    f"counts must have shape ({G}, {params.p}), "
                    f"got {counts.shape}"
                )
            sums = counts.sum(axis=1)
            if not np.array_equal(sums, ns):
                i = int(np.argmax(sums != ns))
                raise CollectiveError(
                    f"counts sum to {int(sums[i])}, expected n={int(ns[i])}"
                )

        def name_of(i: int) -> str:
            return f"gather(k={params.k}, n={int(ns[i])})"

        active = np.ones(G, dtype=bool)
        if params.k == 0 or params.p == 1 or G == 0:
            return KernelGrid("gather", ns, roots_arr, [], active, name_of)

        steps: list[_Step] = []
        totals_below = np.ascontiguousarray(counts.T)  # (p, G) int64
        coords_below: np.ndarray | None = None
        for level in range(1, params.k + 1):
            totals_here = np.add.reduceat(
                totals_below, tree.child_start[level], axis=0
            )
            coords_here = tree.coords(level, roots_arr)
            gh_stack = self._flat_gh(
                level, totals_below, totals_here, coords_here, coords_below, G
            )
            cost_stack = gh_stack + tree.L[level][:, np.newaxis]
            choice = np.argmax(cost_stack, axis=0)
            gh_sel = np.take_along_axis(
                gh_stack, choice[np.newaxis, :], axis=0
            )[0]
            steps.append(
                _Step(
                    level=level,
                    gh=gh_sel,
                    L=tree.L[level][choice],
                    choice=choice,
                    labels=(self._labels[level],),
                )
            )
            totals_below = totals_here
            coords_below = coords_here
        return KernelGrid("gather", ns, roots_arr, steps, active, name_of)

    # -- schedule-plan evaluation ---------------------------------------------

    def _flat_gh(
        self,
        level: int,
        totals_below: np.ndarray,
        totals_here: np.ndarray,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
        segment: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """``(m_level, G)`` per-cluster ``g·h`` of one flat fan-in step.

        ``segment=(s, S)`` prices chunk ``s`` of an ``S``-way segmented
        level (each child coordinator sends ``T//S + (1 if s < T%S)`` of
        its ``T`` accumulated items); ``None`` is the whole message —
        the exact arithmetic of the plan-less :meth:`evaluate`.
        """
        tree, item_bytes = self._tree, self.item_bytes
        m_here = self.params.m[level]
        gh_stack = np.empty((m_here, G))
        for j in range(m_here):
            start, stop = tree.child_slice[level][j]
            child_tot = totals_below[start:stop]  # (C, G)
            coord = coords_here[j]  # (G,)
            own_pos = tree.child_pos[level][j][coord]  # (G,)
            if segment is None:
                sent = child_tot
                own_sent = np.take_along_axis(
                    sent, own_pos[np.newaxis, :], axis=0
                )[0]
                received = totals_here[j] - own_sent
            else:
                s, S = segment
                sent = child_tot // S + (s < child_tot % S)
                own_sent = np.take_along_axis(
                    sent, own_pos[np.newaxis, :], axis=0
                )[0]
                received = sent.sum(axis=0) - own_sent
            values = np.empty((stop - start + 1, G))
            values[0] = tree.r0[coord] * (received * item_bytes)
            values[1:] = tree.sender_r(level, start, stop, coords_below) * (
                sent * item_bytes
            )
            np.put_along_axis(
                values[1:], own_pos[np.newaxis, :], 0.0, axis=0
            )
            gh_stack[j] = tree.g * values.max(axis=0)
        return gh_stack

    def _binomial_steps(
        self,
        level: int,
        totals_below: np.ndarray,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
    ) -> list[_Step]:
        """Per-round steps of a binomial-tree gather level.

        Child positions rotate so the cluster coordinator sits at
        relative 0; round ``t`` sends each holder's accumulated window
        ``[q, q+2^t)`` down to ``q - 2^t``.  Clusters run ⌈log₂C⌉
        rounds; the later rounds' worst-cluster scans cover only the
        clusters still active.
        """
        tree, item_bytes = self._tree, self.item_bytes
        per_round: dict[int, list[tuple[int, np.ndarray]]] = {}
        for j in range(self.params.m[level]):
            start, stop = tree.child_slice[level][j]
            C = stop - start
            R = max(0, C - 1).bit_length()
            if R == 0:
                continue
            child_tot = totals_below[start:stop]
            child_r = tree.sender_r(level, start, stop, coords_below)
            if child_r.shape[1] == 1:
                child_r = np.broadcast_to(child_r, (C, G))
            coord = coords_here[j]
            own_pos = tree.child_pos[level][j][coord]
            idx = (
                own_pos[np.newaxis, :]
                + np.arange(C, dtype=np.int64)[:, np.newaxis]
            ) % C
            rot_tot = np.take_along_axis(child_tot, idx, axis=0)
            rot_r = np.take_along_axis(child_r, idx, axis=0)
            prefix = np.zeros((C + 1, G), dtype=np.int64)
            np.cumsum(rot_tot, axis=0, out=prefix[1:])
            for t_round in range(R):
                half = 1 << t_round
                rows = []
                for q in range(half, C, 2 * half):
                    volume = (prefix[min(q + half, C)] - prefix[q]) * item_bytes
                    rows.append(rot_r[q] * volume)
                    rows.append(rot_r[q - half] * volume)
                gh = tree.g * np.max(np.stack(rows), axis=0)
                per_round.setdefault(t_round, []).append((j, gh))
        steps: list[_Step] = []
        for t_round in sorted(per_round):
            entries = per_round[t_round]
            js = np.array([j for j, _ in entries], dtype=np.int64)
            gh_stack = np.stack([gh for _, gh in entries])
            L_here = tree.L[level][js]
            cost_stack = gh_stack + L_here[:, np.newaxis]
            choice = np.argmax(cost_stack, axis=0)
            gh_sel = np.take_along_axis(
                gh_stack, choice[np.newaxis, :], axis=0
            )[0]
            labels = tuple(
                f"super{level}: binomial gather round {t_round + 1} "
                f"in {(level, int(j))}"
                for j in js
            )
            steps.append(
                _Step(
                    level=level,
                    gh=gh_sel,
                    L=L_here[choice],
                    choice=choice,
                    labels=(labels,),
                )
            )
        return steps

    def _plan_steps(
        self,
        plan: t.Any,
        ns: np.ndarray,
        roots_arr: np.ndarray,
        counts: np.ndarray,
    ) -> list[_Step]:
        """All charged steps of one uniform-plan sub-grid."""
        tree, params = self._tree, self.params
        G = ns.size
        steps: list[_Step] = []
        totals_below = np.ascontiguousarray(counts.T)
        coords_below: np.ndarray | None = None
        for level in range(1, params.k + 1):
            totals_here = np.add.reduceat(
                totals_below, tree.child_start[level], axis=0
            )
            coords_here = tree.coords(level, roots_arr)
            schedule = plan.level(level)
            if schedule.algorithm == "flat":
                S = schedule.segments
                for s in range(S):
                    gh_stack = self._flat_gh(
                        level, totals_below, totals_here, coords_here,
                        coords_below, G,
                        segment=None if S == 1 else (s, S),
                    )
                    cost_stack = gh_stack + tree.L[level][:, np.newaxis]
                    choice = np.argmax(cost_stack, axis=0)
                    gh_sel = np.take_along_axis(
                        gh_stack, choice[np.newaxis, :], axis=0
                    )[0]
                    labels = (
                        self._labels[level]
                        if S == 1
                        else tuple(
                            f"super{level}.{s + 1}: gather into {(level, j)}"
                            for j in range(params.m[level])
                        )
                    )
                    steps.append(
                        _Step(
                            level=level,
                            gh=gh_sel,
                            L=tree.L[level][choice],
                            choice=choice,
                            labels=(labels,),
                        )
                    )
            else:  # binomial
                steps.extend(
                    self._binomial_steps(
                        level, totals_below, coords_here, coords_below, G
                    )
                )
            totals_below = totals_here
            coords_below = coords_here
        return steps

    def evaluate_plans(
        self,
        ns: np.ndarray | t.Sequence[int],
        plans: t.Any,
        *,
        roots: int | t.Sequence[int] | np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> PlanGrid:
        """Evaluate ``(n, root, counts)`` points under explicit plans.

        ``plans`` is one :class:`~repro.tuning.plan.SchedulePlan` for
        the whole grid or a per-point sequence; each uniform-plan group
        evaluates as its own vectorized pass.  Bit-identical to
        :func:`~repro.model.predict.predict_gather_plan` per point.
        """
        tree = self._tree
        params = self.params
        ns = _check_ns(ns)
        G = ns.size
        roots_arr = tree.check_roots(roots, G)
        if counts is None:
            counts = balanced_counts(params, ns)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (G, params.p):
                raise CollectiveError(
                    f"counts must have shape ({G}, {params.p}), "
                    f"got {counts.shape}"
                )
            sums = counts.sum(axis=1)
            if not np.array_equal(sums, ns):
                i = int(np.argmax(sums != ns))
                raise CollectiveError(
                    f"counts sum to {int(sums[i])}, expected n={int(ns[i])}"
                )
        plan_list = _check_plans(plans, "gather", params.k, G)
        groups, group_of, pos_of = _group_plans(plan_list, G)
        grids = []
        for plan, sel in groups:
            sub_ns = ns[sel]
            sub_roots = roots_arr[sel]

            def name_of(
                i: int, plan: t.Any = plan, sub_ns: np.ndarray = sub_ns
            ) -> str:
                return f"gather(k={params.k}, n={int(sub_ns[i])}, plan={plan.key})"

            active = np.ones(sub_ns.size, dtype=bool)
            if params.k == 0 or params.p == 1 or sub_ns.size == 0:
                grids.append(
                    KernelGrid("gather", sub_ns, sub_roots, [], active, name_of)
                )
                continue
            steps = self._plan_steps(plan, sub_ns, sub_roots, counts[sel])
            grids.append(
                KernelGrid("gather", sub_ns, sub_roots, steps, active, name_of)
            )
        return PlanGrid("gather", ns, roots_arr, plan_list, grids, group_of, pos_of)


# ---------------------------------------------------------------------------
# Broadcast
# ---------------------------------------------------------------------------

def _phase_codes(
    phases: PhaseSpec | t.Sequence[PhaseSpec], k: int, G: int
) -> tuple[np.ndarray, t.Callable[[int], PhaseSpec]]:
    """Per-point phase codes (0 = one, 1 = two) for levels 1..k."""

    def code_row(spec: PhaseSpec) -> list[int]:
        row = []
        for level in range(1, k + 1):
            if isinstance(spec, str):
                mode = spec
            else:
                mode = spec.get(level, "two")
            if mode not in ("one", "two"):
                raise CollectiveError(
                    f"phase must be 'one' or 'two', got {mode!r}"
                )
            row.append(0 if mode == "one" else 1)
        return row

    if isinstance(phases, (str, t.Mapping)):
        codes = np.broadcast_to(
            np.array(code_row(phases), dtype=np.int64), (G, k)
        )
        return codes, lambda i: phases
    specs = list(phases)
    if len(specs) != G:
        raise CollectiveError(
            f"phases must be one spec or a length-{G} sequence, "
            f"got {len(specs)}"
        )
    codes = np.array([code_row(spec) for spec in specs], dtype=np.int64)
    return codes, lambda i: specs[i]


class BroadcastKernel:
    """Vectorized :func:`~repro.model.predict.predict_broadcast`.

    Descends from level k to 1; per point the phase scheme can differ
    (``phases`` accepts one spec or a per-point sequence), so the
    planner's whole ``2^k`` enumeration is a single evaluation.
    """

    def __init__(self, params: HBSPParams, *, item_bytes: int = BYTES_PER_INT) -> None:
        self.params = params
        self.item_bytes = int(item_bytes)
        self._tree = _CompiledTree(params)
        #: Clusters with more than one child, per level (singleton
        #: wrapper clusters send nothing and charge nothing).
        self._fanned = {
            level: [
                j
                for j in range(params.m[level])
                if params.fan_out[(level, j)] > 1
            ]
            for level in range(1, params.k + 1)
        }
        self._labels = {
            level: (
                tuple(
                    f"super{level}: one-phase bcast in {(level, j)}"
                    for j in self._fanned[level]
                ),
                tuple(
                    f"super{level}: two-phase bcast in {(level, j)}"
                    for j in self._fanned[level]
                ),
            )
            for level in range(1, params.k + 1)
        }

    # -- share matrices ---------------------------------------------------------
    def _shares(
        self,
        level: int,
        j: int,
        C: int,
        ns: np.ndarray,
        fractions: t.Sequence[float] | None,
    ) -> np.ndarray:
        """(C, G) first-phase shares per child for the two-phase scheme."""
        if fractions is None:
            quotient = ns // C
            remainder = ns % C
            return quotient[np.newaxis, :] + (
                np.arange(C, dtype=np.int64)[:, np.newaxis]
                < remainder[np.newaxis, :]
            )
        weighted = self._tree.weighted_fractions(level, j)
        unique, inverse = np.unique(ns, return_inverse=True)
        table = np.empty((unique.size, C), dtype=np.int64)
        for u, n in enumerate(unique):
            part = partition_items(int(n), weighted)
            table[u] = [part[str(i)] for i in range(C)]
        return table[inverse].T

    def evaluate(
        self,
        ns: np.ndarray | t.Sequence[int],
        *,
        roots: int | t.Sequence[int] | np.ndarray | None = None,
        phases: PhaseSpec | t.Sequence[PhaseSpec] = "two",
        fractions: t.Sequence[float] | None = None,
    ) -> KernelGrid:
        """Evaluate every ``(n, root, phase-scheme)`` point in one pass."""
        tree = self._tree
        params, item_bytes = self.params, self.item_bytes
        ns = _check_ns(ns)
        G = ns.size
        roots_arr = tree.check_roots(roots, G)
        k = params.k

        if params.k == 0 or params.p == 1 or G == 0:
            def flat_name(i: int) -> str:
                spec = phases if isinstance(phases, (str, t.Mapping)) else phases[i]
                return f"broadcast(k={k}, n={int(ns[i])}, phases={spec!r})"

            return KernelGrid(
                "broadcast", ns, roots_arr, [],
                np.zeros(G, dtype=bool), flat_name,
            )

        codes, spec_of = _phase_codes(phases, k, G)
        if fractions is not None and len(fractions) != params.p:
            raise CollectiveError(
                f"fractions must have p={params.p} entries"
            )

        def name_of(i: int) -> str:
            return f"broadcast(k={k}, n={int(ns[i])}, phases={spec_of(i)!r})"

        active = ns > 0
        steps: list[_Step] = []
        for level in range(k, 0, -1):
            fanned = self._fanned[level]
            if not fanned:
                continue
            code_l = codes[:, level - 1]
            any_one = bool((code_l == 0).any())
            any_two = bool((code_l == 1).any())
            coords_here = tree.coords(level, roots_arr)
            coords_below = tree.coords(level - 1, roots_arr) if level - 1 >= 1 else None
            cost_stack = np.empty((len(fanned), G))
            gh_rows = np.empty((len(fanned), G))
            L_rows = np.empty((len(fanned), G))
            for row, j in enumerate(fanned):
                start, stop = tree.child_slice[level][j]
                C = stop - start
                coord = coords_here[j]
                r_coord = tree.r0[coord]
                child_r = tree.sender_r(level, start, stop, coords_below)
                if child_r.shape[1] == 1:
                    child_r = np.broadcast_to(child_r, (C, G))
                own_pos = tree.child_pos[level][j][coord]
                L_j = tree.L[level][j]
                gh_one = tot_one = gh_two = tot_two = None
                if any_one:
                    values = np.empty((C + 1, G))
                    values[0] = r_coord * ((ns * (C - 1)) * item_bytes)
                    values[1:] = child_r * (ns * item_bytes)[np.newaxis, :]
                    np.put_along_axis(
                        values[1:], own_pos[np.newaxis, :], 0.0, axis=0
                    )
                    gh_one = tree.g * values.max(axis=0)
                    tot_one = gh_one + L_j
                if any_two:
                    shares = self._shares(level, j, C, ns, fractions)
                    own_share = np.take_along_axis(
                        shares, own_pos[np.newaxis, :], axis=0
                    )[0]
                    values_a = np.empty((C + 1, G))
                    values_a[0] = r_coord * ((ns - own_share) * item_bytes)
                    values_a[1:] = child_r * (shares * item_bytes)
                    np.put_along_axis(
                        values_a[1:], own_pos[np.newaxis, :], 0.0, axis=0
                    )
                    h_a = values_a.max(axis=0)
                    values_b = child_r * (
                        np.maximum(shares * (C - 1), ns[np.newaxis, :] - shares)
                        * item_bytes
                    )
                    h_b = values_b.max(axis=0)
                    gh_two = tree.g * (h_a + h_b)
                    tot_two = gh_two + 2 * L_j
                if not any_two:
                    gh_sel, tot_sel = gh_one, tot_one
                    L_sel = np.full(G, L_j)
                elif not any_one:
                    gh_sel, tot_sel = gh_two, tot_two
                    L_sel = np.full(G, 2 * L_j)
                else:
                    two = code_l == 1
                    gh_sel = np.where(two, gh_two, gh_one)
                    tot_sel = np.where(two, tot_two, tot_one)
                    L_sel = np.where(two, 2 * L_j, L_j)
                gh_rows[row] = gh_sel
                cost_stack[row] = tot_sel
                L_rows[row] = L_sel
            choice = np.argmax(cost_stack, axis=0)
            gh = np.take_along_axis(gh_rows, choice[np.newaxis, :], axis=0)[0]
            L = np.take_along_axis(L_rows, choice[np.newaxis, :], axis=0)[0]
            steps.append(
                _Step(
                    level=level,
                    gh=gh,
                    L=L,
                    choice=choice,
                    labels=self._labels[level],
                    code=code_l,
                )
            )
        return KernelGrid("broadcast", ns, roots_arr, steps, active, name_of)

    # -- schedule-plan evaluation ---------------------------------------------

    def _cluster_tables(
        self,
        level: int,
        j: int,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """(C, r_coord, child_r, own_pos) of one fanned cluster."""
        tree = self._tree
        start, stop = tree.child_slice[level][j]
        C = stop - start
        coord = coords_here[j]
        r_coord = tree.r0[coord]
        child_r = tree.sender_r(level, start, stop, coords_below)
        if child_r.shape[1] == 1:
            child_r = np.broadcast_to(child_r, (C, G))
        own_pos = tree.child_pos[level][j][coord]
        return C, r_coord, child_r, own_pos

    def _one_phase_step(
        self,
        level: int,
        ns: np.ndarray,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
        segment: tuple[int, int] | None,
    ) -> _Step:
        """One (possibly chunked) coordinator fan-out sub-step."""
        tree, item_bytes = self._tree, self.item_bytes
        fanned = self._fanned[level]
        if segment is None:
            chunk = ns
        else:
            s, S = segment
            chunk = ns // S + (s < ns % S)
        gh_rows = np.empty((len(fanned), G))
        cost_rows = np.empty((len(fanned), G))
        for row, j in enumerate(fanned):
            C, r_coord, child_r, own_pos = self._cluster_tables(
                level, j, coords_here, coords_below, G
            )
            values = np.empty((C + 1, G))
            values[0] = r_coord * ((chunk * (C - 1)) * item_bytes)
            values[1:] = child_r * (chunk * item_bytes)[np.newaxis, :]
            np.put_along_axis(values[1:], own_pos[np.newaxis, :], 0.0, axis=0)
            gh_rows[row] = tree.g * values.max(axis=0)
            cost_rows[row] = gh_rows[row] + tree.L[level][j]
        choice = np.argmax(cost_rows, axis=0)
        gh = np.take_along_axis(gh_rows, choice[np.newaxis, :], axis=0)[0]
        L_of = np.array([tree.L[level][j] for j in fanned])
        labels = (
            self._labels[level][0]
            if segment is None
            else tuple(
                f"super{level}.{segment[0] + 1}: one-phase bcast "
                f"in {(level, j)}"
                for j in fanned
            )
        )
        return _Step(
            level=level, gh=gh, L=L_of[choice], choice=choice, labels=(labels,)
        )

    def _two_phase_step(
        self,
        level: int,
        ns: np.ndarray,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
        fractions: t.Sequence[float] | None,
    ) -> _Step:
        """The scatter + total-exchange two-phase step of one level."""
        tree, item_bytes = self._tree, self.item_bytes
        fanned = self._fanned[level]
        gh_rows = np.empty((len(fanned), G))
        cost_rows = np.empty((len(fanned), G))
        for row, j in enumerate(fanned):
            C, r_coord, child_r, own_pos = self._cluster_tables(
                level, j, coords_here, coords_below, G
            )
            shares = self._shares(level, j, C, ns, fractions)
            own_share = np.take_along_axis(
                shares, own_pos[np.newaxis, :], axis=0
            )[0]
            values_a = np.empty((C + 1, G))
            values_a[0] = r_coord * ((ns - own_share) * item_bytes)
            values_a[1:] = child_r * (shares * item_bytes)
            np.put_along_axis(
                values_a[1:], own_pos[np.newaxis, :], 0.0, axis=0
            )
            h_a = values_a.max(axis=0)
            values_b = child_r * (
                np.maximum(shares * (C - 1), ns[np.newaxis, :] - shares)
                * item_bytes
            )
            h_b = values_b.max(axis=0)
            gh_rows[row] = tree.g * (h_a + h_b)
            cost_rows[row] = gh_rows[row] + 2 * tree.L[level][j]
        choice = np.argmax(cost_rows, axis=0)
        gh = np.take_along_axis(gh_rows, choice[np.newaxis, :], axis=0)[0]
        L_of = np.array([2 * tree.L[level][j] for j in fanned])
        return _Step(
            level=level,
            gh=gh,
            L=L_of[choice],
            choice=choice,
            labels=(self._labels[level][1],),
        )

    def _binomial_steps(
        self,
        level: int,
        ns: np.ndarray,
        coords_here: np.ndarray,
        coords_below: np.ndarray | None,
        G: int,
    ) -> list[_Step]:
        """Per-round steps of a binomial-tree broadcast level.

        Rotated so the coordinator holds relative position 0; in round
        ``t`` every holder ``q < 2^t`` forwards the full payload to
        ``q + 2^t``.
        """
        tree, item_bytes = self._tree, self.item_bytes
        per_round: dict[int, list[tuple[int, np.ndarray]]] = {}
        for j in self._fanned[level]:
            C, _r_coord, child_r, own_pos = self._cluster_tables(
                level, j, coords_here, coords_below, G
            )
            R = max(0, C - 1).bit_length()
            idx = (
                own_pos[np.newaxis, :]
                + np.arange(C, dtype=np.int64)[:, np.newaxis]
            ) % C
            rot_r = np.take_along_axis(child_r, idx, axis=0)
            volume = ns * item_bytes
            for t_round in range(R):
                half = 1 << t_round
                rows = []
                for q in range(min(half, C - half)):
                    rows.append(rot_r[q] * volume)
                    rows.append(rot_r[q + half] * volume)
                gh = tree.g * np.max(np.stack(rows), axis=0)
                per_round.setdefault(t_round, []).append((j, gh))
        steps: list[_Step] = []
        for t_round in sorted(per_round):
            entries = per_round[t_round]
            js = np.array([j for j, _ in entries], dtype=np.int64)
            gh_stack = np.stack([gh for _, gh in entries])
            L_here = tree.L[level][js]
            cost_stack = gh_stack + L_here[:, np.newaxis]
            choice = np.argmax(cost_stack, axis=0)
            gh_sel = np.take_along_axis(
                gh_stack, choice[np.newaxis, :], axis=0
            )[0]
            labels = tuple(
                f"super{level}: binomial bcast round {t_round + 1} "
                f"in {(level, int(j))}"
                for j in js
            )
            steps.append(
                _Step(
                    level=level,
                    gh=gh_sel,
                    L=L_here[choice],
                    choice=choice,
                    labels=(labels,),
                )
            )
        return steps

    def _plan_steps(
        self,
        plan: t.Any,
        ns: np.ndarray,
        roots_arr: np.ndarray,
        fractions: t.Sequence[float] | None,
    ) -> list[_Step]:
        """All charged steps of one uniform-plan sub-grid."""
        tree, params = self._tree, self.params
        G = ns.size
        steps: list[_Step] = []
        for level in range(params.k, 0, -1):
            if not self._fanned[level]:
                continue
            coords_here = tree.coords(level, roots_arr)
            coords_below = (
                tree.coords(level - 1, roots_arr) if level - 1 >= 1 else None
            )
            schedule = plan.level(level)
            if schedule.algorithm == "one":
                S = schedule.segments
                for s in range(S):
                    steps.append(
                        self._one_phase_step(
                            level, ns, coords_here, coords_below, G,
                            segment=None if S == 1 else (s, S),
                        )
                    )
            elif schedule.algorithm == "two":
                steps.append(
                    self._two_phase_step(
                        level, ns, coords_here, coords_below, G, fractions
                    )
                )
            else:  # binomial
                steps.extend(
                    self._binomial_steps(
                        level, ns, coords_here, coords_below, G
                    )
                )
        return steps

    def evaluate_plans(
        self,
        ns: np.ndarray | t.Sequence[int],
        plans: t.Any,
        *,
        roots: int | t.Sequence[int] | np.ndarray | None = None,
        fractions: t.Sequence[float] | None = None,
    ) -> PlanGrid:
        """Evaluate ``(n, root)`` points under explicit broadcast plans.

        Bit-identical per point to
        :func:`~repro.model.predict.predict_broadcast_plan`.
        """
        tree = self._tree
        params = self.params
        ns = _check_ns(ns)
        G = ns.size
        roots_arr = tree.check_roots(roots, G)
        if fractions is not None and len(fractions) != params.p:
            raise CollectiveError(f"fractions must have p={params.p} entries")
        plan_list = _check_plans(plans, "broadcast", params.k, G)
        groups, group_of, pos_of = _group_plans(plan_list, G)
        grids = []
        degenerate = params.k == 0 or params.p == 1
        for plan, sel in groups:
            sub_ns = ns[sel]
            sub_roots = roots_arr[sel]

            def name_of(
                i: int, plan: t.Any = plan, sub_ns: np.ndarray = sub_ns
            ) -> str:
                return (
                    f"broadcast(k={params.k}, n={int(sub_ns[i])}, "
                    f"plan={plan.key})"
                )

            if degenerate or sub_ns.size == 0:
                grids.append(
                    KernelGrid(
                        "broadcast", sub_ns, sub_roots, [],
                        np.zeros(sub_ns.size, dtype=bool), name_of,
                    )
                )
                continue
            steps = self._plan_steps(plan, sub_ns, sub_roots, fractions)
            grids.append(
                KernelGrid(
                    "broadcast", sub_ns, sub_roots, steps,
                    sub_ns > 0, name_of,
                )
            )
        return PlanGrid(
            "broadcast", ns, roots_arr, plan_list, grids, group_of, pos_of
        )
