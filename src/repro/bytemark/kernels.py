"""BYTEmark-style benchmark kernels.

Each kernel is a small, self-checking numerical workload in the spirit
of the original BYTE Magazine suite [16].  Kernels are pure functions of
a seeded generator, so results are reproducible; each returns a checksum
that tests can assert on.

The ``work`` attribute is the kernel's nominal cost in abstract CPU work
units at ``scale=1`` — the unit :class:`~repro.cluster.MachineSpec.cpu_rate`
is expressed in.  Simulated BYTEmark scores are derived from these
nominal costs; host measurement (``repro.bytemark.suite.measure_host``)
times the real implementations.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as t

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["Kernel", "KERNELS"]


@dataclasses.dataclass(frozen=True)
class Kernel:
    """One benchmark kernel.

    Attributes
    ----------
    name:
        BYTEmark-style kernel name.
    category:
        ``"integer"`` or ``"float"`` (BYTEmark reports separate integer
        and floating-point indices).
    work:
        Nominal CPU work units consumed at ``scale = 1``.
    func:
        ``func(rng, scale) -> float`` running the kernel and returning a
        checksum.
    """

    name: str
    category: str
    work: float
    func: t.Callable[[np.random.Generator, int], float]

    def run(self, rng: np.random.Generator, scale: int = 1) -> float:
        """Execute the kernel at ``scale`` and return its checksum."""
        scale = check_positive_int("scale", scale)
        return float(self.func(rng, scale))


# ---------------------------------------------------------------------------
# Integer kernels
# ---------------------------------------------------------------------------

def numeric_sort(rng: np.random.Generator, scale: int) -> float:
    """Sort arrays of signed integers (BYTEmark 'Numeric sort')."""
    total = 0
    for _ in range(scale):
        data = rng.integers(-(2**31), 2**31 - 1, size=2048, dtype=np.int64)
        data = np.sort(data)
        # Self-check: sortedness + stable checksum.
        assert bool(np.all(data[1:] >= data[:-1]))
        total += int(data[::256].sum())
    return float(total % (2**31))


def string_sort(rng: np.random.Generator, scale: int) -> float:
    """Sort arrays of variable-length byte strings (BYTEmark 'String sort')."""
    checksum = 0
    for _ in range(scale):
        lengths = rng.integers(4, 30, size=512)
        raw = rng.integers(ord("a"), ord("z") + 1, size=int(lengths.sum()), dtype=np.uint8)
        strings, pos = [], 0
        for ln in lengths:
            strings.append(raw[pos : pos + int(ln)].tobytes())
            pos += int(ln)
        strings.sort()
        checksum += len(strings[0]) + len(strings[-1]) + strings[len(strings) // 2][0]
    return float(checksum)


def bitfield(rng: np.random.Generator, scale: int) -> float:
    """Bit-twiddling over a large bitmap (BYTEmark 'Bitfield')."""
    bits = np.zeros(scale * 8192, dtype=np.uint8)
    ops = rng.integers(0, len(bits), size=scale * 2048)
    kinds = rng.integers(0, 3, size=ops.shape[0])
    for op, kind in zip(ops, kinds):
        span = slice(int(op), min(len(bits), int(op) + 17))
        if kind == 0:
            bits[span] = 1
        elif kind == 1:
            bits[span] = 0
        else:
            bits[span] ^= 1
    return float(int(bits.sum()))


def huffman(rng: np.random.Generator, scale: int) -> float:
    """Build a Huffman code and round-trip a message (BYTEmark 'Huffman')."""
    text = rng.integers(0, 64, size=scale * 1024, dtype=np.uint8)
    counts = np.bincount(text, minlength=64)
    heap: list[tuple[int, int, t.Any]] = []
    uid = 0
    for symbol, count in enumerate(counts):
        if count:
            heap.append((int(count), uid, symbol))
            uid += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (c1 + c2, uid, (n1, n2)))
        uid += 1
    codes: dict[int, str] = {}

    def assign(node: t.Any, prefix: str) -> None:
        if isinstance(node, tuple):
            assign(node[0], prefix + "0")
            assign(node[1], prefix + "1")
        else:
            codes[node] = prefix or "0"

    assign(heap[0][2], "")
    encoded_length = sum(len(codes[int(s)]) for s in text)
    # Kraft inequality is a genuine invariant of a prefix code.
    kraft = sum(2.0 ** -len(c) for c in codes.values())
    assert kraft <= 1.0 + 1e-9
    return float(encoded_length)


def idea_cipher(rng: np.random.Generator, scale: int) -> float:
    """An IDEA-style mix of xors/adds/modular multiplies (BYTEmark 'IDEA')."""
    data = rng.integers(0, 2**16, size=scale * 4096, dtype=np.int64)
    key = rng.integers(1, 2**16, size=8, dtype=np.int64)
    state = data.copy()
    for k in key:
        state = (state * int(k)) % 65537
        state ^= (state >> 4)
        state = (state + int(k)) % 65536
    return float(int(state.sum()) % (2**31))


def assignment(rng: np.random.Generator, scale: int) -> float:
    """Task-assignment cost minimisation (BYTEmark 'Assignment').

    Uses the Jonker-Volgenant solver from SciPy on random cost
    matrices; the checksum is the total optimal cost, which tests can
    verify is no worse than the greedy solution.
    """
    from scipy.optimize import linear_sum_assignment

    total = 0.0
    for _ in range(scale):
        costs = rng.integers(0, 1000, size=(64, 64)).astype(float)
        rows, cols = linear_sum_assignment(costs)
        optimal = float(costs[rows, cols].sum())
        total += optimal
    return total


# ---------------------------------------------------------------------------
# Floating-point kernels
# ---------------------------------------------------------------------------

def fp_kernel(rng: np.random.Generator, scale: int) -> float:
    """Mixed FP arithmetic loops (BYTEmark 'FP emulation' stand-in)."""
    x = rng.random(scale * 8192)
    y = x.copy()
    for _ in range(6):
        y = y * 1.000001 + np.sin(y) * 0.25
        y = np.sqrt(np.abs(y) + 1e-9)
    return float(np.abs(y).sum())


def fourier(rng: np.random.Generator, scale: int) -> float:
    """Fourier coefficients by numerical integration (BYTEmark 'Fourier')."""
    n_coeffs = 24 * scale
    ts = np.linspace(0.0, 2.0, 512)
    f = ts**3 - 2 * ts  # the waveform BYTEmark integrates is similar
    total = 0.0
    for k in range(1, n_coeffs + 1):
        a_k = np.trapezoid(f * np.cos(np.pi * k * ts), ts)
        b_k = np.trapezoid(f * np.sin(np.pi * k * ts), ts)
        total += a_k * a_k + b_k * b_k
    return float(total)


def neural_net(rng: np.random.Generator, scale: int) -> float:
    """A tiny back-propagation epoch (BYTEmark 'Neural net')."""
    inputs = rng.random((32, 8))
    targets = (inputs.sum(axis=1, keepdims=True) > 4.0).astype(float)
    w1 = rng.normal(scale=0.5, size=(8, 8))
    w2 = rng.normal(scale=0.5, size=(8, 1))

    def sigmoid(v: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-v))

    loss = 0.0
    for _ in range(scale * 40):
        hidden = sigmoid(inputs @ w1)
        out = sigmoid(hidden @ w2)
        err = out - targets
        loss = float((err * err).mean())
        grad_out = err * out * (1 - out)
        grad_hidden = (grad_out @ w2.T) * hidden * (1 - hidden)
        w2 -= 0.5 * hidden.T @ grad_out / len(inputs)
        w1 -= 0.5 * inputs.T @ grad_hidden / len(inputs)
    return loss


def lu_decomposition(rng: np.random.Generator, scale: int) -> float:
    """LU decomposition of dense systems (BYTEmark 'LU decomposition')."""
    import scipy.linalg

    residual = 0.0
    for _ in range(scale):
        a = rng.random((48, 48)) + np.eye(48) * 48  # diagonally dominant
        b = rng.random(48)
        lu, piv = scipy.linalg.lu_factor(a)
        x = scipy.linalg.lu_solve((lu, piv), b)
        residual += float(np.abs(a @ x - b).max())
    assert residual < 1e-6 * scale
    return residual


#: The suite, in BYTEmark's traditional order.  ``work`` values are the
#: nominal cost ratios between kernels (measured once on the reference
#: host and frozen so simulated scores are stable).
KERNELS: tuple[Kernel, ...] = (
    Kernel("numeric sort", "integer", 6.0e5, numeric_sort),
    Kernel("string sort", "integer", 7.5e5, string_sort),
    Kernel("bitfield", "integer", 5.0e5, bitfield),
    Kernel("fp emulation", "float", 9.0e5, fp_kernel),
    Kernel("fourier", "float", 8.0e5, fourier),
    Kernel("assignment", "integer", 1.1e6, assignment),
    Kernel("idea", "integer", 4.5e5, idea_cipher),
    Kernel("huffman", "integer", 9.5e5, huffman),
    Kernel("neural net", "float", 1.2e6, neural_net),
    Kernel("lu decomposition", "float", 1.0e6, lu_decomposition),
)
