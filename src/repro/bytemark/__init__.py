"""A BYTEmark-style benchmark suite and machine ranking.

The paper (Section 5.1) ranks testbed processors with the BYTEmark
benchmark — "tests such as sorting, floating-point manipulation, and
numerical analysis" — and derives the workload fractions ``c_j`` from
the resulting scores.

This package provides:

* :mod:`repro.bytemark.kernels` — real, runnable implementations of
  BYTEmark-style kernels (numeric sort, string sort, bitfield ops,
  FP kernel, Fourier coefficients, assignment problem, Huffman coding,
  LU decomposition, neural-net epoch, IDEA-style cipher);
* :mod:`repro.bytemark.suite` — run the suite on the real host, or
  *simulate* per-machine scores from a :class:`~repro.cluster.MachineSpec`
  with a measurement-noise model (the testbed was non-dedicated);
* :mod:`repro.bytemark.ranking` — scores → speed ranking, ``c_j``
  fractions, and integer workload partitions.
"""

from repro.bytemark.kernels import KERNELS, Kernel
from repro.bytemark.suite import (
    BytemarkResult,
    measure_host,
    simulate_scores,
    true_scores,
)
from repro.bytemark.ranking import (
    fractions_from_scores,
    partition_items,
    ranking_from_scores,
)

__all__ = [
    "Kernel",
    "KERNELS",
    "BytemarkResult",
    "measure_host",
    "simulate_scores",
    "true_scores",
    "ranking_from_scores",
    "fractions_from_scores",
    "partition_items",
]
