"""From benchmark scores to rankings, fractions, and partitions.

The paper's balanced-workload experiments compute each machine's
fraction ``c_j`` "using the BYTEmark results" (Section 5.1).  This
module implements that derivation plus the integer partitioning needed
to hand out whole data items.
"""

from __future__ import annotations

import math
import typing as t

from repro.errors import PartitionError, ValidationError
from repro.util.validation import check_positive_int

__all__ = ["ranking_from_scores", "fractions_from_scores", "partition_items"]


def ranking_from_scores(scores: t.Mapping[str, float]) -> list[str]:
    """Machine names sorted fastest-first by score (ties by name)."""
    if not scores:
        raise ValidationError("scores must be non-empty")
    for name, score in scores.items():
        if not (score > 0 and math.isfinite(score)):
            raise ValidationError(f"score for {name!r} must be positive, got {score!r}")
    return sorted(scores, key=lambda name: (-scores[name], name))


def fractions_from_scores(scores: t.Mapping[str, float]) -> dict[str, float]:
    """The model's ``c_j``: workload fractions proportional to speed.

    ``c_j = score_j / sum(scores)`` — a machine twice as fast receives
    twice the data, Section 3.3's load-balancing rule.  The largest
    fraction absorbs the division residue, so the fractions sum to 1 to
    within one float ulp (an *exact* unit sum is not representable for
    arbitrary score vectors); :func:`partition_items` tolerates this.
    """
    ranking_from_scores(scores)  # validation
    total = math.fsum(scores.values())
    fractions = {name: score / total for name, score in scores.items()}
    residue = 1.0 - math.fsum(fractions.values())
    top = max(fractions, key=lambda name: (fractions[name], name))
    fractions[top] += residue
    return fractions


def partition_items(
    n: int, fractions: t.Mapping[str, float]
) -> dict[str, int]:
    """Split ``n`` whole items proportionally to ``fractions``.

    Uses the largest-remainder method so the result is deterministic,
    conserves ``n`` exactly, and is within one item of the ideal share
    for every machine.  Raises :class:`PartitionError` if the fractions
    do not sum to 1.
    """
    n = check_positive_int("n", max(1, n)) if n != 0 else 0
    if not fractions:
        raise PartitionError("fractions must be non-empty")
    total = math.fsum(fractions.values())
    if abs(total - 1.0) > 1e-9:
        raise PartitionError(f"fractions must sum to 1, got {total!r}")
    for name, fraction in fractions.items():
        if fraction < 0:
            raise PartitionError(f"fraction for {name!r} is negative: {fraction!r}")

    floors = {name: int(math.floor(n * f)) for name, f in fractions.items()}
    remainder = n - sum(floors.values())
    # Hand leftover items to the largest fractional parts; break ties
    # by name so the partition is deterministic.
    order = sorted(
        fractions,
        key=lambda name: (-(n * fractions[name] - floors[name]), name),
    )
    out = dict(floors)
    for name in order[:remainder]:
        out[name] += 1
    assert sum(out.values()) == n
    return out
