"""Running the BYTEmark suite — for real, or simulated per machine.

Two modes:

``measure_host()``
    Times the real kernel implementations on the machine running this
    Python process.  Used by the ``bytemark_ranking`` example and by
    tests that check the kernels actually run.

``simulate_scores(topology, ...)``
    Produces a BYTEmark-style index per *simulated* machine from its
    :class:`~repro.cluster.MachineSpec.cpu_rate`, optionally perturbed
    by log-normal measurement noise.  The noise models the paper's
    non-dedicated testbed and is what produces the Figure 3(b) finding
    (the second-fastest machine's ``c_j`` is over-estimated, so it
    "sends too many elements to the root node").
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

import numpy as np

from repro.bytemark.kernels import KERNELS, Kernel
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import ClusterTopology

__all__ = ["BytemarkResult", "measure_host", "simulate_scores", "true_scores"]


@dataclasses.dataclass(frozen=True)
class BytemarkResult:
    """Outcome of one suite run.

    Attributes
    ----------
    scores:
        Per-kernel score (work per second — higher is faster).
    integer_index / float_index:
        Geometric means over the integer / floating-point kernels,
        matching how BYTEmark aggregates.
    index:
        Geometric mean over all kernels — the machine's overall score.
    """

    scores: t.Mapping[str, float]
    integer_index: float
    float_index: float
    index: float

    @staticmethod
    def from_scores(scores: t.Mapping[str, float]) -> "BytemarkResult":
        """Aggregate per-kernel scores into BYTEmark-style indices."""
        by_category: dict[str, list[float]] = {"integer": [], "float": []}
        for kernel in KERNELS:
            if kernel.name in scores:
                by_category[kernel.category].append(scores[kernel.name])
        all_scores = [s for group in by_category.values() for s in group]
        if not all_scores:
            raise ValueError("no kernel scores supplied")

        def gmean(values: list[float]) -> float:
            if not values:
                return float("nan")
            return float(np.exp(np.mean(np.log(values))))

        return BytemarkResult(
            scores=dict(scores),
            integer_index=gmean(by_category["integer"]),
            float_index=gmean(by_category["float"]),
            index=gmean(all_scores),
        )


def measure_host(
    *,
    scale: int = 1,
    seed: int = 0,
    kernels: t.Sequence[Kernel] = KERNELS,
    repeats: int = 1,
) -> BytemarkResult:
    """Time the real kernels on the host running this process.

    Returns per-kernel scores of ``kernel.work * scale / elapsed``
    (work units per wall second), aggregated BYTEmark-style.
    """
    scores: dict[str, float] = {}
    for kernel in kernels:
        rng = np.random.default_rng(seed)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            kernel.run(rng, scale)
            best = min(best, time.perf_counter() - start)
        scores[kernel.name] = kernel.work * scale / max(best, 1e-9)
    return BytemarkResult.from_scores(scores)


def true_scores(topology: "ClusterTopology") -> dict[str, float]:
    """Noise-free BYTEmark indices: exactly each machine's ``cpu_rate``."""
    return {m.name: float(m.cpu_rate) for m in topology.machines}


def simulate_scores(
    topology: "ClusterTopology",
    *,
    noise_sigma: float = 0.08,
    seed: int = 2001,
) -> dict[str, float]:
    """Simulated BYTEmark indices for every machine of ``topology``.

    Each machine's index is its true ``cpu_rate`` scaled by a log-normal
    measurement-noise factor (median 1.0, shape ``noise_sigma``).  The
    per-machine noise stream is derived from the machine *name*, so the
    score of a given machine is independent of which other machines are
    in the topology — exactly like benchmarking real hosts one by one.

    ``noise_sigma = 0`` returns the true scores.
    """
    check_non_negative("noise_sigma", noise_sigma)
    out: dict[str, float] = {}
    for machine in topology.machines:
        stream = RngStream(seed, "bytemark", machine.name)
        out[machine.name] = float(machine.cpu_rate) * stream.lognormal_factor(noise_sigma)
    return out
