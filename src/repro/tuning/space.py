"""Enumeration of the per-collective schedule space.

The candidate set per hierarchy level:

* gather — ``flat`` at each configured segmentation plus ``binomial``;
* broadcast — ``one`` at each segmentation, ``two``, and ``binomial``.

A plan is the cross product over the ``k`` levels, so the space is
``(1 + |segments|)^k`` for gather and ``(2 + |segments|)^k`` for
broadcast — e.g. 64 / 125 plans at ``k = 3`` with the default
``segments = (1, 2, 4)``.  Small enough to price exhaustively with one
vectorized kernel pass (the analytic pruning stage), far too large to
DES-simulate exhaustively (hence the top-N shortlist).
"""

from __future__ import annotations

import itertools
import typing as t

from repro.errors import CollectiveError
from repro.tuning.plan import LevelSchedule, SchedulePlan, default_plan

__all__ = ["DEFAULT_SEGMENTS", "level_choices", "enumerate_plans", "space_size"]

#: Segmentation factors explored for the segmentable algorithms.
DEFAULT_SEGMENTS: tuple[int, ...] = (1, 2, 4)


def level_choices(
    op: str, segments: t.Sequence[int] = DEFAULT_SEGMENTS
) -> list[LevelSchedule]:
    """Candidate schedules for one hierarchy level, in canonical order."""
    segments = _check_segments(segments)
    if op == "gather":
        choices = [LevelSchedule("flat", s) for s in segments]
        choices.append(LevelSchedule("binomial"))
    elif op == "broadcast":
        choices = [LevelSchedule("one", s) for s in segments]
        choices.append(LevelSchedule("two"))
        choices.append(LevelSchedule("binomial"))
    else:
        raise CollectiveError(
            f"op must be 'gather' or 'broadcast', got {op!r}"
        )
    return choices


def enumerate_plans(
    op: str,
    k: int,
    *,
    segments: t.Sequence[int] = DEFAULT_SEGMENTS,
) -> list[SchedulePlan]:
    """Every plan in the space, the default plan always first."""
    if k < 0:
        raise CollectiveError(f"k must be >= 0, got {k}")
    choices = level_choices(op, segments)
    plans = [
        SchedulePlan(op, levels)
        for levels in itertools.product(choices, repeat=k)
    ]
    base = default_plan(op, k)
    plans.sort(key=lambda plan: plan != base)  # stable: default first
    return plans


def space_size(
    op: str, k: int, *, segments: t.Sequence[int] = DEFAULT_SEGMENTS
) -> int:
    """``|level_choices|^k`` — plans enumerate_plans would yield."""
    return len(level_choices(op, segments)) ** max(0, k)


def _check_segments(segments: t.Sequence[int]) -> tuple[int, ...]:
    out = tuple(int(s) for s in segments)
    if not out or any(s < 1 for s in out) or len(set(out)) != len(out):
        raise CollectiveError(
            f"segments must be distinct positive ints, got {segments!r}"
        )
    if 1 not in out:
        out = (1,) + out
    return out
