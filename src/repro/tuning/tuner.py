"""The tuning pipeline: enumerate, price, validate, memoize.

Cold path (:func:`tune` on an unseen ``(op, machine, n)``):

1. **Enumerate** the per-level schedule space
   (:func:`repro.tuning.space.enumerate_plans`) — every combination of
   flat/binomial fan-out, one-/two-phase, and segmentation.
2. **Price** the whole grid in one vectorized
   :mod:`repro.model.kernels` pass (:func:`repro.model.rank_plans`),
   bit-identical to the scalar predictors.
3. **Validate** the analytic top-``shortlist`` — the default plan is
   always re-included — by actually running each candidate through the
   macro-event DES engine, which prices contention and overlap the
   closed form cannot see.
4. **Pick** the plan with the lowest *simulated* makespan (analytic
   rank breaks ties), and **memoize** the decision in the persistent
   :class:`~repro.tuning.cache.DecisionCache`.

Because the default plan is always in the validated shortlist and the
winner is chosen on simulated time, a tuned run can never be slower
than the default schedule on the tuning workload.

Warm path: one :meth:`DecisionCache.get` — O(1), no enumeration, no
simulation — returning the exact plan the cold run chose, so cold and
warm tuned runs are byte-identical.
"""

from __future__ import annotations

import typing as t

from repro.cluster.serialization import topology_hash
from repro.cluster.topology import ClusterTopology
from repro.collectives.schedules import RootPolicy, resolve_root
from repro.errors import CollectiveError
from repro.model.planner import rank_plans
from repro.tuning.cache import DecisionCache, TunedDecision
from repro.tuning.plan import SchedulePlan, default_plan
from repro.tuning.space import DEFAULT_SEGMENTS, enumerate_plans
from repro.util.units import BYTES_PER_INT

__all__ = ["DEFAULT_SHORTLIST", "TunedDecision", "tune", "tuned_plan"]

#: How many analytically-cheapest plans get DES-validated (the default
#: plan is appended when it is not already among them).
DEFAULT_SHORTLIST = 4

_process_cache: DecisionCache | None = None


def _default_cache() -> DecisionCache:
    global _process_cache
    if _process_cache is None:
        _process_cache = DecisionCache()
    return _process_cache


def _resolve_root_fast(
    topology: ClusterTopology, root: "int | RootPolicy | None"
) -> int:
    """Resolve a root spec to a pid without building a runtime.

    The warm path must be a cache lookup, not a simulator construction
    — this mirrors :func:`~repro.collectives.schedules.resolve_root`
    (normalised topology, noise-free BYTEmark ranking) on plain
    topology data, so both spell the same pid.
    """
    normalized = topology.normalized()
    if root is not None and not isinstance(root, RootPolicy):
        if isinstance(root, bool) or not isinstance(root, int):
            raise CollectiveError(
                f"root must be a pid or RootPolicy, got {root!r}"
            )
        if not 0 <= root < normalized.num_machines:
            raise CollectiveError(
                f"root pid {root} out of range [0, {normalized.num_machines})"
            )
        return root
    from repro.bytemark.ranking import ranking_from_scores
    from repro.bytemark.suite import true_scores

    ranking = ranking_from_scores(true_scores(normalized))
    name = ranking[-1] if root is RootPolicy.SLOWEST else ranking[0]
    return normalized.machine_id(name)


def _simulate(
    op: str,
    topology: ClusterTopology,
    n: int,
    root: int,
    plan: SchedulePlan,
    seed: int,
) -> float:
    from repro.collectives.broadcast import run_broadcast
    from repro.collectives.gather import run_gather

    if op == "gather":
        outcome = run_gather(
            topology, n, root=root, seed=seed, macro=True, plan=plan
        )
    else:
        outcome = run_broadcast(
            topology, n, root=root, seed=seed, macro=True, plan=plan
        )
    return outcome.time


def tune(
    topology: ClusterTopology,
    op: str,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    segments: t.Sequence[int] = DEFAULT_SEGMENTS,
    shortlist: int = DEFAULT_SHORTLIST,
    item_bytes: int = BYTES_PER_INT,
    seed: int = 0,
    cache: DecisionCache | None = None,
    force: bool = False,
) -> TunedDecision:
    """Pick (or recall) the best schedule for ``op`` on this machine.

    ``cache=None`` uses the process-wide persistent cache under
    :func:`~repro.tuning.cache.default_decision_dir`; ``force=True``
    re-tunes even on a cache hit (and overwrites the stored decision).
    The decision key is ``(op, topology-hash, n, item_bytes, root)``
    with the root resolved to a concrete pid first, so policy spellings
    of the same pid share one entry.
    """
    if op not in ("gather", "broadcast"):
        raise CollectiveError(f"op must be 'gather' or 'broadcast', got {op!r}")
    if n < 0:
        raise CollectiveError(f"n must be >= 0, got {n}")
    if shortlist < 1:
        raise CollectiveError(f"shortlist must be >= 1, got {shortlist}")
    if cache is None:
        cache = _default_cache()
    root_pid = _resolve_root_fast(topology, root)
    topo_hash = topology_hash(topology)
    if not force:
        hit = cache.get(op, topo_hash, n, item_bytes, root_pid)
        if hit is not None:
            return hit
    from repro.collectives.base import make_runtime

    runtime = make_runtime(topology)
    if resolve_root(runtime, root) != root_pid:  # pragma: no cover
        raise CollectiveError("root resolution diverged from the runtime's")
    params = runtime.params
    plans = enumerate_plans(op, params.k, segments=segments)
    ranked = rank_plans(
        params, n, plans, root=root_pid, top=shortlist
    )
    base = default_plan(op, params.k)
    if all(plan != base for plan, _ in ranked):
        base_rank = rank_plans(params, n, [base], root=root_pid)
        ranked.append(base_rank[0])

    best_plan: SchedulePlan | None = None
    best_predicted = 0.0
    best_time = float("inf")
    default_time = float("inf")
    for plan, predicted in ranked:
        simulated = _simulate(op, topology, n, root_pid, plan, seed)
        if plan == base:
            default_time = simulated
        if simulated < best_time:
            best_plan = plan
            best_predicted = predicted
            best_time = simulated
    assert best_plan is not None  # shortlist >= 1

    decision = TunedDecision(
        op=op,
        topology_hash=topo_hash,
        n=int(n),
        item_bytes=int(item_bytes),
        root=root_pid,
        plan=best_plan,
        predicted_time=best_predicted,
        simulated_time=best_time,
        default_time=default_time,
        candidates=len(plans),
        validated=len(ranked),
    )
    cache.put(decision)
    return decision


def tuned_plan(
    topology: ClusterTopology,
    op: str,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    cache: DecisionCache | None = None,
) -> SchedulePlan:
    """The winning plan only — the convenience front door for runners."""
    return tune(topology, op, n, root=root, cache=cache).plan
