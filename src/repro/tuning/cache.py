"""Persistent memo of tuning decisions (the warm path).

A tuned schedule is worth remembering: the cold pipeline enumerates
and prices the whole plan space and DES-validates a shortlist, while
the *decision* itself is a few hundred bytes of JSON.  The
:class:`DecisionCache` stores one :class:`TunedDecision` per
``(op, topology-hash, n, item_bytes, root)`` tuple — the topology hash
is :func:`repro.cluster.topology_hash`, canonical across dict ordering
and schema versions — so repeated traffic on a known machine resolves
its plan in O(1) with zero enumeration.

Storage rides on :class:`repro.perf.DiskCache`, inheriting its
guarantees: atomic writes, any unreadable entry is a miss, and entries
live under a ``v{schema}-{package-version}`` directory so a version
bump orphans stale decisions wholesale (the simulator whose timings
justified them may have changed).  A per-process in-memory memo sits
in front of the disk for the hot path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import typing as t
from pathlib import Path

from repro.errors import CollectiveError
from repro.perf.diskcache import CacheStats, DiskCache
from repro.tuning.plan import SchedulePlan

__all__ = [
    "DecisionCache",
    "TunedDecision",
    "decision_key",
    "default_decision_dir",
]


def default_decision_dir() -> Path:
    """Where tuning decisions persist.

    ``$REPRO_CACHE_DIR/decisions`` if the override is set (so tests
    and sandboxes redirect every repro cache with one variable); else
    ``$XDG_CACHE_HOME/repro/decisions``; else ``~/.cache/repro/decisions``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override) / "decisions"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "decisions"


@dataclasses.dataclass(frozen=True)
class TunedDecision:
    """The outcome of one tuning run, JSON-round-trippable.

    ``simulated_time`` is the DES-validated makespan of the winning
    ``plan``; ``default_time`` is the same machine running the paper's
    default schedule, so ``improvement`` is directly the tuned-vs-default
    win.  ``candidates``/``validated`` record how much space was priced
    analytically and how much of the shortlist was simulated.
    """

    op: str
    topology_hash: str
    n: int
    item_bytes: int
    root: int
    plan: SchedulePlan
    predicted_time: float
    simulated_time: float
    default_time: float
    candidates: int
    validated: int

    @property
    def improvement(self) -> float:
        """Fractional makespan win over the default schedule (>= 0)."""
        if self.default_time <= 0:
            return 0.0
        return 1.0 - self.simulated_time / self.default_time

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["plan"] = self.plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "TunedDecision":
        return cls(
            op=str(data["op"]),
            topology_hash=str(data["topology_hash"]),
            n=int(data["n"]),
            item_bytes=int(data["item_bytes"]),
            root=int(data["root"]),
            plan=SchedulePlan.from_dict(data["plan"]),
            predicted_time=float(data["predicted_time"]),
            simulated_time=float(data["simulated_time"]),
            default_time=float(data["default_time"]),
            candidates=int(data["candidates"]),
            validated=int(data["validated"]),
        )


def decision_key(
    op: str, topology_hash: str, n: int, item_bytes: int, root: int
) -> str:
    """Stable cache key for one tuning decision.

    The composed tuple is hashed so every key is a uniform hex string
    (well distributed over the disk cache's two-character fan-out and
    trivially filename-safe); the readable fields live inside the
    stored payload.
    """
    if op not in ("gather", "broadcast"):
        raise CollectiveError(f"op must be 'gather' or 'broadcast', got {op!r}")
    text = f"{op}|{topology_hash}|{int(n)}|{int(item_bytes)}|{int(root)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DecisionCache:
    """Two-tier (memory, disk) store of :class:`TunedDecision`\\ s."""

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        *,
        version: str | None = None,
    ) -> None:
        self.disk = DiskCache(
            default_decision_dir() if root is None else root, version=version
        )
        self._memo: dict[str, TunedDecision] = {}

    def get(
        self, op: str, topology_hash: str, n: int, item_bytes: int, root: int
    ) -> TunedDecision | None:
        """The memoized decision, or ``None`` on any miss/failure."""
        key = decision_key(op, topology_hash, n, item_bytes, root)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        data = self.disk.get_json(key)
        if data is None:
            return None
        try:
            decision = TunedDecision.from_dict(data)
        except (CollectiveError, ValueError, KeyError, TypeError):
            return None
        self._memo[key] = decision
        return decision

    def put(self, decision: TunedDecision) -> None:
        """Memoize a decision in memory and (best-effort) on disk."""
        key = decision_key(
            decision.op,
            decision.topology_hash,
            decision.n,
            decision.item_bytes,
            decision.root,
        )
        self._memo[key] = decision
        self.disk.put_json(key, decision.to_dict())

    def stats(self) -> CacheStats:
        return self.disk.stats()

    def prune(self, max_bytes: int = 0) -> tuple[int, int]:
        self._memo.clear()
        return self.disk.prune(max_bytes)

    def clear(self) -> None:
        """Drop every decision, all versions, memory included."""
        self._memo.clear()
        self.disk.wipe()

    def __len__(self) -> int:
        return len(self.disk)

    def __repr__(self) -> str:
        return (
            f"DecisionCache({str(self.disk.root)!r}, entries={len(self)}, "
            f"memo={len(self._memo)})"
        )
