"""Declarative, JSON-serialisable collective schedule plans.

A :class:`SchedulePlan` pins, for every hierarchy level, *how* that
level's super-step communicates — the expanded schedule space of
Barchet-Estefanel & Mounié's tuning programme, generalised to HBSP^k:

* **gather** levels choose ``flat`` (every child coordinator sends its
  accumulated subtree to the cluster coordinator in one step,
  optionally *segmented* into ``S`` chunked sub-steps) or ``binomial``
  (a ⌈log₂C⌉-round binomial tree over the child-coordinator
  positions);
* **broadcast** levels choose ``one`` (coordinator fan-out, optionally
  segmented), ``two`` (the paper's scatter + total-exchange two-phase
  scheme), or ``binomial`` (log-round doubling).

Plans are *pure data*: the cost model prices them
(:func:`repro.model.predict.predict_gather_plan` /
:func:`~repro.model.predict.predict_broadcast_plan`, vectorized by
``model.kernels``), the DES executes them (``collectives/`` programs
take a ``plan=`` argument), and the decision cache persists them as
JSON.  ``default_plan`` reproduces the paper's hand schedules exactly
— a default-plan run is bit-identical to a plan-less run.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import CollectiveError

__all__ = [
    "GATHER_ALGORITHMS",
    "BROADCAST_ALGORITHMS",
    "LevelSchedule",
    "SchedulePlan",
    "default_plan",
]

#: Per-level algorithms understood by the gather program/model.
GATHER_ALGORITHMS = ("flat", "binomial")
#: Per-level algorithms understood by the broadcast program/model.
BROADCAST_ALGORITHMS = ("one", "two", "binomial")

#: Algorithms that accept message segmentation (``segments > 1``).
_SEGMENTABLE = ("flat", "one")


def binomial_rounds(fan_out: int) -> int:
    """Rounds of a binomial tree over ``fan_out`` positions: ⌈log₂C⌉."""
    return max(0, fan_out - 1).bit_length()


def split_segments(total: int, segments: int) -> list[int]:
    """Chunk sizes of ``total`` items over ``segments`` sub-steps.

    The single integer rule shared by the cost model and the executable
    programs: chunk ``s`` holds ``total // S + (1 if s < total % S)``.
    """
    base, extra = divmod(int(total), segments)
    return [base + (1 if s < extra else 0) for s in range(segments)]


@dataclasses.dataclass(frozen=True)
class LevelSchedule:
    """How one hierarchy level communicates.

    ``segments`` splits each message into that many chunks, one
    cluster-scoped super-step per chunk (latency-for-bandwidth trade,
    only meaningful for the segmentable algorithms).
    """

    algorithm: str
    segments: int = 1

    def validated(self, op: str) -> "LevelSchedule":
        allowed = GATHER_ALGORITHMS if op == "gather" else BROADCAST_ALGORITHMS
        if self.algorithm not in allowed:
            raise CollectiveError(
                f"unknown {op} level algorithm {self.algorithm!r} "
                f"(expected one of {allowed})"
            )
        if not isinstance(self.segments, int) or self.segments < 1:
            raise CollectiveError(
                f"segments must be a positive int, got {self.segments!r}"
            )
        if self.segments > 1 and self.algorithm not in _SEGMENTABLE:
            raise CollectiveError(
                f"algorithm {self.algorithm!r} does not support "
                f"segmentation (segments={self.segments})"
            )
        return self

    @property
    def key(self) -> str:
        """Compact canonical token, e.g. ``flat``, ``flat/4``, ``binomial``."""
        if self.segments == 1:
            return self.algorithm
        return f"{self.algorithm}/{self.segments}"

    def to_dict(self) -> dict[str, t.Any]:
        return {"algorithm": self.algorithm, "segments": self.segments}

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "LevelSchedule":
        return cls(
            algorithm=str(data["algorithm"]),
            segments=int(data.get("segments", 1)),
        )


@dataclasses.dataclass(frozen=True)
class SchedulePlan:
    """A complete per-level schedule for one collective.

    ``levels[i]`` schedules hierarchy level ``i + 1`` (gather ascends
    1..k, broadcast descends k..1 — the tuple is always stored in
    ascending level order).
    """

    op: str
    levels: tuple[LevelSchedule, ...]

    def __post_init__(self) -> None:
        if self.op not in ("gather", "broadcast"):
            raise CollectiveError(
                f"op must be 'gather' or 'broadcast', got {self.op!r}"
            )
        object.__setattr__(self, "levels", tuple(self.levels))
        for schedule in self.levels:
            schedule.validated(self.op)

    @property
    def k(self) -> int:
        """Number of scheduled hierarchy levels."""
        return len(self.levels)

    def level(self, level: int) -> LevelSchedule:
        """The schedule of hierarchy level ``level`` (1-based)."""
        if not 1 <= level <= self.k:
            raise CollectiveError(
                f"level {level} out of range for a k={self.k} plan"
            )
        return self.levels[level - 1]

    @property
    def key(self) -> str:
        """Canonical compact form, e.g. ``gather:flat/2|binomial``."""
        return f"{self.op}:" + "|".join(s.key for s in self.levels)

    @property
    def is_default(self) -> bool:
        """Whether this plan reproduces the paper's hand schedule."""
        return self == default_plan(self.op, self.k)

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "op": self.op,
            "levels": [s.to_dict() for s in self.levels],
        }

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "SchedulePlan":
        return cls(
            op=str(data["op"]),
            levels=tuple(
                LevelSchedule.from_dict(entry) for entry in data["levels"]
            ),
        )

    def __str__(self) -> str:
        return self.key


def default_plan(op: str, k: int) -> SchedulePlan:
    """The paper's hand schedule as a plan.

    Gather: flat single-step fan-in at every level (Sections 4.2–4.3).
    Broadcast: two-phase at every level (the paper's recommended
    scheme, and the plan-less default of ``run_broadcast``).
    """
    algorithm = "flat" if op == "gather" else "two"
    return SchedulePlan(op, tuple(LevelSchedule(algorithm) for _ in range(k)))
