"""Auto-tuned collective schedules (Barchet-Estefanel-style pipeline).

``repro.tuning`` turns the hand-picked gather/broadcast schedules into
a search: enumerate an expanded per-level schedule space
(:mod:`~repro.tuning.space`), price the whole grid analytically with
the vectorized cost kernels, DES-validate the analytic shortlist on the
macro engine, and memoize the winning
:class:`~repro.tuning.plan.SchedulePlan` in a persistent
:class:`~repro.tuning.cache.DecisionCache` keyed by
``(op, topology-hash, n, item_bytes)`` — repeated traffic resolves a
tuned schedule in O(1) with zero enumeration.

The heavy modules (:mod:`~repro.tuning.tuner`,
:mod:`~repro.tuning.cache`) import the collectives layer, which itself
imports :mod:`repro.model` — so they load lazily here to keep
``repro.model.kernels`` → ``repro.tuning.plan`` cycle-free.
"""

from __future__ import annotations

import typing as t

from repro.tuning.plan import (
    BROADCAST_ALGORITHMS,
    GATHER_ALGORITHMS,
    LevelSchedule,
    SchedulePlan,
    binomial_rounds,
    default_plan,
    split_segments,
)
from repro.tuning.space import (
    DEFAULT_SEGMENTS,
    enumerate_plans,
    level_choices,
    space_size,
)

__all__ = [
    "BROADCAST_ALGORITHMS",
    "DEFAULT_SEGMENTS",
    "GATHER_ALGORITHMS",
    "LevelSchedule",
    "SchedulePlan",
    "binomial_rounds",
    "default_plan",
    "enumerate_plans",
    "level_choices",
    "space_size",
    "split_segments",
    "DecisionCache",
    "TunedDecision",
    "tune",
    "tuned_plan",
]

_LAZY = {
    "DecisionCache": ("repro.tuning.cache", "DecisionCache"),
    "TunedDecision": ("repro.tuning.tuner", "TunedDecision"),
    "tune": ("repro.tuning.tuner", "tune"),
    "tuned_plan": ("repro.tuning.tuner", "tuned_plan"),
}


def __getattr__(name: str) -> t.Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
