"""The per-process HBSPlib API.

An HBSP program is a generator function ``program(ctx, *args)`` run
once per level-0 processor.  Communication follows BSP semantics: a
message sent during a superstep is available to the destination only
after the next synchronisation (Section 3.2: "A message sent in one
super^i-step is guaranteed to be available to the destination machine
at the beginning of the next super^i-step").

All time-consuming calls are generators — use ``yield from``::

    def program(ctx):
        yield from ctx.compute(1000)
        yield from ctx.send(ctx.fastest_pid, data)
        yield from ctx.sync()
        for msg in ctx.messages():
            ...
"""

from __future__ import annotations

import typing as t

from repro.errors import SuperstepError
from repro.hbsplib.drma import GetRequest, PutRecord, apply_put, read_register
from repro.pvm.message import Message
from repro.sim.events import AllOf, Event

#: Reserved tag namespace for one-sided (DRMA) traffic; user tags must
#: stay below this.
_DRMA_BASE = 1 << 30
_TAG_PUT = _DRMA_BASE
_TAG_GET_REQUEST = _DRMA_BASE + 1
_TAG_GET_REPLY = _DRMA_BASE + 2


class GetHandle:
    """The pending result of a one-sided :meth:`HbspContext.get`.

    ``handle.value`` becomes available after the synchronisation that
    serviced the get (``ctx.sync(drma=True)``).
    """

    __slots__ = ("_value", "_ready")

    def __init__(self) -> None:
        self._value = None
        self._ready = False

    def _fulfill(self, value) -> None:
        self._value = value
        self._ready = True

    @property
    def ready(self) -> bool:
        """True once the servicing sync has completed."""
        return self._ready

    @property
    def value(self):
        """The fetched value (raises until the servicing sync ran)."""
        if not self._ready:
            raise SuperstepError(
                "get result read before the servicing sync(drma=True)"
            )
        return self._value

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.hbsplib.runtime import HbspRuntime
    from repro.pvm.task import Task

__all__ = ["HbspContext"]


class _NullPhase:
    """Shared no-op context manager for :meth:`HbspContext.phase`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: t.Any) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _PhaseSpan:
    """Records one "phase" span on the owning machine's track."""

    __slots__ = ("_ctx", "_tracer", "_name", "_args", "_start")

    def __init__(self, ctx: "HbspContext", tracer: t.Any, name: str, args: dict) -> None:
        self._ctx = ctx
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._ctx._ensure_step_span()
        self._start = self._ctx.task.now
        return self

    def __exit__(self, *exc_info: t.Any) -> bool:
        ctx = self._ctx
        self._tracer.add(
            "phase", self._name, group=ctx.runtime.obs_group,
            actor=ctx.machine_name, start=self._start, end=ctx.task.now,
            **self._args,
        )
        return False


class HbspContext:
    """The state and API of one HBSP process.

    Attributes
    ----------
    pid:
        This process's id — the global index of its machine (level-0
        ``j``, so pid ``j`` runs on ``M_{0,j}``).
    nprocs:
        Total number of processes (the paper's ``p`` = ``m_0``).
    """

    def __init__(self, runtime: "HbspRuntime", task: "Task", pid: int) -> None:
        self.runtime = runtime
        self.task = task
        self.pid = pid
        self.nprocs = runtime.nprocs
        self.superstep = 0
        self._available: list[Message] = []
        self._pending: list[Event] = []
        #: Per-superstep cumulative marks appended at every sync:
        #: (end_time, barrier_wait, sent_msgs, sent_bytes, recv_msgs,
        #: recv_bytes) — the raw material for obs.accounting.
        self._step_marks: list[tuple[float, float, int, int, int, int]] = []
        self._step_span: t.Any | None = None
        self._wait = 0.0
        self._finished = False
        self._registers: dict[str, t.Any] = {}
        self._get_handles: dict[int, GetHandle] = {}
        self._next_get_id = 0

    # -- enquiry (BSPlib: bsp_pid / bsp_nprocs / bsp_time) ---------------------
    @property
    def time(self) -> float:
        """Current virtual time (``bsp_time``)."""
        return self.task.now

    @property
    def machine_name(self) -> str:
        """Name of the machine this process runs on."""
        return self.task.host.spec.name

    # -- heterogeneity primitives ----------------------------------------------
    @property
    def fastest_pid(self) -> int:
        """Pid of the fastest processor (``P_f``; the default root)."""
        return self.runtime.fastest_pid

    @property
    def slowest_pid(self) -> int:
        """Pid of the slowest processor (``P_s``)."""
        return self.runtime.slowest_pid

    def rank_of(self, pid: int | None = None) -> int:
        """Speed rank of ``pid`` (0 = fastest), from benchmark scores."""
        return self.runtime.rank_of(self.pid if pid is None else pid)

    def fraction_of(self, pid: int | None = None) -> float:
        """The model's ``c_{0,pid}`` workload fraction."""
        return self.runtime.fraction_of(self.pid if pid is None else pid)

    def partition(self, n: int, *, balanced: bool = True) -> list[int]:
        """Per-pid item counts for ``n`` items (balanced or equal)."""
        return self.runtime.partition(n, balanced=balanced)

    def coordinator_pid(self, level: int) -> int:
        """Pid coordinating this process's level-``level`` ancestor cluster."""
        return self.runtime.coordinator_pid(self.pid, level)

    def cluster_members(self, level: int) -> tuple[int, ...]:
        """Pids in this process's level-``level`` ancestor cluster."""
        return self.runtime.cluster_members(self.pid, level)

    def is_coordinator(self, level: int) -> bool:
        """True if this process coordinates its level-``level`` cluster."""
        return self.coordinator_pid(level) == self.pid

    # -- communication -------------------------------------------------------------
    def send(
        self,
        pid: int,
        payload: t.Any,
        *,
        tag: int = 0,
        nbytes: int | None = None,
    ) -> t.Generator[Event, t.Any, None]:
        """Buffered send (``bsp_send``); available to ``pid`` after sync.

        A generator: charges pack + injection time on this machine.
        """
        self._check_live()
        if not 0 <= pid < self.nprocs:
            raise SuperstepError(
                f"send to pid {pid} outside process group [0, {self.nprocs})"
            )
        macro = self.runtime.macro
        if macro is not None:
            # Macro-event path: pure arithmetic, no simulated events.
            macro.send(self, pid, payload, tag, nbytes)
            return
        delivery = yield from self.task.send(
            self.runtime.tid_of(pid), payload, tag=tag, nbytes=nbytes
        )
        self._pending.append(delivery)

    def sync(
        self, level: int | None = None, *, drma: bool = False
    ) -> t.Generator[Event, t.Any, None]:
        """Barrier synchronisation ending the current superstep.

        ``level=None`` (or ``k``) synchronises the whole machine,
        charging the root's ``L``; ``level=i`` synchronises only this
        process's level-``i`` ancestor cluster, charging that cluster's
        ``L_{i,j}`` — the cluster-scoped barrier of a super^i-step.

        On return, every message sent to this process before its
        sender entered the same barrier is available via
        :meth:`messages`, and one-sided puts have been applied to the
        destination registers.

        ``drma=True`` additionally services outstanding :meth:`get`
        requests: an internal reply round runs inside the sync, which
        charges one extra barrier ``L`` — every process of the barrier
        group must pass the same flag (the usual uniform-schedule
        rule).
        """
        self._check_live()
        self._ensure_step_span()
        yield from self._barrier_round(level)
        if drma:
            # Serve get requests captured by the first round: read the
            # end-of-superstep register values and reply.
            for message in self._take_drma(_TAG_GET_REQUEST):
                get_id, request = message.payload
                value = read_register(self._registers, request)
                yield from self.send(
                    request.requester, (get_id, value), tag=_TAG_GET_REPLY
                )
            yield from self._barrier_round(level)
            for message in self._take_drma(_TAG_GET_REPLY):
                get_id, value = message.payload
                self._get_handles.pop(get_id)._fulfill(value)
        task = self.task
        marks = self._step_marks
        now = task.now
        marks.append((
            now, self._wait, task.sent_messages, task.sent_bytes,
            task.received_messages, task.received_bytes,
        ))
        self._wait = 0.0
        tracer = self.runtime.obs_tracer
        if tracer is not None and self._step_span is not None:
            self._step_span.args["level"] = (
                self.runtime.tree.k if level is None else level
            )
            tracer.finish(self._step_span, now)
            self._step_span = None
        self.superstep += 1

    def _barrier_round(self, level: int | None) -> t.Generator[Event, t.Any, None]:
        """One flush + barrier + collect round (internal)."""
        macro = self.runtime.macro
        if macro is not None:
            # Macro-event path: one boundary event per cycle does the
            # flush / release / collect bookkeeping arithmetically;
            # only the DRMA put application below is shared.
            yield from macro.barrier_round(self, level)
            for message in self._take_drma(_TAG_PUT):
                apply_put(self._registers, message.payload)
            return
        # 1. Superstep communication must complete before the barrier
        #    can release: wait for our own sends to be delivered.
        if self._pending:
            pending, self._pending = self._pending, []
            yield AllOf(self.runtime.engine, pending, name=f"pid{self.pid}.flush")
        # 2. Cluster-scoped barrier (charges L).
        barrier = self.runtime.barrier_for(self.pid, level)
        start = self.task.now
        yield barrier.wait()
        now = self.task.now
        self._wait += now - start
        trace = self.runtime.vm.trace
        if trace.enabled:
            trace.emit(
                now, "sync", f"pid{self.pid}",
                now - start, level=level, superstep=self.superstep,
            )
        tracer = self.runtime.obs_tracer
        if tracer is not None:
            tracer.add(
                "barrier", barrier.name, group=self.runtime.obs_group,
                actor=self.machine_name, start=start, end=now,
                superstep=self.superstep,
            )
        # 3. BSP delivery: everything in the mailbox becomes available;
        #    one-sided puts are applied instead of queued.
        yield from self._collect()
        for message in self._take_drma(_TAG_PUT):
            apply_put(self._registers, message.payload)

    def _take_drma(self, tag: int) -> list[Message]:
        """Remove and return collected DRMA messages with ``tag``."""
        taken = [m for m in self._available if m.tag == tag]
        self._available = [m for m in self._available if m.tag != tag]
        return taken

    def _collect(self) -> t.Generator[Event, t.Any, None]:
        task = self.task
        host = task.host
        unpack_time = host.spec.unpack_time
        trace = self.runtime.vm.trace
        available = self._available
        while True:
            message = task.try_recv()
            if message is None:
                break
            unpack = unpack_time(message.nbytes)
            if unpack > 0:
                start = task.now
                yield from host.cpu.occupy(unpack)
                if trace.enabled:
                    trace.emit(
                        task.now, "unpack", task.name,
                        task.now - start, nbytes=message.nbytes, src=message.src,
                    )
            available.append(message)

    def messages(
        self,
        source: int | None = None,
        tag: int | None = None,
    ) -> list[Message]:
        """Take delivered messages (``bsp_move``), oldest first.

        ``source`` filters by sender *pid*.  Taken messages are removed
        from the queue.
        """
        src_tid = None if source is None else self.runtime.tid_of(source)
        taken: list[Message] = []
        kept: list[Message] = []
        for m in self._available:
            (taken if m.matches(src_tid, tag) else kept).append(m)
        self._available = kept
        return taken

    def peek_messages(self) -> tuple[Message, ...]:
        """Delivered-but-untaken messages (non-destructive)."""
        return tuple(self._available)

    def pid_of_message(self, message: Message) -> int:
        """Sender pid of a delivered message."""
        return self.runtime.pid_of(message.src)

    # -- one-sided operations (BSPlib DRMA: bsp_push_reg / bsp_put / bsp_get)
    def register(self, name: str, value: t.Any) -> None:
        """Register a variable for one-sided access (``bsp_push_reg``).

        All processes that will be targeted must register the same
        name; registration is local and free.
        """
        self._check_live()
        self._registers[name] = value

    def deregister(self, name: str) -> None:
        """Remove a registered variable (``bsp_pop_reg``)."""
        if name not in self._registers:
            raise SuperstepError(f"{name!r} is not registered on pid {self.pid}")
        del self._registers[name]

    def register_value(self, name: str) -> t.Any:
        """Read the local copy of a registered variable."""
        if name not in self._registers:
            raise SuperstepError(f"{name!r} is not registered on pid {self.pid}")
        return self._registers[name]

    def put(
        self,
        pid: int,
        name: str,
        value: t.Any,
        *,
        offset: int | None = None,
    ) -> t.Generator[Event, t.Any, None]:
        """One-sided write (``bsp_put``): after the next sync, ``pid``'s
        register ``name`` holds ``value`` (or, with ``offset``, has the
        array slice starting there overwritten).

        Buffered-on-source semantics: the value is captured now; the
        destination observes it only after the barrier.
        """
        self._check_live()
        import numpy as np

        captured = value.copy() if isinstance(value, np.ndarray) else value
        record = PutRecord(src_pid=self.pid, name=name, value=captured, offset=offset)
        # PutRecord is opaque to the payload sizer; charge the value's
        # wire size (plus a small header) explicitly.
        from repro.pvm.message import payload_nbytes

        yield from self.send(
            pid, record, tag=_TAG_PUT, nbytes=payload_nbytes(captured) + 16
        )

    def get(
        self,
        pid: int,
        name: str,
        *,
        offset: int | None = None,
        length: int | None = None,
    ) -> t.Generator[Event, t.Any, GetHandle]:
        """One-sided read (``bsp_get``): returns a :class:`GetHandle`
        whose ``.value`` is ``pid``'s register ``name`` as of the end
        of this superstep.  The handle is fulfilled by the next
        ``sync(drma=True)``.
        """
        self._check_live()
        get_id = self._next_get_id
        self._next_get_id += 1
        handle = GetHandle()
        self._get_handles[get_id] = handle
        request = (get_id, GetRequest(self.pid, name, offset, length))
        yield from self.send(pid, request, tag=_TAG_GET_REQUEST)
        return handle

    # -- computation -------------------------------------------------------------------
    def compute(self, work: float) -> t.Generator[Event, t.Any, None]:
        """Perform ``work`` CPU work units of local computation."""
        self._check_live()
        macro = self.runtime.macro
        if macro is not None:
            macro.compute(self, work)
            return
        yield from self.task.compute(work)

    # -- observability ----------------------------------------------------------------
    def phase(self, name: str, **args: t.Any) -> t.ContextManager[t.Any]:
        """A named span over a program region on this machine's track.

        The collectives wrap their per-level phases (local work, sends,
        barrier) with this so exported traces show algorithm structure,
        not just raw message timing.  A shared no-op context manager is
        returned unless span tracing is active, so the disabled cost is
        one attribute read.
        """
        tracer = self.runtime.obs_tracer
        if tracer is None:
            return _NULL_PHASE
        return _PhaseSpan(self, tracer, name, args)

    def _ensure_step_span(self) -> None:
        """Open this superstep's span on the first traced event.

        The span starts at the previous sync's end (the superstep
        boundary) and stays open until :meth:`sync` finishes it, so
        barrier and phase spans recorded in between nest under it.
        Lazy opening means the final partial superstep — work after
        the last sync — never leaves a dangling open span.
        """
        tracer = self.runtime.obs_tracer
        if tracer is None or self._step_span is not None:
            return
        marks = self._step_marks
        self._step_span = tracer.begin(
            "superstep", f"superstep {self.superstep}",
            group=self.runtime.obs_group, actor=self.machine_name,
            start=marks[-1][0] if marks else 0.0,
        )

    # -- internal ----------------------------------------------------------------------
    def _check_live(self) -> None:
        if self._finished:
            raise SuperstepError(
                f"pid {self.pid} used its context after the program finished"
            )

    def __repr__(self) -> str:
        return (
            f"<HbspContext pid={self.pid}/{self.nprocs} on {self.machine_name} "
            f"superstep={self.superstep}>"
        )
