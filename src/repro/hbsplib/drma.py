"""One-sided (DRMA) operations: BSPlib-style ``put`` and ``get``.

BSPlib programs use *registered variables* for direct remote memory
access: ``bsp_put`` writes into a peer's registered variable at the
end of the superstep; ``bsp_get`` reads a peer's variable as it was at
the end of the superstep, delivering before the next one starts.

Semantics implemented here (matching BSPlib's):

* ``put`` is buffered on the source: the value captured at call time
  is written into the destination's register *after* the barrier, so
  no process observes a torn superstep.  Concurrent puts to the same
  register are applied in (sender pid, call order) — deterministic.
* ``get`` captures the remote value as of the end of the superstep.
  It is implemented with an internal request/reply round *inside* the
  synchronisation, which charges one extra barrier ``L`` when any
  process issued a get — the real cost one-sided reads have on a
  message-passing substrate.

Registers hold whole Python values (commonly numpy arrays); partial
writes use the ``offset``/``length`` arguments for array registers.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import SuperstepError

__all__ = ["PutRecord", "GetRequest"]


@dataclasses.dataclass(frozen=True)
class PutRecord:
    """One buffered remote write (internal)."""

    src_pid: int
    name: str
    value: t.Any
    offset: int | None


@dataclasses.dataclass(frozen=True)
class GetRequest:
    """One pending remote read (internal)."""

    requester: int
    name: str
    offset: int | None
    length: int | None


def apply_put(registers: dict[str, t.Any], record: PutRecord) -> None:
    """Apply a buffered put to a register table."""
    if record.name not in registers:
        raise SuperstepError(
            f"put into unregistered variable {record.name!r} "
            f"(from pid {record.src_pid})"
        )
    if record.offset is None:
        registers[record.name] = record.value
        return
    target = registers[record.name]
    if not isinstance(target, np.ndarray):
        raise SuperstepError(
            f"offset put needs an array register, {record.name!r} is "
            f"{type(target).__name__}"
        )
    value = np.asarray(record.value)
    end = record.offset + value.size
    if record.offset < 0 or end > target.size:
        raise SuperstepError(
            f"put of {value.size} items at offset {record.offset} overflows "
            f"register {record.name!r} (size {target.size})"
        )
    target[record.offset : end] = value


def read_register(
    registers: dict[str, t.Any],
    request: GetRequest,
) -> t.Any:
    """Serve a get request against a register table."""
    if request.name not in registers:
        raise SuperstepError(
            f"get of unregistered variable {request.name!r} "
            f"(for pid {request.requester})"
        )
    value = registers[request.name]
    if request.offset is None:
        if isinstance(value, np.ndarray):
            return value.copy()
        return value
    if not isinstance(value, np.ndarray):
        raise SuperstepError(
            f"offset get needs an array register, {request.name!r} is "
            f"{type(value).__name__}"
        )
    length = request.length if request.length is not None else value.size - request.offset
    end = request.offset + length
    if request.offset < 0 or end > value.size:
        raise SuperstepError(
            f"get of {length} items at offset {request.offset} overflows "
            f"register {request.name!r} (size {value.size})"
        )
    return value[request.offset : end].copy()
