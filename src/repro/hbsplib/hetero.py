"""Heterogeneity-aware workload partitioning helpers.

The paper's design rule (Section 4.1): "faster machines should receive
more data items than slower machines".  These helpers turn speed
information into per-processor item counts.
"""

from __future__ import annotations

import typing as t

from repro.bytemark.ranking import partition_items
from repro.errors import PartitionError
from repro.util.validation import check_positive_int

__all__ = ["equal_partition", "proportional_partition"]


def equal_partition(n: int, p: int) -> list[int]:
    """The homogeneous baseline: ``n`` items split as evenly as possible.

    Processor ``j`` receives ``n // p`` items plus one of the first
    ``n % p`` leftovers, so counts differ by at most one and sum to
    ``n`` exactly.
    """
    p = check_positive_int("p", p)
    if n < 0:
        raise PartitionError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, p)
    return [base + (1 if j < extra else 0) for j in range(p)]


def proportional_partition(n: int, fractions: t.Sequence[float]) -> list[int]:
    """Balanced workloads: counts proportional to per-processor fractions.

    ``fractions[j]`` is the model's ``c_{0,j}``; counts conserve ``n``
    exactly (largest-remainder rounding) and every count is within one
    item of ``c_j · n``.
    """
    named = {str(j): float(f) for j, f in enumerate(fractions)}
    part = partition_items(n, named)
    return [part[str(j)] for j in range(len(fractions))]
