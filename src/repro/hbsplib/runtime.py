"""The HBSPlib runtime: program execution over the PVM substrate.

:class:`HbspRuntime` owns the simulated machine (a
:class:`~repro.pvm.VirtualMachine` over the cluster topology), one
barrier per cluster node of the HBSP tree (charging that cluster's
``L_{i,j}``), and the speed/fraction tables derived from benchmark
scores.  :meth:`HbspRuntime.run` spawns one process per level-0
machine and returns an :class:`HbspResult` with per-pid return values
and the simulated makespan.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.bytemark.ranking import fractions_from_scores, ranking_from_scores
from repro.bytemark.suite import true_scores
from repro.cluster.topology import ClusterTopology
from repro.errors import HbspError
from repro.hbsplib.context import HbspContext
from repro.hbsplib.hetero import equal_partition, proportional_partition
from repro.model.params import HBSPParams, calibrate
from repro.model.tree import HBSPNode, HBSPTree
from repro.obs.observe import current_observation
from repro.pvm.vm import VirtualMachine
from repro.sim.barrier import Barrier
from repro.sim.trace import Trace

__all__ = ["HbspResult", "HbspRuntime"]

#: An HBSP program: a generator function of (ctx, *args, **kwargs).
Program = t.Callable[..., t.Generator]


@dataclasses.dataclass
class HbspResult:
    """Outcome of one HBSP program execution.

    Attributes
    ----------
    values:
        Per-pid return values of the program.
    time:
        Simulated makespan in virtual seconds (the experiment metric —
        the paper's ``T_A``/``T_B``).
    supersteps:
        Largest number of synchronisations performed by any process.
    trace:
        Structured trace (enabled via ``HbspRuntime(trace=True)``).
    """

    values: dict[int, t.Any]
    time: float
    supersteps: int
    trace: Trace

    def __repr__(self) -> str:
        return (
            f"HbspResult(time={self.time:.6g}, supersteps={self.supersteps}, "
            f"pids={len(self.values)})"
        )


class HbspRuntime:
    """Executes HBSP programs on a simulated heterogeneous machine.

    Parameters
    ----------
    topology:
        The cluster to run on (normalised internally; pids are the
        machine indices of the normalised topology, which preserve the
        original declaration order).
    scores:
        Benchmark scores per machine name, used for ranks and the
        ``c_j`` fractions.  Defaults to the machines' true speeds;
        pass :func:`repro.bytemark.simulate_scores` output for the
        paper's noisy-measurement setting.
    trace:
        Enable structured tracing (costs simulation speed).
    injector:
        Optional fresh :class:`~repro.faults.Injector` attaching a
        fault plan (slowdowns, pauses, link degradation, message
        faults, background load) to the simulated machine.
    delivery:
        Default :class:`~repro.pvm.DeliveryPolicy` for every send —
        per-send timeout with bounded exponential-backoff retries, or
        explicit at-most-once.  ``None`` keeps the classic
        fire-and-forget fast path.
    macro:
        Macro-event fast path selection (:mod:`repro.sim.macro`).
        ``None`` (default) auto-engages it for fault-free, untraced
        runs of :func:`~repro.sim.macro.macro_safe` programs — the
        result is bit-identical, only faster.  ``False`` forces the
        object-event path; ``True`` insists on the macro path and
        raises if the machine or program cannot take it.

    A fresh runtime (with a fresh virtual clock) should be used per
    measured program run; :meth:`run` enforces this.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        scores: t.Mapping[str, float] | None = None,
        trace: bool = False,
        serialize_nic: bool = True,
        injector: t.Any | None = None,
        delivery: t.Any | None = None,
        macro: bool | None = None,
    ) -> None:
        self.tree = HBSPTree(topology)
        self.topology = self.tree.topology  # normalised
        # Pick up an active observation (repro.obs.observe): span
        # tracing forces the structured trace on so message timing can
        # be converted to spans after the run.  Pure recording — the
        # simulated times are unaffected.
        observation = current_observation()
        if observation is not None and observation.tracer.enabled:
            self.obs_tracer: t.Any | None = observation.tracer
            self.obs_group = observation.take_group()
            trace = True
        else:
            self.obs_tracer = None
            self.obs_group = ""
        self.vm = VirtualMachine(
            self.topology, trace=trace, serialize_nic=serialize_nic,
            injector=injector, delivery=delivery,
        )
        self.engine = self.vm.engine
        if self.obs_tracer is not None:
            self.engine.obs_tracer = self.obs_tracer
            self.engine.obs_group = self.obs_group
        self.scores = dict(scores) if scores is not None else true_scores(self.topology)
        missing = [m.name for m in self.topology.machines if m.name not in self.scores]
        if missing:
            raise HbspError(f"scores missing for machines: {missing}")
        self.params: HBSPParams = calibrate(
            self.tree.source, scores=self.scores, tree=self.tree
        )
        self.nprocs = self.topology.num_machines

        name_ranking = ranking_from_scores(self.scores)
        self._rank = {
            self.topology.machine_id(name): rank
            for rank, name in enumerate(name_ranking)
        }
        fractions = fractions_from_scores(self.scores)
        self._fractions = [
            fractions[m.name] for m in self.topology.machines
        ]

        # One barrier per cluster node; parties = processors in the
        # subtree (every member arrives, the cost charged is L_{i,j}).
        self._barriers: dict[tuple[int, int], Barrier] = {}
        self._node_of_barrier: dict[tuple[int, int], HBSPNode] = {}
        #: (pid, level) -> ancestor node / barrier, for O(1) lookups on
        #: the per-superstep hot path (clusters are static per runtime).
        self._ancestor_of: dict[tuple[int, int], HBSPNode] = {}
        self._barrier_of: dict[tuple[int, int], Barrier] = {}
        self._schedule_cache: dict[t.Any, t.Any] = {}
        for node in self.tree.walk():
            if node.level >= 1:
                key = (node.level, node.index)
                barrier = Barrier(
                    self.engine,
                    parties=len(node.members),
                    cost=self.params.L_of(*key),
                    name=f"L{key}",
                )
                self._barriers[key] = barrier
                self._node_of_barrier[key] = node
                for pid in node.members:
                    self._ancestor_of[(pid, node.level)] = node
                    self._barrier_of[(pid, node.level)] = barrier

        self._contexts: list[HbspContext] = []
        self._ran = False
        self._macro_mode = macro
        #: The live MacroEngine while a macro-path run executes
        #: (contexts dispatch on this); ``None`` on the object path.
        self.macro: t.Any | None = None

    # -- lookup tables used by contexts -------------------------------------------
    @property
    def fastest_pid(self) -> int:
        """Pid with speed rank 0 (``P_f``)."""
        return min(self._rank, key=lambda pid: self._rank[pid])

    @property
    def slowest_pid(self) -> int:
        """Pid with the worst speed rank (``P_s``)."""
        return max(self._rank, key=lambda pid: self._rank[pid])

    def rank_of(self, pid: int) -> int:
        """Speed rank of ``pid`` (0 = fastest)."""
        return self._rank[pid]

    def fraction_of(self, pid: int) -> float:
        """Workload fraction ``c_{0,pid}``."""
        return self._fractions[pid]

    def partition(self, n: int, *, balanced: bool = True) -> list[int]:
        """Item counts per pid: proportional (balanced) or equal."""
        if balanced:
            return proportional_partition(n, self._fractions)
        return equal_partition(n, self.nprocs)

    def tid_of(self, pid: int) -> int:
        """PVM task id of process ``pid``."""
        return self._contexts[pid].task.tid

    def pid_of(self, tid: int) -> int:
        """Process id of PVM task ``tid``."""
        for ctx in self._contexts:
            if ctx.task.tid == tid:
                return ctx.pid
        raise HbspError(f"no process with tid {tid}")

    def barrier_for(self, pid: int, level: int | None) -> Barrier:
        """The barrier of ``pid``'s ancestor cluster at ``level``.

        ``level=None`` means the root (a global synchronisation).
        """
        if level is None:
            level = self.tree.k
        if not 1 <= level <= self.tree.k:
            raise HbspError(f"sync level must be in [1, {self.tree.k}], got {level}")
        barrier = self._barrier_of.get((pid, level))
        if barrier is None:
            raise HbspError(f"pid {pid} has no level-{level} ancestor cluster")
        return barrier

    def superstep_marks(
        self,
    ) -> tuple[tuple[tuple[float, float, int, int, int, int], ...], ...]:
        """Per-pid cumulative superstep marks (always recorded).

        ``marks[pid][s]`` is ``(end_time, barrier_wait, sent_msgs,
        sent_bytes, recv_msgs, recv_bytes)`` at pid's s-th sync — the
        raw material for :mod:`repro.obs.accounting`.
        """
        return tuple(tuple(ctx._step_marks) for ctx in self._contexts)

    def coordinator_pid(self, pid: int, level: int) -> int:
        """Coordinator of ``pid``'s ancestor cluster at ``level``."""
        if level == 0:
            return pid
        node = self._ancestor(pid, level)
        return node.coordinator

    def cluster_members(self, pid: int, level: int) -> tuple[int, ...]:
        """Members of ``pid``'s ancestor cluster at ``level``."""
        if level == 0:
            return (pid,)
        return self._ancestor(pid, level).members

    def _ancestor(self, pid: int, level: int) -> HBSPNode:
        node = self._ancestor_of.get((pid, level))
        if node is None:
            raise HbspError(f"pid {pid} has no level-{level} ancestor")
        return node

    # -- execution ---------------------------------------------------------------------
    def _macro_engages(self, program: Program) -> bool:
        """Decide the execution path for this run (see the ``macro``
        constructor parameter)."""
        capable = self.vm.macro_capable and self.obs_tracer is None
        safe = bool(getattr(program, "_macro_safe", False))
        if self._macro_mode is None:
            return capable and safe
        if not self._macro_mode:
            return False
        if not capable:
            raise HbspError(
                "macro=True needs a fault-free, untraced machine: no "
                "injector, delivery policy, tracer, or NIC-serialization "
                "ablation"
            )
        if not safe:
            raise HbspError(
                "macro=True needs a @macro_safe program (see repro.sim.macro)"
            )
        return True

    def run(
        self,
        program: Program,
        *args: t.Any,
        per_pid_args: t.Sequence[tuple] | None = None,
        **kwargs: t.Any,
    ) -> HbspResult:
        """Execute ``program`` on every processor and simulate to completion.

        ``program(ctx, *args, **kwargs)`` runs once per pid; with
        ``per_pid_args``, process ``j`` instead receives
        ``program(ctx, *per_pid_args[j], **kwargs)``.
        """
        if self._ran:
            raise HbspError(
                "this runtime already executed a program; create a fresh "
                "HbspRuntime per measured run (the virtual clock is not reset)"
            )
        self._ran = True
        if per_pid_args is not None and len(per_pid_args) != self.nprocs:
            raise HbspError(
                f"per_pid_args must have {self.nprocs} entries, got {len(per_pid_args)}"
            )

        def wrapper(task, pid: int):  # generator function for the PVM task
            ctx = self._contexts[pid]
            call_args = per_pid_args[pid] if per_pid_args is not None else args
            value = yield from program(ctx, *call_args, **kwargs)
            if self.macro is not None:
                # Stretch the shared clock to this task's trailing
                # local time before the process completion lands.
                yield from self.macro.finish(ctx)
            ctx._finished = True
            return value

        # Create contexts first (tid_of needs them all before any send).
        for pid in range(self.nprocs):
            task = self.vm.spawn(
                wrapper, pid, pid, name=f"pid{pid}@{self.topology.machines[pid].name}"
            )
            self._contexts.append(HbspContext(self, task, pid))

        if self._macro_engages(program):
            from repro.sim.macro import MacroEngine

            self.macro = MacroEngine(self)

        time = self.vm.run()
        values = {
            pid: ctx.task.process.value for pid, ctx in enumerate(self._contexts)
        }
        supersteps = max((ctx.superstep for ctx in self._contexts), default=0)
        return HbspResult(
            values=values, time=time, supersteps=supersteps, trace=self.vm.trace
        )
