"""HBSPlib: a BSPlib-style programming library for HBSP^k machines.

The paper implements its collectives with "the HBSP Programming Library
(HBSPlib), which incorporates many of the functions (message passing,
synchronization, enquiry) contained in BSPlib, ... written on top of
PVM, ... [with] primitives that allow the programmer to take advantage
of the heterogeneity of the underlying system" (Section 5.1).

This package is that library on the simulated substrate:

* :class:`HbspRuntime` — spawns one process per level-0 machine and
  executes superstep programs, charging the model's ``L`` costs at
  every (cluster-scoped) barrier;
* :class:`HbspContext` — the per-process API: buffered ``send``,
  ``sync`` (BSP message-availability semantics), ``messages``,
  ``compute``, enquiry (pid / nprocs / time), and heterogeneity
  primitives (speed ranks, fastest/slowest pid, proportional
  workload partitions, cluster/coordinator navigation);
* :mod:`repro.hbsplib.hetero` — standalone workload-partition helpers.
"""

from repro.hbsplib.context import GetHandle, HbspContext
from repro.hbsplib.runtime import HbspResult, HbspRuntime
from repro.hbsplib.hetero import equal_partition, proportional_partition

__all__ = [
    "GetHandle",
    "HbspContext",
    "HbspResult",
    "HbspRuntime",
    "equal_partition",
    "proportional_partition",
]
