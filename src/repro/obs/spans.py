"""Hierarchical span tracing keyed on simulated (or wall) time.

A :class:`Span` is one named interval on a *track*: the pair
``(group, actor)``.  Groups partition spans into independent timelines
(one simulated run, or the harness itself), actors are the tracks
inside a group (one per machine, plus ``"engine"``/``"experiments"``).
The Chrome-trace exporter maps groups to trace *processes* and actors
to *threads*, which is exactly how ``chrome://tracing``/Perfetto lay
tracks out.

Two APIs:

* explicit-time — :meth:`Tracer.add` / :meth:`Tracer.begin` +
  :meth:`Tracer.finish` — used by the simulation layers, which know
  their own virtual clock;
* clocked — the :meth:`Tracer.span` context manager and
  :meth:`Tracer.wrap` decorator — for harness code timing itself on
  wall time.  The CLI exporters never record these: shipped traces
  carry only simulated time, so identical runs stay bit-identical.

Mirroring ``sim.trace.Trace``, a disabled tracer is a cheap no-op:
hot paths guard on :attr:`Tracer.enabled` (one attribute read) and
every method also no-ops defensively when disabled.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import time
import typing as t

__all__ = ["Span", "Tracer", "NULL_TRACER"]


@dataclasses.dataclass(slots=True)
class Span:
    """One traced interval.

    ``end`` is ``None`` while the span is open; ``parent_id`` links to
    the innermost enclosing span on the same ``(group, actor)`` track.
    """

    span_id: int
    group: str
    actor: str
    category: str
    name: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    args: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Interval length (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """An append-only span recorder with per-track open-span stacks."""

    __slots__ = ("enabled", "spans", "clock", "group_labels", "_stacks", "_next_id")

    def __init__(
        self,
        enabled: bool = True,
        *,
        clock: t.Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        #: All recorded spans, in completion order for `add`, begin
        #: order for `begin`.
        self.spans: list[Span] = []
        #: Default clock for the context-manager/decorator API.
        self.clock = clock
        #: Optional display names per group (e.g. the outcome name a
        #: run acquires only after it finished).
        self.group_labels: dict[str, str] = {}
        self._stacks: dict[tuple[str, str], list[Span]] = {}
        self._next_id = 0

    # -- explicit-time API ---------------------------------------------------
    def begin(
        self,
        category: str,
        name: str,
        *,
        group: str,
        actor: str,
        start: float,
        **args: t.Any,
    ) -> Span | None:
        """Open a span; returns ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        stack = self._stacks.setdefault((group, actor), [])
        parent = stack[-1].span_id if stack else None
        span = self._make(category, name, group, actor, start, None, parent, args)
        stack.append(span)
        return span

    def finish(self, span: Span | None, end: float) -> None:
        """Close a span opened by :meth:`begin` (no-op for ``None``)."""
        if span is None or not self.enabled:
            return
        span.end = end
        stack = self._stacks.get((span.group, span.actor))
        if stack and stack[-1] is span:
            stack.pop()

    def add(
        self,
        category: str,
        name: str,
        *,
        group: str,
        actor: str,
        start: float,
        end: float,
        **args: t.Any,
    ) -> Span | None:
        """Record a complete span in one call (the common case)."""
        if not self.enabled:
            return None
        stack = self._stacks.get((group, actor))
        parent = None
        if stack:
            # Parent under the innermost open span that encloses us.
            for open_span in reversed(stack):
                if open_span.start <= start:
                    parent = open_span.span_id
                    break
        return self._make(category, name, group, actor, start, end, parent, args)

    def _make(
        self,
        category: str,
        name: str,
        group: str,
        actor: str,
        start: float,
        end: float | None,
        parent: int | None,
        args: dict[str, t.Any],
    ) -> Span:
        span = Span(self._next_id, group, actor, category, name, start, end, parent, args)
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- clocked API ---------------------------------------------------------
    @contextlib.contextmanager
    def span(
        self,
        category: str,
        name: str,
        *,
        group: str = "harness",
        actor: str = "main",
        **args: t.Any,
    ) -> t.Iterator[Span | None]:
        """Context manager recording a span on the tracer's clock."""
        if not self.enabled:
            yield None
            return
        opened = self.begin(category, name, group=group, actor=actor,
                            start=self.clock(), **args)
        try:
            yield opened
        finally:
            self.finish(opened, self.clock())

    def wrap(
        self,
        category: str,
        name: str | None = None,
        *,
        group: str = "harness",
        actor: str = "main",
    ) -> t.Callable:
        """Decorator recording one span per call of the wrapped function."""

        def decorate(fn: t.Callable) -> t.Callable:
            label = name if name is not None else fn.__name__

            @functools.wraps(fn)
            def wrapper(*fargs: t.Any, **fkwargs: t.Any):
                if not self.enabled:
                    return fn(*fargs, **fkwargs)
                with self.span(category, label, group=group, actor=actor):
                    return fn(*fargs, **fkwargs)

            return wrapper

        return decorate

    # -- queries -------------------------------------------------------------
    def filter(
        self,
        category: str | None = None,
        *,
        group: str | None = None,
        actor: str | None = None,
    ) -> list[Span]:
        """Spans matching the given category / group / actor."""
        return [
            s
            for s in self.spans
            if (category is None or s.category == category)
            and (group is None or s.group == group)
            and (actor is None or s.actor == actor)
        ]

    def groups(self) -> list[str]:
        """Group names in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.group, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> t.Iterator[Span]:
        return iter(self.spans)

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans, enabled={self.enabled})"


#: Shared disabled tracer: every record call is a no-op.
NULL_TRACER = Tracer(enabled=False)
