"""Process-local metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is a plain in-process store with the
Prometheus data model (metric name + sorted label pairs -> sample) but
no daemon, no clock and no locks: the simulator is single-threaded per
process, and cross-process determinism is achieved by *merging
snapshots in submission order* (see ``repro.perf.executor``), never by
letting workers write to a shared registry.

Histogram bucket bounds are fixed per metric family (see
:data:`BUCKET_BOUNDS`), so two runs that observe the same values in
the same order produce byte-identical exports regardless of process
count or host.
"""

from __future__ import annotations

import typing as t
from bisect import bisect_left

__all__ = [
    "MetricsRegistry",
    "HistogramState",
    "METRIC_HELP",
    "BUCKET_BOUNDS",
    "DEFAULT_BOUNDS",
]

#: label pairs, already sorted by key: (("network", "lan"), ...)
Labels = tuple[tuple[str, str], ...]

#: Fallback bucket bounds (seconds-flavoured log scale).
DEFAULT_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)

#: Fixed, deterministic bucket bounds per histogram family.
BUCKET_BOUNDS: dict[str, tuple[float, ...]] = {
    "repro_barrier_wait_seconds": (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
    ),
    "repro_h_relation_bytes": (
        64.0, 1024.0, 8192.0, 65536.0, 524288.0, 4194304.0, 33554432.0,
    ),
    "repro_superstep_seconds": (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
    ),
    "repro_serve_latency_seconds": (
        1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
    ),
    "repro_serve_queue_depth": (
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    ),
}

#: name -> (prometheus type, help line) for every metric the stack emits.
METRIC_HELP: dict[str, tuple[str, str]] = {
    "repro_messages_sent_total": (
        "counter", "Messages sent over a network link, by network."),
    "repro_bytes_sent_total": (
        "counter", "Payload bytes sent over a network link, by network."),
    "repro_messages_dropped_total": (
        "counter", "Messages dropped by the fault injector."),
    "repro_messages_delayed_total": (
        "counter", "Messages delayed by the fault injector."),
    "repro_send_timeouts_total": (
        "counter", "Delivery-policy timer expiries (send not acked in time)."),
    "repro_send_retries_total": (
        "counter", "Retransmissions issued by the delivery policy."),
    "repro_sends_failed_total": (
        "counter", "Sends that exhausted the delivery policy's retry budget."),
    "repro_runs_total": (
        "counter", "Simulated collective/application runs observed."),
    "repro_supersteps_total": (
        "counter", "Supersteps executed across observed runs."),
    "repro_simulated_seconds_total": (
        "counter", "Total simulated makespan across observed runs."),
    "repro_experiments_total": (
        "counter", "Experiment invocations observed by the harness."),
    "repro_barrier_wait_seconds": (
        "histogram", "Per-machine barrier wait per superstep, by machine."),
    "repro_h_relation_bytes": (
        "histogram", "Per-superstep h-relation (max bytes in/out per machine)."),
    "repro_superstep_seconds": (
        "histogram", "Simulated duration of each observed superstep."),
    "repro_serve_requests_total": (
        "counter", "Requests offered to the serving front door, by kind."),
    "repro_serve_shed_total": (
        "counter", "Requests shed by admission control (queue full)."),
    "repro_serve_completed_total": (
        "counter", "Requests completed by the serving loop."),
    "repro_serve_batches_total": (
        "counter", "Batches dispatched onto topology slices."),
    "repro_serve_goodput": (
        "gauge", "Completed (SLO-conformant) requests per simulated second."),
    "repro_serve_queue_depth_max": (
        "gauge", "Peak admission-queue depth over the session."),
    "repro_serve_latency_seconds": (
        "histogram", "End-to-end request latency (arrival to completion)."),
    "repro_serve_queue_depth": (
        "histogram", "Admission-queue depth sampled at each admission."),
}


class HistogramState:
    """Mutable histogram sample: fixed bounds, cumulative at export."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        #: Per-bound non-cumulative counts; the +Inf bucket is implicit
        #: in ``count - sum(counts)``.
        self.counts = [0] * len(bounds)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # First bucket with value <= bound; past the last bound the
        # observation lands only in the implicit +Inf bucket.
        index = bisect_left(self.bounds, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs including the +Inf bucket."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def merge(self, other: "HistogramState") -> None:
        if other.bounds != self.bounds:  # pragma: no cover - config error
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms, keyed by labels."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[tuple[str, Labels], float] = {}
        self.gauges: dict[tuple[str, Labels], float] = {}
        self.histograms: dict[tuple[str, Labels], HistogramState] = {}

    # -- writes --------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, labels: Labels = ()) -> None:
        key = (name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        self.gauges[(name, labels)] = value

    def observe(self, name: str, value: float, labels: Labels = ()) -> None:
        key = (name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            bounds = BUCKET_BOUNDS.get(name, DEFAULT_BOUNDS)
            hist = self.histograms[key] = HistogramState(bounds)
        hist.observe(value)

    # -- reads ---------------------------------------------------------------
    def value(self, name: str, labels: Labels = ()) -> float:
        """Current counter value (0.0 when never incremented)."""
        return self.counters.get((name, labels), 0.0)

    def counter_sum(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def counters_snapshot(self) -> tuple[tuple[str, Labels, float], ...]:
        """Counters as a sorted, picklable/JSON-able tuple."""
        return tuple(
            (name, labels, value)
            for (name, labels), value in sorted(self.counters.items())
        )

    def merge_counters(
        self, snapshot: t.Iterable[tuple[str, Labels, float]]
    ) -> None:
        """Fold a :meth:`counters_snapshot` into this registry."""
        for name, labels, value in snapshot:
            self.inc(name, value, tuple(tuple(pair) for pair in labels))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (gauges: last write wins)."""
        self.merge_counters(other.counters_snapshot())
        for key, value in sorted(other.gauges.items()):
            self.gauges[key] = value
        for key, hist in sorted(other.histograms.items(), key=lambda kv: kv[0]):
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = HistogramState(hist.bounds)
            mine.merge(hist)

    def families(self) -> list[tuple[str, str, str]]:
        """Sorted ``(name, type, help)`` for every family with samples."""
        names: set[str] = set()
        names.update(name for name, _ in self.counters)
        names.update(name for name, _ in self.gauges)
        names.update(name for name, _ in self.histograms)
        out: list[tuple[str, str, str]] = []
        for name in sorted(names):
            mtype, help_text = METRIC_HELP.get(name, ("", ""))
            if not mtype:
                if any(n == name for n, _ in self.counters):
                    mtype = "counter"
                elif any(n == name for n, _ in self.gauges):
                    mtype = "gauge"
                else:
                    mtype = "histogram"
            out.append((name, mtype, help_text))
        return out

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )
