"""repro.obs — the unified observability layer.

Three coordinated pieces (see ``docs/observability.md``):

* :mod:`repro.obs.spans` — hierarchical span tracing on simulated (or
  wall) time, near-zero overhead when disabled;
* :mod:`repro.obs.metrics` — a process-local metrics registry with
  deterministic counters/gauges/fixed-bucket histograms;
* :mod:`repro.obs.accounting` — per-superstep simulated-vs-predicted
  cost ledgers joining the DES against the analytic HBSP^k model;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, Prometheus
  text format and a plain-text summary.

Typical use::

    from repro.obs import observe, chrome_trace, prometheus_text, summary

    with observe(spans=True) as obs:
        run_gather(ucf_testbed(8), 25600)
    print(summary(obs))
    Path("t.json").write_text(chrome_trace(obs.tracer))
    Path("m.prom").write_text(prometheus_text(obs.metrics))
"""

from repro.obs.accounting import (
    LedgerRow,
    MachineRow,
    RunObs,
    SuperstepLedger,
    collect_run_obs,
)
from repro.obs.export import chrome_trace, prometheus_text, runs_json, summary
from repro.obs.metrics import METRIC_HELP, MetricsRegistry
from repro.obs.observe import Observation, current_observation, observe
from repro.obs.spans import NULL_TRACER, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "METRIC_HELP",
    "RunObs",
    "LedgerRow",
    "MachineRow",
    "SuperstepLedger",
    "collect_run_obs",
    "Observation",
    "observe",
    "current_observation",
    "chrome_trace",
    "prometheus_text",
    "runs_json",
    "summary",
]
