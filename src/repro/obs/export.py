"""Exporters: Chrome trace-event JSON, Prometheus text, summary table.

* :func:`chrome_trace` — the ``trace_event`` JSON format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: one trace *process*
  per span group (one simulated run), one *thread* per actor (one track
  per machine), complete ("X") events with microsecond timestamps.
* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` + samples; histograms expand to cumulative
  ``_bucket``/``_sum``/``_count`` series).
* :func:`summary` — a plain-text roll-up: headline counters plus the
  per-superstep predicted-vs-simulated ledger across observed runs.

All three are pure functions of the observation state and emit
deterministic output (sorted metric families, first-seen span order),
so cold- and warm-cache runs export byte-identical text.
"""

from __future__ import annotations

import json
import math
import typing as t

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observe import Observation

__all__ = ["chrome_trace", "prometheus_text", "runs_json", "summary"]


# -- Chrome trace_event -------------------------------------------------------
def chrome_trace(tracer: Tracer) -> str:
    """Serialise a tracer's spans as Chrome ``trace_event`` JSON."""
    events: list[dict[str, t.Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for span in tracer.spans:
        pid = pids.get(span.group)
        if pid is None:
            pid = pids[span.group] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": tracer.group_labels.get(span.group, span.group)},
            })
        track = (span.group, span.actor)
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = sum(1 for g, _ in tids if g == span.group) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": span.actor},
            })
        end = span.start if span.end is None else span.end
        event: dict[str, t.Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if span.args:
            event["args"] = {key: _jsonable(value) for key, value in span.args.items()}
        events.append(event)
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, separators=(",", ":")
    )


def _jsonable(value: t.Any) -> t.Any:
    """Coerce span args to JSON-safe values (trace viewers are strict)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


# -- Prometheus text exposition ----------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in labels)
    return "{" + inner + "}"


def _sample_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _le_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(bound)


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, mtype, help_text in metrics.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        if mtype == "histogram":
            samples = sorted(
                (labels, hist)
                for (sample_name, labels), hist in metrics.histograms.items()
                if sample_name == name
            )
            for labels, hist in samples:
                for bound, cumulative in hist.cumulative():
                    bucket_labels = (*labels, ("le", _le_text(bound)))
                    lines.append(
                        f"{name}_bucket{_label_text(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(labels)} {_sample_value(hist.total)}"
                )
                lines.append(f"{name}_count{_label_text(labels)} {hist.count}")
            continue
        store = metrics.counters if mtype == "counter" else metrics.gauges
        for (sample_name, labels), value in sorted(store.items()):
            if sample_name == name:
                lines.append(f"{name}{_label_text(labels)} {_sample_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# -- run records (calibration input) -----------------------------------------
def runs_json(observation: "Observation", *, indent: int | None = None) -> str:
    """Serialise the observation's run records as calibration input.

    One :class:`~repro.obs.accounting.RunObs` JSON object per observed
    run, in observation order — exactly what ``repro calibrate --fit``
    and :func:`repro.calib.load_runs` consume.
    """
    return json.dumps(
        {
            "schema": "repro.obs.runs/1",
            "runs": [ledger.run.to_jsonable() for ledger in observation.ledgers],
        },
        indent=indent,
        separators=None if indent else (",", ":"),
    )


# -- plain-text summary -------------------------------------------------------
def summary(observation: "Observation", *, max_rows: int = 40) -> str:
    """Headline counters + the joined per-superstep ledger table."""
    from repro.util.tables import AsciiTable

    metrics = observation.metrics
    runs = int(metrics.value("repro_runs_total"))
    supersteps = int(metrics.value("repro_supersteps_total"))
    simulated = metrics.value("repro_simulated_seconds_total")
    parts = [
        "== observability summary ==",
        f"runs: {runs}   supersteps: {supersteps}   "
        f"simulated: {simulated:.6g}s   spans: {len(observation.tracer)}",
    ]
    if metrics.counters:
        counter_table = AsciiTable("counters", ["metric", "value"])
        for (name, labels), value in sorted(metrics.counters.items()):
            label_text = _label_text(labels)
            counter_table.add_row([f"{name}{label_text}", f"{value:g}"])
        parts.append(counter_table.render())
    ledger_rows = [
        (ledger, row) for ledger in observation.ledgers for row in ledger.rows
    ]
    if ledger_rows:
        table = AsciiTable(
            "per-superstep ledger (simulated vs predicted)",
            ["run", "step", "level", "predicted", "simulated", "sim/pred",
             "critical machine"],
        )
        for ledger, row in ledger_rows[:max_rows]:
            table.add_row([
                _truncate(ledger.run.name, 36),
                f"{row.step}: {_truncate(row.label, 28)}",
                "" if row.level is None else row.level,
                "" if row.predicted is None else f"{row.predicted:.6g}",
                f"{row.simulated:.6g}",
                "" if row.ratio is None else f"{row.ratio:.4g}",
                "" if row.critical is None else row.critical.machine,
            ])
        parts.append(table.render())
        if len(ledger_rows) > max_rows:
            parts.append(
                f"({len(ledger_rows) - max_rows} more superstep row(s) "
                f"across {len(observation.ledgers)} run(s) not shown)"
            )
        divergences = [
            ledger.divergence
            for ledger in observation.ledgers
            if ledger.divergence is not None and math.isfinite(ledger.divergence)
        ]
        if divergences:
            ordered = sorted(divergences)
            median = ordered[len(ordered) // 2]
            parts.append(
                f"divergence (sim/pred) over {len(divergences)} predicted "
                f"run(s): min {ordered[0]:.4g}, median {median:.4g}, "
                f"max {ordered[-1]:.4g}"
            )
    return "\n".join(parts)


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"
