"""The observation context: one bundle of tracer + metrics + ledgers.

Mirrors :func:`repro.perf.sweep`: ``observe()`` installs an
:class:`Observation` for its dynamic extent, and the runtime layers
pick it up through :func:`current_observation` — no parameter threading
through eight collectives and four experiment layers.

Determinism: metrics and ledgers are fed exclusively from the compact
:class:`~repro.obs.accounting.RunObs` records that ride inside
:class:`~repro.perf.job.SimResult`, merged by the sweep executor in
submission order.  Worker processes and the persistent disk cache
therefore produce byte-identical exports to a serial cold run.  Span
tracing (``spans=True``) additionally records full timelines, which
forces simulations inline into the observing process.
"""

from __future__ import annotations

import contextlib
import typing as t

from repro.obs.accounting import RunObs, SuperstepLedger, collect_run_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = ["Observation", "observe", "current_observation"]


class Observation:
    """Everything one observed extent accumulates.

    Attributes
    ----------
    tracer:
        The span tracer (disabled unless ``spans=True``).
    metrics:
        The aggregated metrics registry.
    ledgers:
        One :class:`SuperstepLedger` per observed run, in observation
        order (duplicated grid points appear once per occurrence).
    """

    def __init__(self, *, spans: bool = False) -> None:
        self.tracer = Tracer(enabled=spans)
        self.metrics = MetricsRegistry()
        self.ledgers: list[SuperstepLedger] = []
        self._groups = 0

    # -- group bookkeeping (chrome-trace processes) --------------------------
    def take_group(self) -> str:
        """A fresh span group id for one simulated run."""
        self._groups += 1
        return f"run{self._groups}"

    # -- feeding -------------------------------------------------------------
    def record_result(self, result: t.Any) -> None:
        """Fold one :class:`~repro.perf.job.SimResult` in (ledger + metrics)."""
        run = getattr(result, "obs", None)
        if run is not None:
            self.record_run(run)

    def record_run(self, run: RunObs) -> SuperstepLedger:
        """Fold one run's compact record into metrics and ledgers."""
        metrics = self.metrics
        metrics.merge_counters(run.counters)
        metrics.inc("repro_runs_total")
        metrics.inc("repro_supersteps_total", float(run.supersteps))
        metrics.inc("repro_simulated_seconds_total", run.time)
        ledger = SuperstepLedger(run)
        for row in ledger.rows:
            metrics.observe("repro_superstep_seconds", row.simulated)
            if row.critical is not None:
                metrics.observe("repro_h_relation_bytes", float(row.critical.h))
            for machine_row in row.machines:
                metrics.observe(
                    "repro_barrier_wait_seconds",
                    machine_row.wait,
                    labels=(("machine", machine_row.machine),),
                )
        self.ledgers.append(ledger)
        return ledger

    def ingest_outcome(self, outcome: t.Any, *, spans_only: bool = False) -> None:
        """Observe a finished outcome directly (the non-sweep path).

        ``spans_only=True`` skips metrics/ledgers — used by the sweep
        path, where those flow through the executor's deterministic
        merge instead.
        """
        if not spans_only:
            self.record_run(collect_run_obs(outcome))
        if self.tracer.enabled:
            self.ingest_spans(outcome)

    def ingest_spans(self, outcome: t.Any) -> None:
        """Convert a finished run's raw DES trace records into spans.

        Superstep/barrier/phase spans were already recorded live by the
        runtime (it saw this observation's tracer); this adds the
        message-timing records (pack/inject/drain/unpack/compute/...)
        under the same group, one track per machine.
        """
        if not self.tracer.enabled:
            return
        runtime = outcome.runtime
        group = getattr(runtime, "obs_group", "") or self.take_group()
        self.tracer.group_labels[group] = outcome.name
        machines = [m.name for m in runtime.topology.machines]
        for record in outcome.result.trace.records:
            if record.category == "sync":
                continue  # barrier spans are recorded live at sync time
            self.tracer.add(
                record.category,
                record.category,
                group=group,
                actor=_actor_track(record.actor, machines),
                start=record.time - record.duration,
                end=record.time,
                **dict(record.detail),
            )

    def __repr__(self) -> str:
        return (
            f"Observation({len(self.ledgers)} runs, {len(self.tracer)} spans, "
            f"{len(self.metrics)} metrics)"
        )


def _actor_track(actor: str, machines: t.Sequence[str]) -> str:
    """Map a raw trace actor to its machine track.

    Task names are ``pid<j>@<machine>``; bare ``pid<j>`` actors map
    through the pid; machine/network names pass through unchanged.
    """
    if "@" in actor:
        return actor.rsplit("@", 1)[1]
    if actor.startswith("pid"):
        try:
            return machines[int(actor[3:])]
        except (ValueError, IndexError):
            return actor
    return actor


#: The active observation installed by :func:`observe` (None = off).
_current: Observation | None = None


def current_observation() -> Observation | None:
    """The observation installed by the innermost active :func:`observe`."""
    return _current


@contextlib.contextmanager
def observe(*, spans: bool = False) -> t.Iterator[Observation]:
    """Install an :class:`Observation` for the dynamic extent.

    Runtimes constructed inside the block feed its metrics registry
    and ledgers; with ``spans=True`` they also record full span
    timelines (which disables the sweep pool for the extent — spans
    cannot cross process boundaries).
    """
    global _current
    previous = _current
    observation = Observation(spans=spans)
    _current = observation
    try:
        yield observation
    finally:
        _current = previous
