"""Superstep cost accounting: simulated vs. predicted, per machine.

The paper's whole validation method (Figs. 3/4) is comparing measured
collective times against the HBSP^k cost model; this module does the
same join *per superstep*: the runtime's always-on superstep marks
(cumulative end time, barrier wait and traffic counters per pid at
every ``sync``) are diffed into per-step, per-machine observations
(:class:`RunObs`), and :class:`SuperstepLedger` lines them up against
the analytic :class:`~repro.model.cost.CostLedger` steps, reporting
the ``simulated/predicted`` divergence and flagging the
max-``r_{i,j} * h_{i,j}`` *critical machine* the model says should
dominate the step's h-relation.

:class:`RunObs` is deliberately plain data (tuples of numbers and
strings): it pickles across the sweep pool and JSON-round-trips
through the persistent disk cache, so warm-cache runs reconstruct the
exact same ledgers as cold ones.

The marks themselves are path-independent: the macro-event engine
(:mod:`repro.sim.macro`) records the same cumulative
``(end_time, wait, traffic)`` tuples at every sync as the full
event-level simulation — bit-identical, not approximately — so every
ledger here is valid regardless of which path executed the run.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

__all__ = [
    "Mark",
    "RunObs",
    "LedgerRow",
    "MachineRow",
    "SuperstepLedger",
    "collect_run_obs",
]

#: One superstep mark: cumulative (end_time, barrier_wait, sent_msgs,
#: sent_bytes, recv_msgs, recv_bytes) for one pid at the end of a sync.
Mark = tuple[float, float, int, int, int, int]

_ZERO_MARK: Mark = (0.0, 0.0, 0, 0, 0, 0)


def _ratio(simulated: float, predicted: float | None) -> float | None:
    """Divergence ``simulated/predicted``.

    Exact agreement must report exactly ``1.0``: a fault-free run where
    DES and kernel both measure zero (or identical non-zero doubles)
    divides to 1.0 with no epsilon fudging.
    """
    if predicted is None:
        return None
    if simulated == predicted:
        return 1.0
    if predicted == 0.0:
        return math.inf
    return simulated / predicted


@dataclasses.dataclass(frozen=True)
class RunObs:
    """Compact, picklable observability record of one simulated run.

    Attributes
    ----------
    name:
        The outcome name (collective/app + configuration summary).
    machines:
        Machine name per pid.
    r:
        Per-pid slowness ``r_{0,j}`` from the calibrated parameters.
    marks:
        ``marks[pid]`` is that pid's cumulative :data:`Mark` per
        superstep.
    predicted:
        Analytic ledger steps as ``(label, level, w, gh, L)`` tuples
        (``None`` when the run has no prediction).
    counters:
        The run's metrics-counter snapshot (see
        :meth:`~repro.obs.metrics.MetricsRegistry.counters_snapshot`).
    time:
        Simulated makespan.
    predicted_time:
        Analytic total (``None`` without a prediction).
    supersteps:
        Synchronisations performed (max over pids).
    """

    name: str
    machines: tuple[str, ...]
    r: tuple[float, ...]
    marks: tuple[tuple[Mark, ...], ...]
    predicted: tuple[tuple[str, int, float, float, float], ...] | None
    counters: tuple[tuple[str, tuple[tuple[str, str], ...], float], ...]
    time: float
    predicted_time: float | None
    supersteps: int

    # -- JSON round-trip (disk cache) ---------------------------------------
    def to_jsonable(self) -> dict[str, t.Any]:
        """Plain-JSON representation (floats survive via repr)."""
        return {
            "name": self.name,
            "machines": list(self.machines),
            "r": list(self.r),
            "marks": [[list(mark) for mark in pid_marks] for pid_marks in self.marks],
            "predicted": (
                None
                if self.predicted is None
                else [list(step) for step in self.predicted]
            ),
            "counters": [
                [name, [list(pair) for pair in labels], value]
                for name, labels, value in self.counters
            ],
            "time": self.time,
            "predicted_time": self.predicted_time,
            "supersteps": self.supersteps,
        }

    @classmethod
    def from_jsonable(cls, data: t.Mapping[str, t.Any]) -> "RunObs":
        """Inverse of :meth:`to_jsonable`; raises on malformed input."""
        predicted = data["predicted"]
        return cls(
            name=str(data["name"]),
            machines=tuple(str(m) for m in data["machines"]),
            r=tuple(float(r) for r in data["r"]),
            marks=tuple(
                tuple(
                    (
                        float(m[0]), float(m[1]),
                        int(m[2]), int(m[3]), int(m[4]), int(m[5]),
                    )
                    for m in pid_marks
                )
                for pid_marks in data["marks"]
            ),
            predicted=(
                None
                if predicted is None
                else tuple(
                    (str(s[0]), int(s[1]), float(s[2]), float(s[3]), float(s[4]))
                    for s in predicted
                )
            ),
            counters=tuple(
                (
                    str(name),
                    tuple((str(k), str(v)) for k, v in labels),
                    float(value),
                )
                for name, labels, value in data["counters"]
            ),
            time=float(data["time"]),
            predicted_time=(
                None
                if data["predicted_time"] is None
                else float(data["predicted_time"])
            ),
            supersteps=int(data["supersteps"]),
        )


def collect_run_obs(outcome: t.Any) -> RunObs:
    """Distil a finished outcome into a :class:`RunObs`.

    Works for both :class:`~repro.collectives.CollectiveOutcome` and
    :class:`~repro.apps.AppOutcome` (anything exposing ``name``,
    ``time``, ``supersteps``, ``predicted`` and ``runtime``).
    """
    runtime = outcome.runtime
    params = runtime.params
    predicted = outcome.predicted
    predicted_time = outcome.predicted_time
    return RunObs(
        name=outcome.name,
        machines=tuple(m.name for m in runtime.topology.machines),
        r=tuple(params.r_of(0, j) for j in range(runtime.nprocs)),
        marks=runtime.superstep_marks(),
        predicted=(
            None
            if predicted is None
            else tuple(
                (step.label, step.level, step.w, step.gh, step.L)
                for step in predicted.steps
            )
        ),
        counters=runtime.vm.metrics.counters_snapshot(),
        time=float(outcome.time),
        predicted_time=None if predicted_time is None else float(predicted_time),
        supersteps=int(outcome.supersteps),
    )


@dataclasses.dataclass(frozen=True)
class MachineRow:
    """One machine's share of one superstep."""

    machine: str
    r: float
    elapsed: float
    wait: float
    sent_bytes: int
    received_bytes: int

    @property
    def h(self) -> int:
        """The machine's ``h_{i,j}``: max of bytes in / bytes out."""
        return max(self.sent_bytes, self.received_bytes)

    @property
    def rh(self) -> float:
        """The model's per-machine h-relation load ``r * h``."""
        return self.r * self.h


@dataclasses.dataclass(frozen=True)
class LedgerRow:
    """One superstep of the joined simulated-vs-predicted ledger."""

    step: int
    label: str
    level: int | None
    simulated: float
    predicted: float | None
    ratio: float | None
    machines: tuple[MachineRow, ...]
    critical: MachineRow | None
    max_wait: MachineRow | None


class SuperstepLedger:
    """Joins a run's superstep marks against its analytic ledger.

    Per superstep ``s`` the simulated duration is the *frontier
    advance*: ``max_j end_j(s) - max_j end_j(s-1)``, which telescopes
    to the makespan of the synchronised part of the program.  Each
    analytic step joins 1:1 by index (the collectives charge exactly
    one ledger step per sync); runs without a prediction (apps) still
    get simulated rows with blank model columns.
    """

    def __init__(self, run: RunObs) -> None:
        self.run = run
        self.rows: list[LedgerRow] = []
        marks = run.marks
        nprocs = len(marks)
        nsteps = max((len(pid_marks) for pid_marks in marks), default=0)
        predicted = run.predicted
        previous: list[Mark] = [_ZERO_MARK] * nprocs
        frontier = 0.0
        for s in range(nsteps):
            # One pass per superstep: build the machine rows and track
            # the frontier / critical / max-wait extrema inline (the
            # sweep path ingests thousands of these; separate max()
            # passes re-evaluating the rh property measurably add up).
            current: list[Mark] = []
            machine_list: list[MachineRow] = []
            new_frontier = 0.0
            critical: MachineRow | None = None
            best_rh = -1.0
            max_wait: MachineRow | None = None
            best_wait = -1.0
            for j in range(nprocs):
                mark = marks[j][s] if s < len(marks[j]) else previous[j]
                current.append(mark)
                prev = previous[j]
                sent = mark[3] - prev[3]
                received = mark[5] - prev[5]
                machine_row = MachineRow(
                    machine=run.machines[j],
                    r=run.r[j],
                    elapsed=mark[0] - prev[0],
                    wait=mark[1],
                    sent_bytes=sent,
                    received_bytes=received,
                )
                machine_list.append(machine_row)
                if mark[0] > new_frontier:
                    new_frontier = mark[0]
                rh = run.r[j] * (sent if sent >= received else received)
                if rh > best_rh:
                    best_rh, critical = rh, machine_row
                if mark[1] > best_wait:
                    best_wait, max_wait = mark[1], machine_row
            machine_rows = tuple(machine_list)
            if predicted is not None and s < len(predicted):
                label, level, w, gh, L = predicted[s]
                step_predicted: float | None = w + gh + L
            else:
                label, level, step_predicted = f"superstep {s}", None, None
            simulated = new_frontier - frontier
            self.rows.append(
                LedgerRow(
                    step=s,
                    label=label,
                    level=level,
                    simulated=simulated,
                    predicted=step_predicted,
                    ratio=_ratio(simulated, step_predicted),
                    machines=machine_rows,
                    critical=critical,
                    max_wait=max_wait,
                )
            )
            previous = current
            frontier = new_frontier

    @property
    def simulated_total(self) -> float:
        """The run's simulated makespan."""
        return self.run.time

    @property
    def predicted_total(self) -> float | None:
        """The analytic total (``None`` without a prediction)."""
        return self.run.predicted_time

    @property
    def divergence(self) -> float | None:
        """Overall ``simulated/predicted`` (1.0 on exact agreement)."""
        return _ratio(self.simulated_total, self.predicted_total)

    def table(self, *, per_machine: bool = False) -> str:
        """Render the joined ledger as a table."""
        from repro.util.tables import AsciiTable

        def fmt(value: float | None) -> str:
            # Simulated times are often sub-millisecond; the table
            # renderer's fixed 3 decimals would flatten them to 0.000.
            return "" if value is None else f"{value:.6g}"

        table = AsciiTable(
            f"superstep ledger: {self.run.name}",
            ["step", "level", "predicted", "simulated", "sim/pred",
             "critical machine (r*h)", "max wait (machine)"],
        )
        for row in self.rows:
            critical = row.critical
            max_wait = row.max_wait
            table.add_row([
                f"{row.step}: {row.label}",
                "" if row.level is None else row.level,
                fmt(row.predicted),
                fmt(row.simulated),
                fmt(row.ratio),
                "" if critical is None else f"{critical.machine} ({critical.rh:g})",
                "" if max_wait is None else f"{max_wait.wait:g} ({max_wait.machine})",
            ])
        table.add_row([
            "TOTAL", "",
            fmt(self.predicted_total),
            fmt(self.simulated_total),
            fmt(self.divergence),
            "", "",
        ])
        out = table.render()
        if per_machine:
            detail = AsciiTable(
                f"per-machine breakdown: {self.run.name}",
                ["step", "machine", "r", "elapsed", "wait",
                 "bytes out", "bytes in", "r*h"],
            )
            for row in self.rows:
                for machine_row in row.machines:
                    detail.add_row([
                        row.step, machine_row.machine, fmt(machine_row.r),
                        fmt(machine_row.elapsed), fmt(machine_row.wait),
                        machine_row.sent_bytes, machine_row.received_bytes,
                        fmt(machine_row.rh),
                    ])
            out += "\n" + detail.render()
        return out

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        divergence = self.divergence
        shown = "n/a" if divergence is None else f"{divergence:.4g}"
        return (
            f"SuperstepLedger({self.run.name!r}, {len(self.rows)} steps, "
            f"divergence={shown})"
        )
