"""Parallel sweep execution and result caching for experiments.

The experiment harness decomposes its sweeps into independent,
picklable :class:`SimJob`s and evaluates them through a
:class:`SweepExecutor` — serially by default, or fanned across a
process pool with ``python -m repro.experiments --jobs N``.  Parallel
output is guaranteed bit-identical to serial output; see
:mod:`repro.perf.executor` for the contract and docs/performance.md
for the user-facing story.
"""

from repro.perf.executor import SweepExecutor, current_executor, evaluate, sweep
from repro.perf.job import APP_OPS, COLLECTIVE_OPS, SimJob, SimResult

__all__ = [
    "APP_OPS",
    "COLLECTIVE_OPS",
    "SimJob",
    "SimResult",
    "SweepExecutor",
    "current_executor",
    "evaluate",
    "sweep",
]
