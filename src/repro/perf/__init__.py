"""Parallel sweep execution and result caching for experiments.

The experiment harness decomposes its sweeps into independent,
picklable :class:`SimJob`s and evaluates them through a
:class:`SweepExecutor` — serially by default, or fanned across a
process pool with ``python -m repro.experiments --jobs N``.  Parallel
output is guaranteed bit-identical to serial output; see
:mod:`repro.perf.executor` for the contract and docs/performance.md
for the user-facing story.

Results can also persist across invocations: pass ``cache_dir`` to
:class:`SweepExecutor`/:func:`sweep` (the ``python -m
repro.experiments`` CLI does so by default) and already-computed grid
points are answered from the :class:`~repro.perf.diskcache.DiskCache`
instead of being re-simulated.
"""

from repro.perf.diskcache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    DiskCache,
    default_cache_dir,
)
from repro.perf.executor import (
    SweepExecutor,
    current_executor,
    effective_jobs,
    evaluate,
    sweep,
)
from repro.perf.job import APP_OPS, COLLECTIVE_OPS, SimJob, SimResult

__all__ = [
    "APP_OPS",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "COLLECTIVE_OPS",
    "DiskCache",
    "SimJob",
    "SimResult",
    "SweepExecutor",
    "current_executor",
    "default_cache_dir",
    "effective_jobs",
    "evaluate",
    "sweep",
]
