"""Persistent on-disk result cache for the sweep executor.

PR 2's three cache layers (executor memo, per-batch dedupe, worker
cache) all die with the process; this one survives it.  Results are
stored one-JSON-file-per-entry under a *versioned* directory, keyed by
the job's PYTHONHASHSEED-independent content hash, so a repeated
``python -m repro.experiments`` invocation skips every grid point the
previous run already simulated.

Exactness
---------

Entries round-trip :class:`~repro.perf.job.SimResult` through JSON.
``json`` serialises floats with ``repr`` (the shortest string that
round-trips) and parses them back with ``float``, so the restored
``time``/``predicted_time`` are the *same doubles* that were stored —
warm-cache reports are byte-identical to cold-cache ones, which the
tests enforce on rendered output.

Invalidation
------------

Entries live under ``<root>/<version>/`` where the version string is
``v{CACHE_SCHEMA_VERSION}-{repro.__version__}``.  Bumping either the
schema constant (entry layout changed) or the package version (the
simulator's outputs may have changed) orphans the old directory —
lookups simply miss and the sweep recomputes.  ``wipe()`` (or deleting
the directory) reclaims the space; nothing else reads it.

Robustness
----------

The cache is an accelerator, never a correctness dependency: writes go
to a temp file and ``os.replace`` into place (concurrent sweeps can't
observe half an entry), and *any* failure to read an entry — missing,
truncated, corrupted, wrong types, unreadable filesystem — is treated
as a miss and recomputed.  Write failures (read-only or full disk) are
silently dropped.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.obs.accounting import RunObs
from repro.perf.job import SimResult

__all__ = ["CACHE_SCHEMA_VERSION", "DiskCache", "default_cache_dir"]

#: Bump when the on-disk entry layout changes.
#: v2: entries carry the compact RunObs observability record, so
#: warm-cache runs reconstruct identical metrics and superstep ledgers.
CACHE_SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """Where sweep results persist when no ``--cache-dir`` is given.

    ``$REPRO_CACHE_DIR`` if set; else ``$XDG_CACHE_HOME/repro/sweeps``;
    else ``~/.cache/repro/sweeps``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


class DiskCache:
    """Content-hash-keyed persistent store of :class:`SimResult`\\ s.

    Parameters
    ----------
    root:
        Cache root; the versioned entry directory is created beneath it
        lazily, on the first ``put``.
    version:
        Override the version-directory name (tests use this to exercise
        invalidation); default ``v{CACHE_SCHEMA_VERSION}-{__version__}``.
    """

    def __init__(self, root: str | os.PathLike[str], *, version: str | None = None) -> None:
        if version is None:
            from repro import __version__

            version = f"v{CACHE_SCHEMA_VERSION}-{__version__}"
        self.root = Path(root)
        self.version = version
        self.dir = self.root / version

    def _path(self, key: str) -> Path:
        # Two-character fan-out keeps directory listings sane for large
        # sweeps without hashing anything new.
        return self.dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        """The stored result for ``key``, or ``None`` on any failure."""
        try:
            data = json.loads(self._path(key).read_text())
            predicted = data["predicted_time"]
            obs = data["obs"]
            return SimResult(
                name=str(data["name"]),
                time=float(data["time"]),
                predicted_time=None if predicted is None else float(predicted),
                supersteps=int(data["supersteps"]),
                obs=None if obs is None else RunObs.from_jsonable(obs),
            )
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            return None

    def put(self, key: str, result: SimResult) -> None:
        """Persist ``result`` atomically; failures are non-fatal."""
        path = self._path(key)
        payload = json.dumps(
            {
                "name": result.name,
                "time": result.time,
                "predicted_time": result.predicted_time,
                "supersteps": result.supersteps,
                "obs": None if result.obs is None else result.obs.to_jsonable(),
            }
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def wipe(self) -> None:
        """Delete the whole cache root (all versions)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"DiskCache({str(self.dir)!r}, entries={len(self)})"
