"""Persistent on-disk result cache for the sweep executor.

PR 2's three cache layers (executor memo, per-batch dedupe, worker
cache) all die with the process; this one survives it.  Results are
stored one-JSON-file-per-entry under a *versioned* directory, keyed by
the job's PYTHONHASHSEED-independent content hash, so a repeated
``python -m repro.experiments`` invocation skips every grid point the
previous run already simulated.

Exactness
---------

Entries round-trip :class:`~repro.perf.job.SimResult` through JSON.
``json`` serialises floats with ``repr`` (the shortest string that
round-trips) and parses them back with ``float``, so the restored
``time``/``predicted_time`` are the *same doubles* that were stored —
warm-cache reports are byte-identical to cold-cache ones, which the
tests enforce on rendered output.

Invalidation
------------

Entries live under ``<root>/<version>/`` where the version string is
``v{CACHE_SCHEMA_VERSION}-{repro.__version__}``.  Bumping either the
schema constant (entry layout changed) or the package version (the
simulator's outputs may have changed) orphans the old directory —
lookups simply miss and the sweep recomputes.  ``wipe()`` (or deleting
the directory) reclaims the space; nothing else reads it.

Robustness
----------

The cache is an accelerator, never a correctness dependency: writes go
to a temp file and ``os.replace`` into place (concurrent sweeps can't
observe half an entry), and *any* failure to read an entry — missing,
truncated, corrupted, wrong types, unreadable filesystem — is treated
as a miss and recomputed.  Write failures (read-only or full disk) are
silently dropped.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shutil
import tempfile
from pathlib import Path

from repro.obs.accounting import RunObs
from repro.perf.job import SimResult

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "DiskCache", "default_cache_dir"]

#: Bump when the on-disk entry layout changes.
#: v2: entries carry the compact RunObs observability record, so
#: warm-cache runs reconstruct identical metrics and superstep ledgers.
CACHE_SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """Where sweep results persist when no ``--cache-dir`` is given.

    ``$REPRO_CACHE_DIR`` if set; else ``$XDG_CACHE_HOME/repro/sweeps``;
    else ``~/.cache/repro/sweeps``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


#: Version directories look like ``v2-0.5.0``; anything else beneath a
#: cache root (e.g. a nested decision-cache root) is not ours to prune.
_VERSION_DIR = re.compile(r"^v\d+-")


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache root, split current-version vs stale.

    ``stale`` covers sibling *version* directories only — orphaned by a
    schema or package-version bump — never unrelated data that happens
    to live under the same root.
    """

    version: str
    entries: int
    bytes: int
    stale_versions: tuple[str, ...]
    stale_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.bytes + self.stale_bytes


class DiskCache:
    """Content-hash-keyed persistent store of :class:`SimResult`\\ s.

    Parameters
    ----------
    root:
        Cache root; the versioned entry directory is created beneath it
        lazily, on the first ``put``.
    version:
        Override the version-directory name (tests use this to exercise
        invalidation); default ``v{CACHE_SCHEMA_VERSION}-{__version__}``.
    """

    def __init__(self, root: str | os.PathLike[str], *, version: str | None = None) -> None:
        if version is None:
            from repro import __version__

            version = f"v{CACHE_SCHEMA_VERSION}-{__version__}"
        self.root = Path(root)
        self.version = version
        self.dir = self.root / version

    def _path(self, key: str) -> Path:
        # Two-character fan-out keeps directory listings sane for large
        # sweeps without hashing anything new.
        return self.dir / key[:2] / f"{key}.json"

    def get_json(self, key: str) -> dict | None:
        """The raw JSON object stored for ``key``, or ``None`` on any failure."""
        try:
            data = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def put_json(self, key: str, payload: dict) -> None:
        """Atomically persist a JSON object; failures are non-fatal."""
        path = self._path(key)
        text = json.dumps(payload)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def get(self, key: str) -> SimResult | None:
        """The stored result for ``key``, or ``None`` on any failure."""
        data = self.get_json(key)
        if data is None:
            return None
        try:
            predicted = data["predicted_time"]
            obs = data["obs"]
            return SimResult(
                name=str(data["name"]),
                time=float(data["time"]),
                predicted_time=None if predicted is None else float(predicted),
                supersteps=int(data["supersteps"]),
                obs=None if obs is None else RunObs.from_jsonable(obs),
            )
        except (ValueError, KeyError, TypeError, IndexError):
            return None

    def put(self, key: str, result: SimResult) -> None:
        """Persist ``result`` atomically; failures are non-fatal."""
        self.put_json(
            key,
            {
                "name": result.name,
                "time": result.time,
                "predicted_time": result.predicted_time,
                "supersteps": result.supersteps,
                "obs": None if result.obs is None else result.obs.to_jsonable(),
            },
        )

    def wipe(self) -> None:
        """Delete every version directory (current and stale).

        Non-version children of the root are left alone — under the
        ``$REPRO_CACHE_DIR`` override other caches (e.g. the tuning
        decisions) nest inside this root.
        """
        shutil.rmtree(self.dir, ignore_errors=True)
        for stale in self._stale_dirs():
            shutil.rmtree(stale, ignore_errors=True)

    def _entries(self) -> list[Path]:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*/*.json"))

    def _stale_dirs(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            child
            for child in self.root.iterdir()
            if child.is_dir()
            and child.name != self.version
            and _VERSION_DIR.match(child.name)
        )

    def stats(self) -> CacheStats:
        """Entry count and byte totals, current version vs stale ones."""

        def tree_bytes(path: Path) -> int:
            try:
                return sum(
                    f.stat().st_size for f in path.rglob("*") if f.is_file()
                )
            except OSError:
                return 0

        entries = self._entries()
        size = 0
        for entry in entries:
            try:
                size += entry.stat().st_size
            except OSError:
                pass
        stale = self._stale_dirs()
        return CacheStats(
            version=self.version,
            entries=len(entries),
            bytes=size,
            stale_versions=tuple(d.name for d in stale),
            stale_bytes=sum(tree_bytes(d) for d in stale),
        )

    def prune(self, max_bytes: int = 0) -> tuple[int, int]:
        """Shrink the cache to at most ``max_bytes`` of entry data.

        Stale version directories go first (they can never be read
        again), then the oldest current-version entries by mtime until
        the remainder fits.  ``max_bytes=0`` keeps only the empty
        current-version skeleton.  Returns ``(removed_items, freed_bytes)``
        where removed_items counts stale version dirs plus evicted
        entries.  Non-version directories under the root (for example a
        nested decision cache) are never touched.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        removed = 0
        freed = 0
        for stale in self._stale_dirs():
            size = sum(
                f.stat().st_size for f in stale.rglob("*") if f.is_file()
            )
            shutil.rmtree(stale, ignore_errors=True)
            if not stale.exists():
                removed += 1
                freed += size
        aged = []  # (mtime, size, path) oldest first
        total = 0
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        aged.sort(key=lambda item: (item[0], item[2]))
        for _, size, entry in aged:
            if total <= max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        return removed, freed

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"DiskCache({str(self.dir)!r}, entries={len(self)})"
