"""The parallel sweep executor: fan out :class:`SimJob`s, merge in order.

Determinism contract
--------------------

``evaluate(jobs)`` returns one :class:`~repro.perf.job.SimResult` per
job, **in job order**, and the results are bit-identical whatever the
worker count:

* every simulation is a pure function of its job (all randomness is
  seeded through the job's configuration), so *where* it runs cannot
  change *what* it returns;
* results are keyed by the job's content hash and re-assembled in the
  caller's submission order, so completion order cannot leak into the
  output.

Caching
-------

Four layers, all keyed by the job content hash:

* the executor memo — results live for the executor's lifetime, so a
  sweep that revisits a grid point (or two experiments sharing one)
  simulates it once;
* per-call dedupe — duplicate jobs inside one ``evaluate`` batch are
  submitted once;
* the per-process worker cache — a worker that receives a hash it has
  already simulated answers from memory (cheap insurance when the same
  executor evaluates overlapping batches);
* the optional persistent :class:`~repro.perf.diskcache.DiskCache`
  (``cache_dir=...``) — results survive the process, so repeated
  invocations skip already-computed grid points entirely.

Seeds are part of the hash (they are ordinary job kwargs), so entries
can never be served across differing seeds.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import sys
import typing as t
from concurrent.futures import ProcessPoolExecutor

from repro.obs.observe import current_observation
from repro.perf.diskcache import DiskCache
from repro.perf.job import SimJob, SimResult

__all__ = [
    "SweepExecutor",
    "sweep",
    "current_executor",
    "evaluate",
    "effective_jobs",
]


def effective_jobs(requested: int) -> int:
    """Clamp a ``--jobs`` request to what the host can actually use.

    On a 1-CPU host the pool is a pure pessimisation (fork + pickling
    overhead with no cores to fan over — see BENCH_sweep.json), and
    more workers than cores just thrash; either way the request is
    clamped with a one-line warning.  Library callers constructing
    :class:`SweepExecutor` directly are untouched.
    """
    requested = max(1, int(requested))
    cores = os.cpu_count() or 1
    if requested > 1 and cores == 1:
        print(
            f"warning: --jobs {requested} on a 1-CPU host; running serially",
            file=sys.stderr,
        )
        return 1
    if requested > cores:
        print(
            f"warning: --jobs {requested} exceeds {cores} CPUs; "
            f"clamping to {cores}",
            file=sys.stderr,
        )
        return cores
    return requested

#: Worker-process result cache (content hash -> result).  Module-global
#: so it persists for the worker's lifetime within a pool.
_worker_cache: dict[str, SimResult] = {}


def _execute_job(item: tuple[str, SimJob]) -> tuple[str, SimResult]:
    """Pool target: run one job (or answer from the worker cache)."""
    key, job = item
    result = _worker_cache.get(key)
    if result is None:
        _worker_cache[key] = result = job.run()
    return key, result


class SweepExecutor:
    """Evaluates batches of simulation jobs, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs everything in
        the calling process — no pool, no pickling, still cached.
    cache_dir:
        Optional root of a persistent :class:`DiskCache`.  ``None``
        (the default) keeps all caching in-process, exactly as before.
    cache_version:
        Override the disk cache's version directory (tests only).
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache_dir: str | os.PathLike[str] | None = None,
        cache_version: str | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self._memo: dict[str, SimResult] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._disk: DiskCache | None = (
            None if cache_dir is None else DiskCache(cache_dir, version=cache_version)
        )
        #: Lookups answered from the memo (includes in-batch duplicates).
        self.cache_hits = 0
        #: Unique configurations actually simulated.
        self.cache_misses = 0
        #: Unique configurations answered by the persistent disk cache.
        self.disk_hits = 0

    # -- pool management -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Forked workers inherit the parent's warm caches (items
            # LRU, calibrations); fall back to the platform default
            # where fork is unavailable.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (the memo stays usable)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: t.Any) -> None:
        self.close()

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, jobs: t.Iterable[SimJob]) -> list[SimResult]:
        """Run every job, returning results in job order.

        Duplicate and previously-seen configurations are served from
        the memo; the rest run serially or across the pool.  The
        returned list is deterministic — see the module docstring.
        """
        ordered = list(jobs)
        keys = [job.content_hash for job in ordered]
        memo = self._memo
        pending: dict[str, SimJob] = {}
        for key, job in zip(keys, ordered):
            if key not in memo and key not in pending:
                pending[key] = job
        self.cache_hits += len(keys) - len(pending)
        if pending and self._disk is not None:
            still_pending: dict[str, SimJob] = {}
            for key, job in pending.items():
                result = self._disk.get(key)
                if result is None:
                    still_pending[key] = job
                else:
                    memo[key] = result
                    self.disk_hits += 1
            pending = still_pending
        self.cache_misses += len(pending)
        observation = current_observation()
        if pending:
            # Span tracing cannot cross the pool boundary (spans are
            # recorded live against the observing process's tracer), so
            # a spans-enabled observation forces inline execution.
            spans_active = observation is not None and observation.tracer.enabled
            if self.jobs == 1 or spans_active:
                for key, job in pending.items():
                    memo[key] = job.run()
            else:
                # Ordered merge: results land in the memo keyed by
                # hash, and the output list is rebuilt from the
                # caller's key order, so worker scheduling can't
                # reorder anything.
                for key, result in self._ensure_pool().map(
                    _execute_job, list(pending.items())
                ):
                    memo[key] = result
            if self._disk is not None:
                for key in pending:
                    self._disk.put(key, memo[key])
        results = [memo[key] for key in keys]
        if observation is not None:
            # Feed metrics/ledgers once per returned occurrence, in
            # submission order — identical whatever the worker count
            # and whether results came from caches or fresh runs.
            for result in results:
                observation.record_result(result)
        return results

    def __repr__(self) -> str:
        return (
            f"SweepExecutor(jobs={self.jobs}, cached={len(self._memo)}, "
            f"hits={self.cache_hits}, disk_hits={self.disk_hits}, "
            f"misses={self.cache_misses})"
        )


#: The active executor installed by :func:`sweep` (None = inline).
_current: SweepExecutor | None = None


def current_executor() -> SweepExecutor | None:
    """The executor installed by the innermost active :func:`sweep`."""
    return _current


@contextlib.contextmanager
def sweep(
    jobs: int = 1,
    *,
    cache_dir: str | os.PathLike[str] | None = None,
) -> t.Iterator[SweepExecutor]:
    """Install a :class:`SweepExecutor` for the dynamic extent.

    Every :func:`evaluate` call inside the block shares the executor's
    memo, so experiments run back-to-back reuse each other's grid
    points.  ``jobs=1`` still installs the shared memo — the parallel
    pool is only spun up for ``jobs > 1``.  ``cache_dir`` additionally
    persists results on disk across invocations.
    """
    global _current
    previous = _current
    executor = SweepExecutor(jobs=jobs, cache_dir=cache_dir)
    _current = executor
    try:
        yield executor
    finally:
        _current = previous
        executor.close()


def evaluate(jobs: t.Iterable[SimJob]) -> list[SimResult]:
    """Evaluate jobs through the active :func:`sweep` executor.

    Outside any ``sweep`` block the batch runs inline in this process
    with per-batch dedupe only — no state outlives the call, which
    keeps direct experiment invocations (and tests) isolated.
    """
    if _current is not None:
        return _current.evaluate(jobs)
    return SweepExecutor(jobs=1).evaluate(jobs)
