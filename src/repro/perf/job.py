"""Picklable simulation jobs for the parallel sweep executor.

The experiment harness decomposes a sweep (e.g. Fig. 3(a)'s grid of
problem sizes x processor counts x root policies) into independent
:class:`SimJob` values.  A job is a *pure description* of one
simulation — the operation name, the topology, the problem size and
the keyword configuration — so it can be

* pickled to a worker process (every component is plain data),
* content-hashed for the result cache (identical configurations are
  simulated once per executor, and once per worker process), and
* replayed deterministically (the simulator is a pure function of the
  job; see :mod:`repro.perf.executor` for the bit-identity guarantee).

Results come back as small :class:`SimResult` records rather than the
full :class:`~repro.collectives.CollectiveOutcome` — outcomes drag the
whole runtime (VM, processes, traces) along and are deliberately not
picklable across the pool boundary.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import struct
import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.errors import ReproError
from repro.obs.accounting import RunObs, collect_run_obs
from repro.obs.observe import current_observation

__all__ = [
    "COLLECTIVE_OPS",
    "APP_OPS",
    "SimJob",
    "SimResult",
    "content_tokens",
]

#: Collective operation names accepted by :meth:`SimJob.collective`.
COLLECTIVE_OPS: tuple[str, ...] = (
    "gather",
    "broadcast",
    "scatter",
    "reduce",
    "allgather",
    "alltoall",
    "allreduce",
    "scan",
)

#: Application names accepted by :meth:`SimJob.app`.
APP_OPS: tuple[str, ...] = ("sample_sort", "matvec", "histogram", "jacobi")

#: op name -> runner, resolved lazily (the collectives/apps packages
#: import numpy-heavy modules; workers only pay for what they run).
_RUNNERS: dict[str, t.Callable[..., t.Any]] | None = None


def _resolve_runner(op: str) -> t.Callable[..., t.Any]:
    global _RUNNERS
    if _RUNNERS is None:
        from repro import apps, collectives

        _RUNNERS = {
            **{name: getattr(collectives, f"run_{name}") for name in COLLECTIVE_OPS},
            **{name: getattr(apps, f"run_{name}") for name in APP_OPS},
        }
    try:
        return _RUNNERS[op]
    except KeyError:
        known = ", ".join(sorted(_RUNNERS))
        raise ReproError(f"unknown simulation op {op!r}; known: {known}") from None


# -- content hashing ----------------------------------------------------------
def content_tokens(value: t.Any, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``value`` to ``out``.

    The encoding is type-tagged and recursion-structured, so distinct
    values never collide by concatenation, and it is independent of
    ``PYTHONHASHSEED``, dict insertion order and process identity —
    the properties a cross-process result cache needs.  Unsupported
    types raise rather than hash ambiguously.
    """
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, enum.Enum):
        out.append(f"E{type(value).__qualname__}:{value.name};".encode())
    elif isinstance(value, int):
        out.append(b"i%d;" % value)
    elif isinstance(value, float):
        out.append(b"f" + struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode()
        out.append(b"s%d:" % len(raw) + raw)
    elif isinstance(value, bytes):
        out.append(b"b%d:" % len(value) + value)
    elif isinstance(value, np.ndarray):
        out.append(f"a{value.dtype.str}{value.shape};".encode())
        out.append(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.generic):
        content_tokens(value.item(), out)
    elif isinstance(value, ClusterTopology):
        out.append(b"Y(")
        content_tokens(value.root, out)
        out.append(b")")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(f"D{type(value).__qualname__}(".encode())
        for field in dataclasses.fields(value):
            out.append(field.name.encode() + b"=")
            content_tokens(getattr(value, field.name), out)
        out.append(b")")
    elif isinstance(value, t.Mapping):
        # Keys sort by their own canonical encoding, so mixed key types
        # and insertion order cannot change the hash.
        encoded = []
        for key, item in value.items():
            key_out: list[bytes] = []
            content_tokens(key, key_out)
            item_out: list[bytes] = []
            content_tokens(item, item_out)
            encoded.append((b"".join(key_out), b"".join(item_out)))
        out.append(b"m%d(" % len(encoded))
        for key_bytes, item_bytes in sorted(encoded):
            out.append(key_bytes + b">" + item_bytes)
        out.append(b")")
    elif isinstance(value, (frozenset, set)):
        encoded_items = []
        for item in value:
            item_out = []
            content_tokens(item, item_out)
            encoded_items.append(b"".join(item_out))
        out.append(b"S%d(" % len(encoded_items) + b"".join(sorted(encoded_items)) + b")")
    elif isinstance(value, (list, tuple)):
        out.append(b"l%d(" % len(value))
        for item in value:
            content_tokens(item, out)
        out.append(b")")
    else:
        raise ReproError(
            f"cannot content-hash {type(value).__qualname__} value {value!r}; "
            "job parameters must be plain data (numbers, strings, enums, "
            "arrays, dataclasses, mappings, sequences)"
        )


@dataclasses.dataclass(frozen=True)
class SimResult:
    """The picklable outcome of one :class:`SimJob`.

    Carries exactly what the experiment layer consumes: the simulated
    makespan, the analytic prediction (``None`` for applications that
    don't provide one) and the superstep count — plus the compact
    :class:`~repro.obs.accounting.RunObs` observability record, which
    rides along (it is plain data, not part of the content hash) so
    metrics and superstep ledgers survive worker pools and the
    persistent disk cache.
    """

    name: str
    time: float
    predicted_time: float | None
    supersteps: int
    obs: RunObs | None = None


@dataclasses.dataclass(frozen=True, eq=False)
class SimJob:
    """One independent simulation: ``run_<op>(topology, n, **kwargs)``.

    Build with :meth:`collective` / :meth:`app`, which validate the op
    name and canonicalise the keyword order so that equal
    configurations hash equally however they were spelled.
    """

    op: str
    topology: ClusterTopology
    n: int
    kwargs: tuple[tuple[str, t.Any], ...]

    @classmethod
    def collective(
        cls, op: str, topology: ClusterTopology, n: int, **kwargs: t.Any
    ) -> "SimJob":
        """A collective job (gather/broadcast/.../scan)."""
        if op not in COLLECTIVE_OPS:
            raise ReproError(
                f"unknown collective {op!r}; known: {', '.join(COLLECTIVE_OPS)}"
            )
        return cls(op, topology, int(n), tuple(sorted(kwargs.items())))

    @classmethod
    def app(cls, op: str, topology: ClusterTopology, n: int, **kwargs: t.Any) -> "SimJob":
        """An application job (sample_sort/matvec/histogram/jacobi)."""
        if op not in APP_OPS:
            raise ReproError(f"unknown app {op!r}; known: {', '.join(APP_OPS)}")
        return cls(op, topology, int(n), tuple(sorted(kwargs.items())))

    @functools.cached_property
    def content_hash(self) -> str:
        """SHA-256 over the canonical encoding of the configuration."""
        out: list[bytes] = [self.op.encode(), b"|n=%d|" % self.n]
        content_tokens(self.topology, out)
        content_tokens(self.kwargs, out)
        return hashlib.sha256(b"".join(out)).hexdigest()

    def run(self) -> SimResult:
        """Execute the simulation and distil the picklable result."""
        runner = _resolve_runner(self.op)
        observation = current_observation()
        outcome = runner(self.topology, self.n, **dict(self.kwargs))
        if observation is not None and observation.tracer.enabled:
            # Simulated-time spans only (no wall-clock wrapper): exported
            # traces must be bit-identical across identical invocations.
            observation.ingest_spans(outcome)
        predicted = outcome.predicted_time
        return SimResult(
            name=outcome.name,
            time=float(outcome.time),
            predicted_time=None if predicted is None else float(predicted),
            supersteps=int(outcome.supersteps),
            obs=collect_run_obs(outcome),
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{key}={value!r}" for key, value in self.kwargs)
        return f"SimJob({self.op}, p={self.topology.num_machines}, n={self.n}, {parts})"
