"""The ``python -m repro`` command line.

Subcommands:

``list``
    Available machine presets and experiment ids.
``describe PRESET``
    Print a preset topology's tree.
``calibrate PRESET``
    Print the calibrated HBSP^k parameters (Table-1 style).
``probe PRESET``
    Measure parameters empirically and compare to calibration.
``run COLLECTIVE PRESET``
    Simulate one collective (gather/broadcast/scatter/reduce/
    allgather/alltoall/allreduce/scan) and print times, the predicted
    cost ledger, and optionally a Gantt chart.
``tune COLLECTIVE PRESET``
    Auto-tune a gather/broadcast schedule for a machine (enumerate,
    price analytically, DES-validate the shortlist) and memoize the
    decision in the persistent cache; ``run --schedule tuned`` then
    resolves it in O(1).
``cache {stats,prune,clear}``
    Inspect or reclaim the persistent sweep-result and
    tuning-decision caches (per-tier breakdown plus totals).
``serve``
    Play one open-loop serving session (seeded arrivals, admission
    control, batching, subtree placement) and print its goodput,
    latency percentiles, and per-slice utilisation.
``experiment ID``
    Regenerate a paper artifact (same ids as ``python -m
    repro.experiments``).
``topology generate SPEC``
    Build a generated (or preset) topology, print a summary, and
    optionally write the topology JSON and/or a synthesized probe
    matrix.
``topology discover``
    Recover a hierarchy from a probe matrix file (or synthesize one
    from a spec on the fly) and print the discovered levels.
``topology inspect FILE``
    Summarise a topology JSON or probe-matrix file.

Presets take an optional ``:p`` size suffix where it makes sense,
e.g. ``testbed:6`` or ``flat:8``.  Generator specs are
``family:key=value,...``, e.g. ``fat_tree:pods=8,hosts_per_rack=16``.
"""

from __future__ import annotations

import argparse
import typing as t

from repro.cluster import (
    ClusterTopology,
    deep_hierarchy,
    flat_cluster,
    grid_three_level,
    multi_lan,
    smp_sgi_lan,
    two_lans,
    ucf_testbed,
)
from repro.errors import ReproError

__all__ = ["PRESETS", "build_preset", "main"]

#: Preset name -> (factory taking an optional size, description).
PRESETS: dict[str, tuple[t.Callable[[int | None], ClusterTopology], str]] = {
    "testbed": (
        lambda p: ucf_testbed(p if p is not None else 10),
        "the paper's SUN/SGI testbed (k=1, p<=10; default 10)",
    ),
    "flat": (
        lambda p: flat_cluster(p if p is not None else 8),
        "parametric heterogeneous Ethernet LAN (k=1; default p=8)",
    ),
    "fig1": (
        lambda p: smp_sgi_lan(),
        "the paper's Figure-1 machine: SMP + SGI + LAN (k=2, p=9)",
    ),
    "two-lans": (
        lambda p: two_lans(p if p is not None else 4),
        "two LANs on a campus backbone (k=2; default 4 per LAN)",
    ),
    "multi-lan": (
        lambda p: multi_lan(p if p is not None else 3),
        "N LANs on a campus backbone (k=2; default 3 LANs)",
    ),
    "grid": (
        lambda p: grid_three_level(),
        "two-site computational grid over a WAN (k=3, p=12)",
    ),
    "deep": (
        lambda p: deep_hierarchy(p if p is not None else 4),
        "complete binary hierarchy of depth k (default k=4)",
    ),
}

_COLLECTIVES = (
    "gather",
    "broadcast",
    "scatter",
    "reduce",
    "allgather",
    "alltoall",
    "allreduce",
    "scan",
)


def build_preset(spec: str) -> ClusterTopology:
    """Build a preset from ``name`` or ``name:size``."""
    name, _, size_text = spec.partition(":")
    if name not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise ReproError(f"unknown preset {name!r}; known: {known}")
    size = int(size_text) if size_text else None
    return PRESETS[name][0](size)


def _cmd_list() -> int:
    from repro.cluster.discover import GENERATORS
    from repro.experiments import EXPERIMENTS

    print("presets (use with describe/calibrate/probe/run):")
    for name, (_factory, description) in sorted(PRESETS.items()):
        print(f"  {name:10s} {description}")
    print()
    print("generators (use with topology generate/discover; key=value args):")
    print("  " + ", ".join(sorted(GENERATORS)))
    print()
    print("collectives (use with run):")
    print("  " + ", ".join(_COLLECTIVES))
    print()
    print("experiments (use with experiment):")
    print("  " + ", ".join(sorted(EXPERIMENTS)))
    return 0


def _cmd_describe(preset: str) -> int:
    print(build_preset(preset).describe())
    return 0


def _cmd_calibrate(
    preset: str,
    fit: str | None = None,
    out: str | None = None,
    source: str = "simulated",
) -> int:
    from repro.model import calibrate

    topology = build_preset(preset)
    if fit is None:
        print(calibrate(topology).describe())
        return 0
    from repro.calib import fit_params, load_runs

    result = fit_params(load_runs(fit), topology, source=source)
    print(result.describe())
    if out is not None:
        from pathlib import Path

        from repro.cluster.serialization import dumps

        Path(out).write_text(dumps(topology, params=result.params))
        print(f"wrote fitted topology (+params) to {out}")
    return 0


def _cmd_probe(preset: str) -> int:
    from repro.model import calibrate, probe_params
    from repro.util.tables import AsciiTable

    topology = build_preset(preset)
    params = calibrate(topology)
    report = probe_params(topology)
    table = AsciiTable(
        f"calibrated vs probed parameters for {preset}",
        ["machine", "r (calibrated)", "r (probed, effective)"],
    )
    for j, machine in enumerate(topology.normalized().machines):
        table.add_row([machine.name, params.r_of(0, j), report.r[j]])
    print(table.render())
    print(f"g: calibrated {params.g:.3g} s/B, probed {report.g:.3g} s/B")
    return 0


def _cmd_run(
    collective: str,
    preset: str,
    n: int,
    root: str,
    workload: str,
    gantt: bool,
    seed: int = 0,
    faults: str | None = None,
    retries: int = 0,
    send_timeout: float | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    obs_summary: bool = False,
    runs_out: str | None = None,
    schedule: str = "default",
) -> int:
    import contextlib

    from repro import collectives as coll
    from repro.collectives import RootPolicy, WorkloadPolicy, resolve_plan
    from repro.util.units import format_time

    if collective not in _COLLECTIVES:
        raise ReproError(
            f"unknown collective {collective!r}; known: {', '.join(_COLLECTIVES)}"
        )
    topology = build_preset(preset)
    runner = getattr(coll, f"run_{collective}")
    kwargs: dict[str, t.Any] = {"trace": gantt, "seed": seed}
    if schedule != "default":
        root_spec: t.Any = (
            RootPolicy.SLOWEST if root == "slowest"
            else RootPolicy.FASTEST if root == "fastest"
            else int(root)
        )
        plan = resolve_plan(topology, collective, n, schedule, root=root_spec)
        if plan is not None:
            kwargs["plan"] = plan
            print(f"tuned schedule: {plan.key}")
    if faults is not None:
        from repro.faults import FaultPlan

        kwargs["faults"] = FaultPlan.from_file(faults)
    if send_timeout is not None:
        from repro.faults import DeliveryPolicy

        kwargs["delivery"] = (
            DeliveryPolicy.retry(retries, timeout=send_timeout)
            if retries > 0
            else DeliveryPolicy(timeout=send_timeout)
        )
    elif retries > 0:
        raise ReproError("--retries needs --send-timeout to arm the timer")
    if collective in ("gather", "broadcast", "scatter", "reduce", "allreduce"):
        kwargs["root"] = (
            RootPolicy.SLOWEST if root == "slowest"
            else RootPolicy.FASTEST if root == "fastest"
            else int(root)
        )
    if collective in ("gather", "scatter", "allgather", "alltoall"):
        kwargs["workload"] = (
            WorkloadPolicy.EQUAL if workload == "equal" else WorkloadPolicy.BALANCED
        )
    observation = None
    with contextlib.ExitStack() as stack:
        if trace_out or metrics_out or obs_summary or runs_out:
            from repro.obs import observe

            observation = stack.enter_context(observe(spans=trace_out is not None))
        outcome = runner(topology, n, **kwargs)
    if observation is not None:
        observation.ingest_outcome(outcome)
    print(f"{outcome.name} on {preset}")
    print(f"simulated: {format_time(outcome.time)}   "
          f"predicted: {format_time(outcome.predicted_time)}   "
          f"supersteps: {outcome.supersteps}")
    injector = outcome.runtime.vm.injector
    if injector is not None:
        print(f"faults: {len(injector.plan)} spec(s), "
              f"{injector.dropped_messages} message(s) dropped, "
              f"{injector.delayed_messages} delayed")
    print()
    print(outcome.predicted.describe())
    if gantt:
        print()
        print(outcome.result.trace.gantt())
    if observation is not None:
        from repro.experiments.runner import _export_observation

        if obs_summary:
            print()
        _export_observation(
            observation, trace_out, metrics_out, obs_summary, runs_out
        )
    return 0


def _cmd_tune(
    collective: str,
    preset: str,
    n: int,
    root: str,
    force: bool,
    shortlist: int,
) -> int:
    from repro.collectives import RootPolicy
    from repro.tuning.tuner import tune
    from repro.util.units import format_time

    if collective not in ("gather", "broadcast"):
        raise ReproError(
            f"tune supports gather/broadcast, got {collective!r}"
        )
    topology = _build_any(preset)
    root_spec: t.Any = (
        RootPolicy.SLOWEST if root == "slowest"
        else RootPolicy.FASTEST if root == "fastest"
        else int(root)
    )
    decision = tune(
        topology, collective, n, root=root_spec, force=force,
        shortlist=shortlist,
    )
    print(f"{collective}(n={n}) on {preset} -> {decision.plan.key}")
    print(f"  topology hash : {decision.topology_hash[:16]}…  root pid{decision.root}")
    print(f"  space         : {decision.candidates} plans priced analytically, "
          f"{decision.validated} DES-validated")
    print(f"  tuned         : {format_time(decision.simulated_time)} simulated "
          f"({format_time(decision.predicted_time)} predicted)")
    print(f"  default       : {format_time(decision.default_time)} simulated")
    if decision.plan.is_default:
        print("  verdict       : the default schedule is already optimal")
    else:
        print(f"  verdict       : {100 * decision.improvement:.1f}% faster "
              "than the default schedule")
    return 0


def _cmd_cache(action: str, max_bytes: int | None) -> int:
    from repro.perf import DiskCache, default_cache_dir
    from repro.tuning.cache import DecisionCache
    from repro.util.units import format_bytes

    stores: list[tuple[str, t.Any]] = [
        ("sweeps", DiskCache(default_cache_dir())),
        ("decisions", DecisionCache()),
    ]
    if action == "stats":
        per_tier: list[tuple[str, int, int]] = []
        for label, store in stores:
            stats = store.stats()
            root = store.root if hasattr(store, "root") else store.disk.root
            print(f"{label} cache at {root}")
            print(f"  current ({stats.version}): {stats.entries} entries, "
                  f"{format_bytes(stats.bytes)}")
            if stats.stale_versions:
                print(f"  stale: {format_bytes(stats.stale_bytes)} in "
                      f"{', '.join(stats.stale_versions)}")
            else:
                print("  stale: none")
            per_tier.append((label, stats.entries, stats.bytes))
        breakdown = ", ".join(f"{label} {n}" for label, n, _ in per_tier)
        print(f"total: {sum(n for _, n, _ in per_tier)} entries, "
              f"{format_bytes(sum(b for _, _, b in per_tier))} ({breakdown})")
        return 0
    if action == "prune":
        limit = 0 if max_bytes is None else max_bytes
        totals = [0, 0]
        for label, store in stores:
            removed, freed = store.prune(limit)
            totals[0] += removed
            totals[1] += freed
            print(f"{label}: removed {removed} item(s), freed {format_bytes(freed)}")
        print(f"total: removed {totals[0]} item(s), freed "
              f"{format_bytes(totals[1])}")
        return 0
    # clear
    for label, store in stores:
        entries = len(store)
        if isinstance(store, DiskCache):
            store.wipe()
        else:
            store.clear()
        print(f"{label}: cleared ({entries} entries)")
    return 0


def _cmd_serve(
    config_path: str | None,
    seed: int | None = None,
    duration: float | None = None,
    rate: float | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    dynamics: str | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    obs_summary: bool = False,
    runs_out: str | None = None,
) -> int:
    import contextlib
    import dataclasses

    from repro.perf import effective_jobs, sweep
    from repro.serve import ServiceConfig, default_config, run_service

    if config_path is not None:
        config = ServiceConfig.from_file(config_path)
    else:
        config = default_config()
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    if duration is not None:
        config = dataclasses.replace(config, duration=duration)
    if rate is not None:
        config = dataclasses.replace(
            config, arrival=dataclasses.replace(config.arrival, rate=rate)
        )
    plan = None
    if dynamics is not None:
        from repro.dynamics import DynamicPlan

        plan = DynamicPlan.from_file(dynamics)
    observation = None
    with contextlib.ExitStack() as stack:
        if trace_out or metrics_out or obs_summary or runs_out:
            from repro.obs import observe

            observation = stack.enter_context(observe(spans=trace_out is not None))
        stack.enter_context(sweep(jobs=effective_jobs(jobs), cache_dir=cache_dir))
        report = run_service(config, dynamics=plan)
    print(report.render())
    if observation is not None:
        from repro.experiments.runner import _export_observation

        if obs_summary:
            print()
        _export_observation(
            observation, trace_out, metrics_out, obs_summary, runs_out
        )
    return 0


def _cmd_experiment(
    experiment_id: str,
    plot: bool = False,
    seed: int | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    obs_summary: bool = False,
    runs_out: str | None = None,
    schedule: str | None = None,
) -> int:
    import contextlib

    from repro.experiments import run_experiment
    from repro.perf import effective_jobs, sweep

    observation = None
    with contextlib.ExitStack() as stack:
        if trace_out or metrics_out or obs_summary or runs_out:
            from repro.obs import observe

            observation = stack.enter_context(observe(spans=trace_out is not None))
        stack.enter_context(sweep(jobs=effective_jobs(jobs), cache_dir=cache_dir))
        report = run_experiment(experiment_id, seed=seed, schedule=schedule)
    print(report.render(plot=plot))
    if observation is not None:
        from repro.experiments.runner import _export_observation

        if obs_summary:
            print()
        _export_observation(
            observation, trace_out, metrics_out, obs_summary, runs_out
        )
    return 0


def _build_any(spec: str) -> ClusterTopology:
    """Build from a generator spec, falling back to the presets."""
    from repro.cluster.discover import GENERATORS, build_generated

    family = spec.partition(":")[0]
    if family in GENERATORS:
        return build_generated(spec)
    try:
        return build_preset(spec)
    except ReproError:
        known = ", ".join(sorted(list(PRESETS) + list(GENERATORS)))
        raise ReproError(
            f"unknown preset or generator {family!r}; known: {known}"
        ) from None


def _topology_summary(topology: ClusterTopology) -> str:
    from repro.cluster.discover import topology_partitions

    counts = [len(set(level)) for level in topology_partitions(topology)]
    lines = [
        f"p = {topology.num_machines} machines, k = {topology.height} levels",
        "clusters per level (innermost first): "
        + " -> ".join(str(c) for c in counts),
    ]
    if topology.num_machines <= 64:
        lines.append(topology.describe())
    return "\n".join(lines)


def _cmd_topology_generate(
    spec: str,
    out: str | None,
    matrix_out: str | None,
    noise: float,
    seed: int,
    with_params: bool,
) -> int:
    from repro.cluster.discover.matrix import synthesize

    topology = _build_any(spec)
    print(f"generated {spec!r}")
    print(_topology_summary(topology))
    if out:
        from pathlib import Path

        from repro.cluster.serialization import dumps

        params = None
        if with_params:
            from repro.model import calibrate

            params = calibrate(topology)
        Path(out).write_text(dumps(topology, params=params) + "\n")
        print(f"wrote topology JSON to {out}")
    if matrix_out:
        matrix = synthesize(topology, noise=noise, seed=seed)
        matrix.save(matrix_out)
        print(f"wrote probe matrix ({matrix!r}) to {matrix_out}")
    return 0


def _cmd_topology_discover(
    matrix_path: str | None,
    spec: str | None,
    method: str,
    rel_tol: float,
    noise: float,
    seed: int,
    out: str | None,
) -> int:
    from repro.cluster.discover import (
        ProbeMatrix,
        discover,
        exact_recovery,
        hierarchy_distance,
        synthesize,
        topology_partitions,
    )

    if (matrix_path is None) == (spec is None):
        raise ReproError("topology discover needs exactly one of --matrix / --spec")
    truth = None
    if matrix_path is not None:
        matrix = ProbeMatrix.load(matrix_path)
    else:
        topology = _build_any(t.cast(str, spec))
        truth = topology_partitions(topology)
        matrix = synthesize(topology, noise=noise, seed=seed)
    result = discover(matrix, method=method, rel_tol=rel_tol)
    print(result.describe())
    if truth is not None:
        score = 1.0 - hierarchy_distance(truth, result.partitions)
        exact = exact_recovery(truth, result.partitions)
        print(f"recovery vs truth: score {score:.4f}, exact {exact}")
    if out:
        from pathlib import Path

        from repro.cluster.serialization import dumps

        Path(out).write_text(dumps(result.topology, params=result.params) + "\n")
        print(f"wrote recovered topology JSON to {out}")
    return 0


def _cmd_topology_inspect(path: str) -> int:
    import json
    from pathlib import Path

    from repro.cluster.discover import ProbeMatrix

    text = None
    if not path.endswith(".npz"):
        text = Path(path).read_text()
        data = json.loads(text)
        schema = data.get("schema", "")
        if schema.startswith("repro.cluster/"):
            from repro.cluster.serialization import loads_with_params

            topology, params = loads_with_params(text)
            print(f"topology file ({schema})")
            print(_topology_summary(topology))
            if params is not None:
                print(params.describe())
            return 0
    matrix = ProbeMatrix.load(path)
    print(f"probe matrix: {matrix!r}")
    import numpy as np

    off_diagonal = matrix.latency[~np.eye(matrix.p, dtype=bool)]
    if off_diagonal.size:
        print(
            f"latency range: [{off_diagonal.min():.3g}, {off_diagonal.max():.3g}] s"
        )
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (see docs/observability.md)."""
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace_event JSON timeline of the run "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write aggregated metrics in Prometheus text format",
    )
    parser.add_argument(
        "--obs-summary", action="store_true",
        help="print the per-superstep predicted-vs-simulated ledger",
    )
    parser.add_argument(
        "--runs-out", metavar="FILE", default=None,
        help="write the observed run records as JSON — the input "
        "format of 'repro calibrate --fit' (docs/calibration.md)",
    )


def main(argv: t.Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HBSP^k reproduction: simulate heterogeneous collectives.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list presets, collectives, experiments")
    for name in ("describe", "probe"):
        command = sub.add_parser(name, help=f"{name} a preset machine")
        command.add_argument("preset")
    calibrate_parser = sub.add_parser(
        "calibrate",
        help="derive HBSP^k parameters from specs, or fit them from traces",
    )
    calibrate_parser.add_argument("preset")
    calibrate_parser.add_argument(
        "--fit", metavar="RUNS.json", default=None,
        help="fit parameters from exported run records "
        "(write them with --runs-out) instead of the topology specs",
    )
    calibrate_parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="with --fit: write the topology + fitted params as "
        "topology JSON v2 (repro.cluster/2)",
    )
    calibrate_parser.add_argument(
        "--source", default="simulated",
        choices=["simulated", "predicted"],
        help="with --fit: fit against what the DES took (effective "
        "parameters) or the exported analytic step costs "
        "(estimator round-trip)",
    )
    run_parser = sub.add_parser("run", help="simulate one collective")
    run_parser.add_argument("collective")
    run_parser.add_argument("preset")
    run_parser.add_argument("--n", type=int, default=25_600,
                            help="problem size in items (default 25600 = 100 KB)")
    run_parser.add_argument("--root", default="fastest",
                            help="fastest | slowest | explicit pid")
    run_parser.add_argument("--workload", default="balanced",
                            choices=["balanced", "equal"])
    run_parser.add_argument("--gantt", action="store_true",
                            help="print an ASCII Gantt chart of the run")
    run_parser.add_argument("--seed", type=int, default=0,
                            help="experiment seed (inputs + fault coins)")
    run_parser.add_argument("--faults", metavar="PLAN.json", default=None,
                            help="inject faults from a JSON FaultPlan file")
    run_parser.add_argument("--send-timeout", type=float, default=None,
                            help="per-send delivery timeout in seconds")
    run_parser.add_argument("--retries", type=int, default=0,
                            help="retransmissions per send (needs --send-timeout)")
    run_parser.add_argument("--schedule", default="default",
                            choices=["default", "tuned"],
                            help="collective schedule: the paper's default or "
                            "the auto-tuned plan (gather/broadcast only; "
                            "tunes cold on first use, then cached)")
    _add_obs_flags(run_parser)
    tune_parser = sub.add_parser(
        "tune", help="auto-tune a collective schedule for a machine"
    )
    tune_parser.add_argument("collective", help="gather | broadcast")
    tune_parser.add_argument("preset",
                             help="preset name or generator spec "
                             '"family:key=value,..."')
    tune_parser.add_argument("--n", type=int, default=25_600,
                             help="problem size in items (default 25600)")
    tune_parser.add_argument("--root", default="fastest",
                             help="fastest | slowest | explicit pid")
    tune_parser.add_argument("--force", action="store_true",
                             help="re-tune even if a cached decision exists")
    tune_parser.add_argument("--shortlist", type=int, default=4,
                             help="analytic top-N to DES-validate (default 4)")
    cache_parser = sub.add_parser(
        "cache", help="inspect or reclaim the persistent caches"
    )
    cache_parser.add_argument("cache_action",
                              choices=["stats", "prune", "clear"],
                              help="stats: per-tier (sweeps/decisions) entries "
                              "and bytes plus totals; prune: per tier, drop "
                              "stale versions then oldest entries, reporting "
                              "a combined total; clear: wipe both tiers")
    cache_parser.add_argument("--max-bytes", type=int, default=None,
                              help="prune target size per tier — sweeps and "
                              "decisions each keep at most this many bytes "
                              "(default 0 = keep nothing)")
    experiment_parser = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment_parser.add_argument("id")
    experiment_parser.add_argument("--plot", action="store_true",
                                   help="render as an ASCII line plot")
    experiment_parser.add_argument("--seed", type=int, default=None,
                                   help="override the experiment seed")
    experiment_parser.add_argument("--jobs", type=int, default=1,
                                   help="worker processes for the simulation "
                                   "sweep (output is bit-identical)")
    experiment_parser.add_argument("--cache-dir", default=None,
                                   help="persist sweep results under this "
                                   "directory and reuse them across runs")
    experiment_parser.add_argument("--schedule", default=None,
                                   choices=["default", "tuned"],
                                   help="collective schedule for experiments "
                                   "that support it (fig3a, fig4a)")
    _add_obs_flags(experiment_parser)

    serve_parser = sub.add_parser(
        "serve", help="play one open-loop serving session"
    )
    serve_parser.add_argument(
        "--config", metavar="FILE", default=None,
        help="ServiceConfig JSON (see docs/serving.md); defaults to a "
        "built-in demo session on two-lans:3",
    )
    serve_parser.add_argument("--seed", type=int, default=None,
                              help="override the session seed (arrivals, "
                              "kind mix, kernel inputs)")
    serve_parser.add_argument("--duration", type=float, default=None,
                              help="override the arrival window in "
                              "simulated seconds")
    serve_parser.add_argument("--rate", type=float, default=None,
                              help="override the mean offered load in "
                              "requests per simulated second")
    serve_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the kernel-cost "
                              "prewarm (output is bit-identical)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="persist kernel-cost results under this "
                              "directory and reuse them across sessions")
    serve_parser.add_argument("--dynamics", metavar="PLAN.json", default=None,
                              help="play the session against a DynamicPlan "
                              "(churn/drift/diurnal; see docs/faults.md)")
    _add_obs_flags(serve_parser)

    topology_parser = sub.add_parser(
        "topology", help="generate, discover, and inspect cluster hierarchies"
    )
    topology_sub = topology_parser.add_subparsers(
        dest="topology_command", required=True
    )
    generate_parser = topology_sub.add_parser(
        "generate", help="build a generated (or preset) topology"
    )
    generate_parser.add_argument(
        "spec", help='generator spec "family:key=value,..." or preset name'
    )
    generate_parser.add_argument("--out", metavar="FILE", default=None,
                                 help="write the topology as JSON")
    generate_parser.add_argument("--params", action="store_true",
                                 help="embed calibrated HBSP^k params in --out")
    generate_parser.add_argument("--matrix-out", metavar="FILE", default=None,
                                 help="write the synthesized probe matrix "
                                 "(.json or .npz)")
    generate_parser.add_argument("--noise", type=float, default=0.0,
                                 help="multiplicative noise sigma for "
                                 "--matrix-out (default 0)")
    generate_parser.add_argument("--seed", type=int, default=0,
                                 help="noise seed (default 0)")
    discover_parser = topology_sub.add_parser(
        "discover", help="recover a hierarchy from a probe matrix"
    )
    discover_parser.add_argument("--matrix", metavar="FILE", default=None,
                                 help="probe matrix file (.json or .npz)")
    discover_parser.add_argument("--spec", default=None,
                                 help="synthesize the matrix from this "
                                 "generator/preset spec instead (round-trip "
                                 "demo: scores recovery against the truth)")
    discover_parser.add_argument("--method", default="auto",
                                 choices=["auto", "linkage", "bands"])
    discover_parser.add_argument("--rel-tol", type=float, default=0.3,
                                 help="level-cut relative tolerance "
                                 "(default 0.3)")
    discover_parser.add_argument("--noise", type=float, default=0.0,
                                 help="noise sigma applied with --spec")
    discover_parser.add_argument("--seed", type=int, default=0,
                                 help="noise seed (default 0)")
    discover_parser.add_argument("--out", metavar="FILE", default=None,
                                 help="write the recovered topology (+params) "
                                 "as JSON")
    inspect_parser = topology_sub.add_parser(
        "inspect", help="summarise a topology JSON or probe-matrix file"
    )
    inspect_parser.add_argument("file")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "describe":
            return _cmd_describe(args.preset)
        if args.command == "calibrate":
            return _cmd_calibrate(
                args.preset, fit=args.fit, out=args.out, source=args.source
            )
        if args.command == "probe":
            return _cmd_probe(args.preset)
        if args.command == "run":
            return _cmd_run(
                args.collective, args.preset, args.n, args.root,
                args.workload, args.gantt, seed=args.seed,
                faults=args.faults, retries=args.retries,
                send_timeout=args.send_timeout,
                trace_out=args.trace_out, metrics_out=args.metrics_out,
                obs_summary=args.obs_summary, runs_out=args.runs_out,
                schedule=args.schedule,
            )
        if args.command == "tune":
            return _cmd_tune(
                args.collective, args.preset, args.n, args.root,
                args.force, args.shortlist,
            )
        if args.command == "cache":
            return _cmd_cache(args.cache_action, args.max_bytes)
        if args.command == "serve":
            return _cmd_serve(
                args.config, seed=args.seed, duration=args.duration,
                rate=args.rate, jobs=args.jobs, cache_dir=args.cache_dir,
                dynamics=args.dynamics,
                trace_out=args.trace_out, metrics_out=args.metrics_out,
                obs_summary=args.obs_summary, runs_out=args.runs_out,
            )
        if args.command == "topology":
            if args.topology_command == "generate":
                return _cmd_topology_generate(
                    args.spec, args.out, args.matrix_out, args.noise,
                    args.seed, args.params,
                )
            if args.topology_command == "discover":
                return _cmd_topology_discover(
                    args.matrix, args.spec, args.method, args.rel_tol,
                    args.noise, args.seed, args.out,
                )
            if args.topology_command == "inspect":
                return _cmd_topology_inspect(args.file)
        if args.command == "experiment":
            return _cmd_experiment(
                args.id, plot=args.plot, seed=args.seed, jobs=args.jobs,
                cache_dir=args.cache_dir,
                trace_out=args.trace_out, metrics_out=args.metrics_out,
                obs_summary=args.obs_summary, runs_out=args.runs_out,
                schedule=args.schedule,
            )
    except ReproError as error:
        parser.exit(2, f"error: {error}\n")
    return 0  # pragma: no cover - argparse guarantees a command
