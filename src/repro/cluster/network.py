"""Network specifications.

A :class:`NetworkSpec` describes the communication medium joining the
children of one cluster node: per-byte gap on the wire, per-message
latency, and the cost structure of a barrier synchronisation over the
cluster (the model's ``L_{i,j}``).

Hierarchy enters through these specs: a campus backbone has a larger
gap/latency/sync cost than a machine-room LAN, which in turn is slower
than an SMP bus.  In multi-level heterogeneous environments these costs
"can differ by an order of magnitude or more" (Section 1) — the presets
in :mod:`repro.cluster.presets` follow that guidance.
"""

from __future__ import annotations

import dataclasses

from repro.util.validation import check_non_negative, check_positive_int

__all__ = ["NetworkSpec"]


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """Immutable description of one communication network.

    Parameters
    ----------
    name:
        Label (e.g. ``"ethernet-100"``, ``"campus-atm"``).
    gap:
        Seconds per byte the medium itself needs.  The effective
        per-byte time at an endpoint is ``max(machine.nic_gap, gap)`` —
        a slow wire caps a fast NIC and vice versa.
    latency:
        One-way message latency in seconds (propagation + switching).
    sync_base:
        Fixed virtual seconds per barrier over this network.
    sync_per_member:
        Additional virtual seconds per barrier participant; barrier
        cost for an ``m``-member cluster is
        ``sync_base + sync_per_member * m``.
    """

    name: str
    gap: float = 0.0
    latency: float = 1e-4
    sync_base: float = 1e-3
    sync_per_member: float = 2e-4

    def __post_init__(self) -> None:
        if not self.name:
            from repro.errors import ValidationError

            raise ValidationError("NetworkSpec.name must be non-empty")
        check_non_negative("gap", self.gap)
        check_non_negative("latency", self.latency)
        check_non_negative("sync_base", self.sync_base)
        check_non_negative("sync_per_member", self.sync_per_member)

    def sync_cost(self, members: int) -> float:
        """Barrier cost ``L`` for a cluster of ``members`` machines."""
        members = check_positive_int("members", members)
        return self.sync_base + self.sync_per_member * members

    def effective_gap(self, nic_gap: float) -> float:
        """Per-byte time at an endpoint with the given NIC gap."""
        return max(self.gap, nic_gap)

    def scaled(self, factor: float, name: str | None = None) -> "NetworkSpec":
        """A copy of this network ``factor`` times faster."""
        if factor <= 0:
            from repro.errors import ValidationError

            raise ValidationError(f"factor must be > 0, got {factor!r}")
        return dataclasses.replace(
            self,
            name=name if name is not None else f"{self.name}x{factor:g}",
            gap=self.gap / factor,
            latency=self.latency / factor,
            sync_base=self.sync_base / factor,
            sync_per_member=self.sync_per_member / factor,
        )
