"""Save and load cluster topologies as plain dictionaries / JSON.

A calibrated machine description is an asset worth versioning (the
paper's experiments are only meaningful relative to a fixed testbed).
This module round-trips :class:`~repro.cluster.ClusterTopology` through
JSON-compatible dictionaries, preserving machine/network parameters
(including the per-machine speed vector — every :class:`MachineSpec`
field is kept) and the pair-multiplier extension.

Schema ``repro.cluster/2`` additionally carries an optional calibrated
:class:`~repro.model.HBSPParams` tree (``dumps(topology, params=...)``
/ :func:`loads_with_params`), so a discovered machine
(:mod:`repro.cluster.discover`) serialises losslessly: structure,
specs, *and* the per-level model parameters derived from them.
Version-1 documents load unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import TopologyError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.model.params import HBSPParams

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "topology_hash",
    "params_to_dict",
    "params_from_dict",
    "dumps",
    "loads",
    "loads_with_params",
]

_SCHEMA_V1 = "repro.cluster/1"
_SCHEMA = "repro.cluster/2"
_KNOWN_SCHEMAS = (_SCHEMA_V1, _SCHEMA)


def _machine_to_dict(spec: MachineSpec) -> dict:
    return {"kind": "machine", **dataclasses.asdict(spec)}


def _network_to_dict(spec: NetworkSpec) -> dict:
    return dataclasses.asdict(spec)


def _node_to_dict(node: Cluster | MachineSpec) -> dict:
    if isinstance(node, MachineSpec):
        return _machine_to_dict(node)
    return {
        "kind": "cluster",
        "name": node.name,
        "network": _network_to_dict(node.network),
        "children": [_node_to_dict(child) for child in node.children],
    }


def topology_to_dict(
    topology: ClusterTopology, *, params: "HBSPParams | None" = None
) -> dict:
    """Serialise a topology (structure, specs, pair multipliers).

    Pass ``params`` (a calibrated :class:`~repro.model.HBSPParams`) to
    embed the per-level model parameters alongside the structure.
    """
    data = {
        "schema": _SCHEMA,
        "root": _node_to_dict(topology.root),
        "pair_multipliers": [
            {"a": topology.machines[a].name, "b": topology.machines[b].name, "factor": f}
            for (a, b), f in sorted(topology._pair_multipliers.items())
        ],
    }
    if params is not None:
        data["params"] = params_to_dict(params)
    return data


def params_to_dict(params: "HBSPParams") -> dict:
    """Serialise an :class:`~repro.model.HBSPParams` tree.

    The ``(i, j)`` node keys become ``"i,j"`` strings (JSON objects
    cannot key on tuples).
    """

    def keyed(mapping: t.Mapping[tuple[int, int], t.Any]) -> dict[str, t.Any]:
        return {f"{i},{j}": value for (i, j), value in sorted(mapping.items())}

    return {
        "k": params.k,
        "g": params.g,
        "m": list(params.m),
        "r": keyed(params.r),
        "L": keyed(params.L),
        "c": keyed(params.c),
        "fan_out": keyed(params.fan_out),
    }


def params_from_dict(data: dict) -> "HBSPParams":
    """Rebuild an :class:`~repro.model.HBSPParams` from :func:`params_to_dict`."""
    from repro.model.params import HBSPParams

    def unkeyed(mapping: dict[str, t.Any], cast: type) -> dict[tuple[int, int], t.Any]:
        out = {}
        for key, value in mapping.items():
            i, _, j = key.partition(",")
            out[(int(i), int(j))] = cast(value)
        return out

    return HBSPParams(
        k=int(data["k"]),
        g=float(data["g"]),
        m=tuple(int(v) for v in data["m"]),
        r=unkeyed(data["r"], float),
        L=unkeyed(data["L"], float),
        c=unkeyed(data["c"], float),
        fan_out=unkeyed(data["fan_out"], int),
    )


def _node_from_dict(data: dict) -> Cluster | MachineSpec:
    kind = data.get("kind")
    if kind == "machine":
        fields = {k: v for k, v in data.items() if k != "kind"}
        return MachineSpec(**fields)
    if kind == "cluster":
        return Cluster(
            data["name"],
            NetworkSpec(**data["network"]),
            [_node_from_dict(child) for child in data["children"]],
        )
    raise TopologyError(f"unknown node kind {kind!r}")


def topology_from_dict(data: dict) -> ClusterTopology:
    """Rebuild a topology serialised by :func:`topology_to_dict`.

    Accepts both schema versions; an embedded ``params`` block is
    ignored here — use :func:`loads_with_params` to recover it.
    """
    if data.get("schema") not in _KNOWN_SCHEMAS:
        raise TopologyError(
            f"unsupported schema {data.get('schema')!r} "
            f"(expected one of {_KNOWN_SCHEMAS!r})"
        )
    root = _node_from_dict(data["root"])
    topology = ClusterTopology(root)
    for entry in data.get("pair_multipliers", ()):
        topology.set_pair_multiplier(
            topology.machine_id(entry["a"]),
            topology.machine_id(entry["b"]),
            entry["factor"],
        )
    return topology


def topology_hash(
    source: "ClusterTopology | t.Mapping[str, t.Any] | str",
    *,
    params: "HBSPParams | None" = None,
) -> str:
    """Canonical sha256 hash of a topology description.

    The hash keys the auto-tuner's persistent decision cache, so it
    must be *stable* where the content is equal and *discriminating*
    where it is not:

    * JSON dict/key ordering never matters (canonical ``sort_keys``
      serialisation with fixed separators);
    * the ``schema`` marker is excluded, so a v1 document and its v2
      re-serialisation hash identically (absent ``pair_multipliers``
      normalises to empty, absent ``params`` to omitted);
    * embedded calibrated params *do* contribute — the same structure
      calibrated differently tunes differently, so it must hash
      differently.

    Accepts a live :class:`~repro.cluster.ClusterTopology` (optionally
    with ``params`` to embed), an already-serialised dictionary, or a
    JSON string.
    """
    if isinstance(source, ClusterTopology):
        data: dict = topology_to_dict(source, params=params)
    elif isinstance(source, str):
        data = json.loads(source)
    else:
        if params is not None:
            raise TopologyError(
                "params can only be supplied with a ClusterTopology source"
            )
        data = dict(source)
    if data.get("schema") not in _KNOWN_SCHEMAS:
        raise TopologyError(
            f"unsupported schema {data.get('schema')!r} "
            f"(expected one of {_KNOWN_SCHEMAS!r})"
        )
    canonical = {key: value for key, value in data.items() if key != "schema"}
    if not canonical.get("pair_multipliers"):
        canonical["pair_multipliers"] = []
    if canonical.get("params") is None:
        canonical.pop("params", None)
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dumps(
    topology: ClusterTopology,
    *,
    params: "HBSPParams | None" = None,
    indent: int | None = 2,
) -> str:
    """Serialise a topology (and optionally its params) to JSON."""
    return json.dumps(
        topology_to_dict(topology, params=params), indent=indent, sort_keys=True
    )


def loads(text: str) -> ClusterTopology:
    """Rebuild a topology from :func:`dumps` output."""
    return topology_from_dict(json.loads(text))


def loads_with_params(text: str) -> "tuple[ClusterTopology, HBSPParams | None]":
    """Rebuild a topology and its embedded params (``None`` if absent)."""
    data = json.loads(text)
    topology = topology_from_dict(data)
    params = params_from_dict(data["params"]) if "params" in data else None
    return topology, params
