"""Save and load cluster topologies as plain dictionaries / JSON.

A calibrated machine description is an asset worth versioning (the
paper's experiments are only meaningful relative to a fixed testbed).
This module round-trips :class:`~repro.cluster.ClusterTopology` through
JSON-compatible dictionaries, preserving machine/network parameters and
the pair-multiplier extension.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import TopologyError

__all__ = ["topology_to_dict", "topology_from_dict", "dumps", "loads"]

_SCHEMA = "repro.cluster/1"


def _machine_to_dict(spec: MachineSpec) -> dict:
    return {"kind": "machine", **dataclasses.asdict(spec)}


def _network_to_dict(spec: NetworkSpec) -> dict:
    return dataclasses.asdict(spec)


def _node_to_dict(node: Cluster | MachineSpec) -> dict:
    if isinstance(node, MachineSpec):
        return _machine_to_dict(node)
    return {
        "kind": "cluster",
        "name": node.name,
        "network": _network_to_dict(node.network),
        "children": [_node_to_dict(child) for child in node.children],
    }


def topology_to_dict(topology: ClusterTopology) -> dict:
    """Serialise a topology (structure, specs, pair multipliers)."""
    return {
        "schema": _SCHEMA,
        "root": _node_to_dict(topology.root),
        "pair_multipliers": [
            {"a": topology.machines[a].name, "b": topology.machines[b].name, "factor": f}
            for (a, b), f in sorted(topology._pair_multipliers.items())
        ],
    }


def _node_from_dict(data: dict) -> Cluster | MachineSpec:
    kind = data.get("kind")
    if kind == "machine":
        fields = {k: v for k, v in data.items() if k != "kind"}
        return MachineSpec(**fields)
    if kind == "cluster":
        return Cluster(
            data["name"],
            NetworkSpec(**data["network"]),
            [_node_from_dict(child) for child in data["children"]],
        )
    raise TopologyError(f"unknown node kind {kind!r}")


def topology_from_dict(data: dict) -> ClusterTopology:
    """Rebuild a topology serialised by :func:`topology_to_dict`."""
    if data.get("schema") != _SCHEMA:
        raise TopologyError(
            f"unsupported schema {data.get('schema')!r} (expected {_SCHEMA!r})"
        )
    root = _node_from_dict(data["root"])
    topology = ClusterTopology(root)
    for entry in data.get("pair_multipliers", ()):
        topology.set_pair_multiplier(
            topology.machine_id(entry["a"]),
            topology.machine_id(entry["b"]),
            entry["factor"],
        )
    return topology


def dumps(topology: ClusterTopology, *, indent: int | None = 2) -> str:
    """Serialise a topology to a JSON string."""
    return json.dumps(topology_to_dict(topology), indent=indent, sort_keys=True)


def loads(text: str) -> ClusterTopology:
    """Rebuild a topology from :func:`dumps` output."""
    return topology_from_dict(json.loads(text))
