"""Hierarchical cluster topologies.

A topology is the paper's tree ``T = (V, E)`` (Section 3.1): machines
are leaves, clusters are internal nodes, the height of the tree is
``k``.  The *level* of a node is ``k - depth``; machines live at level
0, the root cluster at level ``k``.

The topology answers the questions the runtime and the model both need:

* which network do two machines cross? (the network of their lowest
  common ancestor cluster),
* who coordinates a cluster? (its fastest machine, per Section 3.1),
* what are the members/fan-out of each cluster (``m_i``, ``m_{i,j}``)?
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.errors import RoutingError, TopologyError

__all__ = ["Cluster", "ClusterTopology"]

#: A zero-cost network used when normalising singleton clusters.
_SELF_NETWORK = NetworkSpec("self", gap=0.0, latency=0.0, sync_base=0.0, sync_per_member=0.0)


@dataclasses.dataclass(frozen=True)
class Cluster:
    """An internal tree node: a network joining machines and/or clusters.

    Parameters
    ----------
    name:
        Unique cluster label.
    network:
        The :class:`NetworkSpec` joining this cluster's children.
    children:
        Child nodes: :class:`MachineSpec` leaves or nested clusters.
    """

    name: str
    network: NetworkSpec
    children: tuple["Cluster | MachineSpec", ...]

    def __init__(
        self,
        name: str,
        network: NetworkSpec,
        children: t.Sequence["Cluster | MachineSpec"],
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "children", tuple(children))
        if not self.name:
            raise TopologyError("Cluster.name must be non-empty")
        if not isinstance(network, NetworkSpec):
            raise TopologyError(f"Cluster.network must be a NetworkSpec, got {network!r}")
        if not self.children:
            raise TopologyError(f"cluster {name!r} has no children")
        for child in self.children:
            if not isinstance(child, (Cluster, MachineSpec)):
                raise TopologyError(
                    f"cluster {name!r} has invalid child {child!r}; "
                    "children must be Cluster or MachineSpec"
                )

    @property
    def fan_out(self) -> int:
        """Number of direct children (the model's ``m_{i,j}``)."""
        return len(self.children)


class ClusterTopology:
    """An indexed, validated view over a cluster tree.

    Machines are numbered 0..p-1 in left-to-right (DFS) order; clusters
    are numbered in DFS pre-order with the root cluster first.
    """

    def __init__(self, root: Cluster | MachineSpec) -> None:
        if isinstance(root, MachineSpec):
            # A single processor is an HBSP^0 machine; wrap it so the
            # topology always has a root cluster.
            root = Cluster(f"{root.name}-host", _SELF_NETWORK, [root])
        if not isinstance(root, Cluster):
            raise TopologyError(f"topology root must be a Cluster, got {root!r}")
        self.root = root

        self.machines: list[MachineSpec] = []
        self.clusters: list[Cluster] = []
        self._machine_index: dict[str, int] = {}
        self._cluster_index: dict[str, int] = {}
        self._machine_ancestors: list[tuple[int, ...]] = []  # root-first cluster ids
        self._cluster_depth: list[int] = []
        self._cluster_members: list[list[int]] = []
        self._cluster_parent: list[int | None] = []
        self._pair_multipliers: dict[tuple[int, int], float] = {}

        self._walk(root, parent_chain=(), depth=0)
        self._height = max(len(chain) for chain in self._machine_ancestors)
        if len(set(m.name for m in self.machines)) != len(self.machines):
            raise TopologyError("machine names must be unique")

    # -- construction ----------------------------------------------------------
    def _walk(self, node: Cluster, parent_chain: tuple[int, ...], depth: int) -> None:
        if node.name in self._cluster_index:
            raise TopologyError(f"duplicate cluster name {node.name!r}")
        cid = len(self.clusters)
        self.clusters.append(node)
        self._cluster_index[node.name] = cid
        self._cluster_depth.append(depth)
        self._cluster_members.append([])
        self._cluster_parent.append(parent_chain[-1] if parent_chain else None)
        chain = parent_chain + (cid,)
        for child in node.children:
            if isinstance(child, MachineSpec):
                if child.name in self._machine_index:
                    raise TopologyError(f"duplicate machine name {child.name!r}")
                mid = len(self.machines)
                self.machines.append(child)
                self._machine_index[child.name] = mid
                self._machine_ancestors.append(chain)
                for ancestor in chain:
                    self._cluster_members[ancestor].append(mid)
            else:
                self._walk(child, chain, depth + 1)

    # -- basic queries -----------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """Number of machines (the paper's ``p`` / ``m_0``)."""
        return len(self.machines)

    @property
    def height(self) -> int:
        """The paper's ``k``: number of network levels."""
        return self._height

    def machine_id(self, name: str) -> int:
        """Global index of the machine called ``name``."""
        try:
            return self._machine_index[name]
        except KeyError:
            raise TopologyError(f"no machine named {name!r}") from None

    def cluster_id(self, name: str) -> int:
        """Index of the cluster called ``name``."""
        try:
            return self._cluster_index[name]
        except KeyError:
            raise TopologyError(f"no cluster named {name!r}") from None

    def machine(self, index: int) -> MachineSpec:
        """The machine with global index ``index``."""
        return self.machines[index]

    def members(self, cluster: int | str) -> tuple[int, ...]:
        """Machine indices in the subtree of ``cluster``."""
        cid = cluster if isinstance(cluster, int) else self.cluster_id(cluster)
        return tuple(self._cluster_members[cid])

    def cluster_level(self, cluster: int | str) -> int:
        """The paper's level of a cluster node: ``k - depth``."""
        cid = cluster if isinstance(cluster, int) else self.cluster_id(cluster)
        return self._height - self._cluster_depth[cid]

    def child_clusters(self, cluster: int | str) -> tuple[int, ...]:
        """Ids of the direct child clusters of ``cluster``."""
        cid = cluster if isinstance(cluster, int) else self.cluster_id(cluster)
        return tuple(
            i for i, parent in enumerate(self._cluster_parent) if parent == cid
        )

    def machine_cluster(self, machine: int) -> int:
        """Id of the innermost cluster containing ``machine``."""
        return self._machine_ancestors[machine][-1]

    def ancestors(self, machine: int) -> tuple[int, ...]:
        """Cluster ids from the root down to the machine's own cluster."""
        return self._machine_ancestors[machine]

    # -- speed queries -------------------------------------------------------------
    def _speed_key(self, mid: int) -> tuple[float, float, str]:
        spec = self.machines[mid]
        # Faster CPU first; break ties by faster NIC, then by name for
        # full determinism.
        return (-spec.cpu_rate, spec.nic_gap, spec.name)

    def fastest(self, cluster: int | str | None = None) -> int:
        """Index of the fastest machine (of a cluster, or globally).

        This is the coordinator-selection rule of Section 3.1: the
        coordinator of a subtree is its fastest machine; the root
        coordinator is the fastest machine of the entire system.
        """
        candidates = (
            range(self.num_machines) if cluster is None else self.members(cluster)
        )
        return min(candidates, key=self._speed_key)

    def slowest(self, cluster: int | str | None = None) -> int:
        """Index of the slowest machine (of a cluster, or globally)."""
        candidates = (
            range(self.num_machines) if cluster is None else self.members(cluster)
        )
        return max(candidates, key=self._speed_key)

    def coordinator(self, cluster: int | str) -> int:
        """Coordinator machine of ``cluster`` — its fastest member."""
        return self.fastest(cluster)

    def speed_ranking(self) -> list[int]:
        """Machine indices sorted fastest-first (BYTEmark-style ranking)."""
        return sorted(range(self.num_machines), key=self._speed_key)

    def min_nic_gap(self) -> float:
        """NIC gap of the machine with the fastest network injection.

        This is the model's ``g`` (Section 3.3): the rate at which the
        fastest machine can inject packets into the network.
        """
        return min(m.nic_gap for m in self.machines)

    # -- routing -------------------------------------------------------------------
    def lca_cluster(self, a: int, b: int) -> int:
        """Id of the lowest common ancestor cluster of two machines."""
        if not (0 <= a < self.num_machines and 0 <= b < self.num_machines):
            raise RoutingError(f"machine index out of range: {a}, {b}")
        chain_a, chain_b = self._machine_ancestors[a], self._machine_ancestors[b]
        lca = None
        for ca, cb in zip(chain_a, chain_b):
            if ca == cb:
                lca = ca
            else:
                break
        if lca is None:  # pragma: no cover - single root guarantees an LCA
            raise RoutingError(f"no common ancestor for machines {a} and {b}")
        return lca

    def route(self, a: int, b: int) -> tuple[NetworkSpec, int]:
        """The network (and its level) crossed by a message ``a -> b``.

        Per the hierarchical model, a message between machines in
        different subtrees traverses the network of their lowest common
        ancestor cluster.  Returns ``(network, level)``.
        """
        lca = self.lca_cluster(a, b)
        return self.clusters[lca].network, self.cluster_level(lca)

    def pair_multiplier(self, a: int, b: int) -> float:
        """Optional per-destination cost multiplier (paper §6 extension)."""
        return self._pair_multipliers.get((min(a, b), max(a, b)), 1.0)

    def set_pair_multiplier(self, a: int, b: int, factor: float) -> None:
        """Scale all traffic between machines ``a`` and ``b`` by ``factor``.

        Implements the paper's future-work extension of ``r_{i,j}`` to
        per-destination communication costs.
        """
        if factor <= 0:
            raise TopologyError(f"pair multiplier must be > 0, got {factor!r}")
        if a == b:
            raise TopologyError("pair multiplier needs two distinct machines")
        self._pair_multipliers[(min(a, b), max(a, b))] = float(factor)

    # -- transformations --------------------------------------------------------------
    def normalized(self) -> "ClusterTopology":
        """Return a topology where every machine sits at depth ``k``.

        Machines attached above the deepest level (like the lone SGI
        workstation in Figure 1, which is both an HBSP^1 machine and a
        level-0 processor) are wrapped in chains of singleton clusters
        with a zero-cost "self" network, so that every leaf is a level-0
        machine.  Model calibration uses this canonical form.
        """

        def rebuild(node: Cluster | MachineSpec, depth: int) -> Cluster | MachineSpec:
            if isinstance(node, MachineSpec):
                wrapped: Cluster | MachineSpec = node
                for i in range(self._height - depth):
                    wrapped = Cluster(
                        f"{node.name}-self{i}" if i else f"{node.name}-self",
                        _SELF_NETWORK,
                        [wrapped],
                    )
                return wrapped
            return Cluster(
                node.name,
                node.network,
                [rebuild(child, depth + 1) for child in node.children],
            )

        out = ClusterTopology(t.cast(Cluster, rebuild(self.root, 0)))
        out._pair_multipliers = dict(self._pair_multipliers)
        return out

    def to_networkx(self):
        """Export the tree as a :class:`networkx.DiGraph` (for analysis).

        Nodes carry ``kind`` (``"cluster"``/``"machine"``), ``level``,
        and the underlying spec object.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for cid, cluster in enumerate(self.clusters):
            graph.add_node(
                f"cluster:{cluster.name}",
                kind="cluster",
                level=self.cluster_level(cid),
                spec=cluster.network,
            )
            parent = self._cluster_parent[cid]
            if parent is not None:
                graph.add_edge(f"cluster:{self.clusters[parent].name}", f"cluster:{cluster.name}")
        for mid, machine in enumerate(self.machines):
            graph.add_node(f"machine:{machine.name}", kind="machine", level=0, spec=machine)
            owner = self.machine_cluster(mid)
            graph.add_edge(f"cluster:{self.clusters[owner].name}", f"machine:{machine.name}")
        return graph

    def describe(self) -> str:
        """A human-readable multi-line summary of the tree."""
        lines = [f"ClusterTopology: k={self.height}, p={self.num_machines}"]

        def walk(node: Cluster, indent: int) -> None:
            pad = "  " * indent
            lines.append(
                f"{pad}[{node.name}] net={node.network.name} "
                f"(gap={node.network.gap:g}, lat={node.network.latency:g})"
            )
            for child in node.children:
                if isinstance(child, MachineSpec):
                    lines.append(
                        f"{pad}  {child.name}: cpu={child.cpu_rate:g}, "
                        f"nic_gap={child.nic_gap:g}"
                    )
                else:
                    walk(child, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ClusterTopology(k={self.height}, p={self.num_machines}, "
            f"clusters={len(self.clusters)})"
        )
