"""Parametric big-machine generators: seeded 10^3-10^4-leaf topologies.

The hand-declared presets (:mod:`repro.cluster.presets`) top out at tens
of machines; every scale item on the roadmap needs clusters three
orders of magnitude larger.  These factories build them
deterministically from a seeded spec:

``fat_tree``
    The classic 3-level datacenter fabric: hosts under edge (rack)
    switches, racks under aggregation pods, pods under a core.
``multi_rack``
    A 2-level machine room: racks of hosts under one spine.
``cloud_spot_mix``
    A 3-level cloud deployment — zones inside regions behind a WAN —
    with a seeded fraction of slower "spot" instances, giving the
    strongly heterogeneous speed vectors the HBSP^k experiments need.
``multicore_nodes``
    Task & Chauhan's extra intra-node level (*A Model for Communication
    in Clusters of Multi-core Machines*): cores share a memory bus
    inside each node, nodes share a rack switch, racks a backbone —
    the shared-memory level is an order of magnitude faster again than
    any LAN, so it appears as its own recovered hierarchy level.

Every generator is pure in ``(parameters, seed)``: speeds are drawn
from a seeded lognormal spread (via :func:`repro.util.rng.derive_seed`,
so results do not depend on ``PYTHONHASHSEED``), and each level uses
one uniform network, which keeps synthesized probe matrices exactly
ultrametric — the property the round-trip recovery tests rely on.

:data:`GENERATORS` maps family names to factories and
:func:`build_generated` parses ``"family:key=value,..."`` spec strings
for the CLI.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import ValidationError
from repro.util.rng import derive_seed
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "fat_tree",
    "multi_rack",
    "cloud_spot_mix",
    "multicore_nodes",
    "GENERATORS",
    "build_generated",
]

#: Fastest generated CPU (matches the preset calibration scale).
_CPU_FAST = 1e8

#: Fastest generated NIC gap (100 Mbit/s-class protocol stack).
_NIC_FAST = 8e-8


def _speed_draws(
    rng: np.random.Generator, count: int, slowdown: float
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded per-machine CPU rates and NIC gaps.

    CPU slowness factors are ``slowdown**u`` with ``u`` uniform — a
    log-uniform spread over ``[1, slowdown]``, matching the geometric
    interpolation the presets use but randomized.  NIC slowness spans
    the testbed's ~1.25x range.
    """
    u = rng.random(count)
    cpus = _CPU_FAST / slowdown**u
    nics = _NIC_FAST * 1.25 ** rng.random(count)
    return cpus, nics


def _host(name: str, cpu_rate: float, nic_gap: float) -> MachineSpec:
    return MachineSpec(
        name=name,
        cpu_rate=float(cpu_rate),
        nic_gap=float(nic_gap),
        pack_cost=2.0,
        unpack_cost=0.8,
        msg_overhead=5000.0,
    )


def fat_tree(
    pods: int = 4,
    racks_per_pod: int = 4,
    hosts_per_rack: int = 8,
    *,
    seed: int = 0,
    slowdown: float = 4.0,
) -> ClusterTopology:
    """A 3-level fat-tree datacenter: core -> pods -> racks -> hosts.

    ``pods * racks_per_pod * hosts_per_rack`` leaves; latencies step
    ~6x per level (rack 20 us, pod 120 us, core 600 us), so each level
    is an unambiguous band for discovery.  ``seed`` drives the
    heterogeneous host speeds; ``slowdown`` is the CPU spread.
    """
    pods = check_positive_int("pods", pods)
    racks_per_pod = check_positive_int("racks_per_pod", racks_per_pod)
    hosts_per_rack = check_positive_int("hosts_per_rack", hosts_per_rack)
    check_positive("slowdown", slowdown)
    rack_net = NetworkSpec(
        "ft-rack", gap=4e-8, latency=2e-5, sync_base=1e-4, sync_per_member=3e-5
    )
    pod_net = NetworkSpec(
        "ft-pod", gap=6e-8, latency=1.2e-4, sync_base=6e-4, sync_per_member=1.8e-4
    )
    core_net = NetworkSpec(
        "ft-core", gap=1e-7, latency=6e-4, sync_base=3e-3, sync_per_member=9e-4
    )
    total = pods * racks_per_pod * hosts_per_rack
    rng = np.random.default_rng(derive_seed(seed, "discover-gen", "fat_tree"))
    cpus, nics = _speed_draws(rng, total, slowdown)
    index = 0
    pod_nodes = []
    for p in range(pods):
        rack_nodes = []
        for r in range(racks_per_pod):
            hosts = []
            for h in range(hosts_per_rack):
                hosts.append(_host(f"p{p}r{r}h{h}", cpus[index], nics[index]))
                index += 1
            rack_nodes.append(Cluster(f"p{p}-rack{r}", rack_net, hosts))
        pod_nodes.append(Cluster(f"pod{p}", pod_net, rack_nodes))
    return ClusterTopology(Cluster("ft-core", core_net, pod_nodes))


def multi_rack(
    racks: int = 8,
    hosts_per_rack: int = 16,
    *,
    seed: int = 0,
    slowdown: float = 4.0,
) -> ClusterTopology:
    """A 2-level machine room: ``racks`` racks of hosts under one spine.

    Latencies: rack 20 us, spine 200 us.  Seeded heterogeneous speeds
    as in :func:`fat_tree`.
    """
    racks = check_positive_int("racks", racks)
    hosts_per_rack = check_positive_int("hosts_per_rack", hosts_per_rack)
    check_positive("slowdown", slowdown)
    rack_net = NetworkSpec(
        "mr-rack", gap=4e-8, latency=2e-5, sync_base=1e-4, sync_per_member=3e-5
    )
    spine_net = NetworkSpec(
        "mr-spine", gap=8e-8, latency=2e-4, sync_base=1e-3, sync_per_member=3e-4
    )
    total = racks * hosts_per_rack
    rng = np.random.default_rng(derive_seed(seed, "discover-gen", "multi_rack"))
    cpus, nics = _speed_draws(rng, total, slowdown)
    index = 0
    rack_nodes = []
    for r in range(racks):
        hosts = []
        for h in range(hosts_per_rack):
            hosts.append(_host(f"r{r}h{h}", cpus[index], nics[index]))
            index += 1
        rack_nodes.append(Cluster(f"rack{r}", rack_net, hosts))
    return ClusterTopology(Cluster("spine", spine_net, rack_nodes))


def cloud_spot_mix(
    regions: int = 2,
    zones_per_region: int = 3,
    instances_per_zone: int = 8,
    *,
    seed: int = 0,
    spot_fraction: float = 0.4,
    spot_slowdown: float = 3.0,
    slowdown: float = 2.0,
) -> ClusterTopology:
    """A 3-level cloud: WAN -> regions -> zones -> instances.

    Each instance is independently a "spot" instance with probability
    ``spot_fraction`` (seeded), slowed by an extra ``spot_slowdown``
    factor on top of the base ``slowdown`` spread — producing the
    bimodal speed vectors that make coordinator choice matter.
    Latencies: zone 50 us, region 1 ms, WAN 30 ms.
    """
    regions = check_positive_int("regions", regions)
    zones_per_region = check_positive_int("zones_per_region", zones_per_region)
    instances_per_zone = check_positive_int("instances_per_zone", instances_per_zone)
    check_positive("spot_slowdown", spot_slowdown)
    check_positive("slowdown", slowdown)
    if not 0.0 <= spot_fraction <= 1.0:
        raise ValidationError(
            f"spot_fraction must be in [0, 1], got {spot_fraction!r}"
        )
    zone_net = NetworkSpec(
        "cs-zone", gap=4e-8, latency=5e-5, sync_base=2.5e-4, sync_per_member=7.5e-5
    )
    region_net = NetworkSpec(
        "cs-region", gap=1e-7, latency=1e-3, sync_base=5e-3, sync_per_member=1.5e-3
    )
    wan_net = NetworkSpec(
        "cs-wan", gap=2e-6, latency=3e-2, sync_base=1.5e-1, sync_per_member=3e-2
    )
    total = regions * zones_per_region * instances_per_zone
    rng = np.random.default_rng(derive_seed(seed, "discover-gen", "cloud_spot_mix"))
    cpus, nics = _speed_draws(rng, total, slowdown)
    spot = rng.random(total) < spot_fraction
    cpus = np.where(spot, cpus / spot_slowdown, cpus)
    index = 0
    region_nodes = []
    for g in range(regions):
        zone_nodes = []
        for z in range(zones_per_region):
            instances = []
            for i in range(instances_per_zone):
                kind = "spot" if spot[index] else "od"
                instances.append(
                    _host(f"g{g}z{z}-{kind}{i}", cpus[index], nics[index])
                )
                index += 1
            zone_nodes.append(Cluster(f"g{g}-zone{z}", zone_net, instances))
        region_nodes.append(Cluster(f"region{g}", region_net, zone_nodes))
    return ClusterTopology(Cluster("cloud", wan_net, region_nodes))


def multicore_nodes(
    racks: int = 4,
    nodes_per_rack: int = 8,
    cores_per_node: int = 4,
    *,
    seed: int = 0,
    slowdown: float = 2.0,
) -> ClusterTopology:
    """A 3-level cluster of multi-core machines (Task & Chauhan).

    The innermost level is the intra-node shared-memory bus (cores of
    one node communicate at memory speed, ~3 us), then the rack switch
    (~150 us), then the backbone (~1.2 ms).  Cores of one node share a
    CPU speed draw — heterogeneity lives between nodes, as on real
    mixed-generation clusters.
    """
    racks = check_positive_int("racks", racks)
    nodes_per_rack = check_positive_int("nodes_per_rack", nodes_per_rack)
    cores_per_node = check_positive_int("cores_per_node", cores_per_node)
    check_positive("slowdown", slowdown)
    bus_net = NetworkSpec(
        "mc-bus", gap=2e-9, latency=3e-6, sync_base=2e-5, sync_per_member=4e-6
    )
    rack_net = NetworkSpec(
        "mc-rack", gap=8e-8, latency=1.5e-4, sync_base=8e-4, sync_per_member=2.5e-4
    )
    backbone_net = NetworkSpec(
        "mc-backbone", gap=2.5e-7, latency=1.2e-3, sync_base=6e-3,
        sync_per_member=1.2e-3,
    )
    node_count = racks * nodes_per_rack
    rng = np.random.default_rng(derive_seed(seed, "discover-gen", "multicore_nodes"))
    node_cpus, node_nics = _speed_draws(rng, node_count, slowdown)
    node_index = 0
    rack_nodes = []
    for r in range(racks):
        nodes = []
        for n in range(nodes_per_rack):
            cores = [
                _host(
                    f"r{r}n{n}c{c}",
                    node_cpus[node_index],
                    node_nics[node_index],
                )
                for c in range(cores_per_node)
            ]
            nodes.append(Cluster(f"r{r}-node{n}", bus_net, cores))
            node_index += 1
        rack_nodes.append(Cluster(f"rack{r}", rack_net, nodes))
    return ClusterTopology(Cluster("backbone", backbone_net, rack_nodes))


#: Registry of generator families, name -> factory.
GENERATORS: dict[str, t.Callable[..., ClusterTopology]] = {
    "fat_tree": fat_tree,
    "multi_rack": multi_rack,
    "cloud_spot_mix": cloud_spot_mix,
    "multicore_nodes": multicore_nodes,
}


def _parse_value(raw: str) -> int | float:
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            raise ValidationError(
                f"generator arguments must be numbers, got {raw!r}"
            ) from None


def build_generated(spec: str) -> ClusterTopology:
    """Build a generated topology from a ``"family:key=value,..."`` spec.

    Examples: ``"fat_tree"`` (all defaults),
    ``"multi_rack:racks=32,hosts_per_rack=32,seed=7"``,
    ``"cloud_spot_mix:spot_fraction=0.25"``.  Family names and keyword
    names are exactly the generator signatures in :data:`GENERATORS`.
    """
    family, _, arg_text = spec.partition(":")
    family = family.strip()
    if family not in GENERATORS:
        known = ", ".join(sorted(GENERATORS))
        raise ValidationError(f"unknown generator {family!r}; known: {known}")
    kwargs: dict[str, int | float] = {}
    if arg_text.strip():
        for item in arg_text.split(","):
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValidationError(
                    f"bad generator argument {item!r}; expected key=value"
                )
            kwargs[key.strip()] = _parse_value(raw.strip())
    try:
        return GENERATORS[family](**kwargs)
    except TypeError as exc:
        raise ValidationError(f"bad arguments for {family!r}: {exc}") from None
