"""Rebuild a :class:`~repro.cluster.ClusterTopology` from inference output.

Given the level partitions recovered by :func:`repro.cluster.discover.
discover` and the probe matrix they came from, this module estimates
the physical-ish specs the rest of the library consumes:

* **per-machine NIC gaps** — within each innermost cluster the measured
  pair gap is ``e_i + e_j`` (inject + drain), a classic additive model
  solved exactly per cluster: with ``S_i = sum_{j != i} g_ij`` and
  ``E = sum S_i / (2m - 2)``, each endpoint is
  ``e_i = (S_i - E) / (m - 2)`` for ``m > 2`` (pairs split evenly, and
  singletons borrow their cheapest cross-cluster estimate);
* **per-cluster networks** — the network latency of a discovered
  cluster is the median distance over pairs first joined at that
  cluster; the wire gap is only observable when it exceeds the
  endpoint NICs (``g_ij = 2w`` then), detected via the median residual
  ``g_ij - e_i - e_j``;
* **barrier costs** — not observable from a latency/bandwidth campaign,
  so ``L`` is estimated from the level latency with the documented
  heuristic factors (:data:`SYNC_BASE_FACTOR`,
  :data:`SYNC_MEMBER_FACTOR`) — the same shape the hand-declared
  presets use (sync costs a small multiple of the wire latency).

Structural round-trips are exact: partitions of the reconstructed
topology equal the discovered partitions, and singleton groups are
passed through unwrapped so a lone machine at a high level (Figure 1's
SGI) reconstructs as declared.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import DiscoveryError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.discover.matrix import ProbeMatrix

__all__ = ["reconstruct_topology", "SYNC_BASE_FACTOR", "SYNC_MEMBER_FACTOR"]

#: Estimated barrier base cost as a multiple of the level's latency
#: (presets sit around 5-10x: ethernet-100 has sync_base/latency ~ 5.3,
#: campus-atm 5.0, wan 3.2).
SYNC_BASE_FACTOR = 5.0

#: Estimated per-member barrier cost as a multiple of the latency
#: (presets: ethernet-100 ~ 1.7, campus-atm 1.0, smp-bus 1.3).
SYNC_MEMBER_FACTOR = 1.5

#: Default compute speed when the matrix carries no speed vector.
DEFAULT_CPU_RATE = 1e8

#: Default NIC gap when the matrix is latency-only.
DEFAULT_NIC_GAP = 8e-8

#: Floor for estimated gaps/latencies (estimates can hit exact zero on
#: residual cancellation; specs require positive NIC gaps).
_EPS = 1e-12

#: At most this many member machines per child block feed a cluster's
#: network estimate.  Enumerating every cross pair is O(p^2) at the
#: root (~5 * 10^7 pairs on a 10^4-leaf machine); medians over a
#: deterministic prefix sample are just as stable and keep
#: reconstruction linear-ish in practice.
REP_CAP = 64


def _estimate_nic_gaps(
    gap: np.ndarray, innermost: t.Sequence[int]
) -> np.ndarray:
    """Per-machine endpoint gap estimates from the innermost partition."""
    p = gap.shape[0]
    sym = (gap + gap.T) * 0.5
    estimates = np.full(p, -1.0)
    groups: dict[int, list[int]] = {}
    for machine, label in enumerate(innermost):
        groups.setdefault(label, []).append(machine)
    for members in groups.values():
        m = len(members)
        if m == 1:
            continue
        idx = np.asarray(members)
        sub = sym[np.ix_(idx, idx)]
        if m == 2:
            estimates[idx] = sub[0, 1] / 2.0
            continue
        sums = sub.sum(axis=1)
        total = sums.sum() / (2.0 * (m - 1))
        estimates[idx] = (sums - total) / (m - 2)
    unresolved = np.flatnonzero(estimates < 0)
    resolved = np.flatnonzero(estimates >= 0)
    for machine in unresolved:
        if resolved.size:
            # Cheapest cross link to an already-estimated machine, minus
            # that machine's own endpoint share.
            candidates = sym[machine, resolved] - estimates[resolved]
            estimates[machine] = float(candidates.min())
        else:
            others = np.flatnonzero(np.arange(p) != machine)
            estimates[machine] = float(sym[machine, others].min()) / 2.0
    return np.maximum(estimates, _EPS)


def _network_estimate(
    name: str,
    latencies: np.ndarray,
    residuals: np.ndarray | None,
    pair_gaps: np.ndarray | None,
) -> NetworkSpec:
    """A NetworkSpec estimated from the pairs first joined at a cluster."""
    latency = max(float(np.median(latencies)), 0.0)
    wire_gap = 0.0
    if residuals is not None and residuals.size:
        median_gap = float(np.median(pair_gaps))
        median_residual = float(np.median(residuals))
        if median_gap > 0 and median_residual > 0.05 * median_gap:
            # The wire dominates both endpoints: g_ij = 2w.
            wire_gap = median_gap / 2.0
    base = max(latency, _EPS)
    return NetworkSpec(
        name,
        gap=wire_gap,
        latency=latency,
        sync_base=SYNC_BASE_FACTOR * base,
        sync_per_member=SYNC_MEMBER_FACTOR * base,
    )


def reconstruct_topology(
    matrix: "ProbeMatrix",
    partitions: t.Sequence[t.Sequence[int]],
) -> ClusterTopology:
    """Build the estimated topology for a discovered partition stack.

    ``partitions`` is innermost-first and must end with the trivial
    single-cluster level; each level must coarsen the previous one.
    """
    p = matrix.p
    if not partitions:
        raise DiscoveryError("need at least one partition level")
    if any(len(level) != p for level in partitions):
        raise DiscoveryError("every partition must label all machines")
    if len(set(partitions[-1])) != 1:
        raise DiscoveryError("the outermost partition must be a single cluster")

    speeds = (
        list(matrix.speeds)
        if matrix.speeds is not None
        else [DEFAULT_CPU_RATE] * p
    )
    if matrix.gap is not None:
        gap_raw: np.ndarray | None = matrix.gap
        nic = _estimate_nic_gaps(np.asarray(matrix.gap, dtype=np.float64),
                                 partitions[0])
    else:
        gap_raw = None
        nic = np.full(p, DEFAULT_NIC_GAP)
    lat_raw = matrix.latency

    def _sym_at(mat: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        # Symmetrize only the sampled entries: a full (mat + mat.T) / 2
        # is two extra p*p float64 copies (dominates the 10^4-leaf wall
        # time); fancy-indexing both triangles is O(samples).
        lower = mat[rows, cols].astype(np.float64, copy=False)
        upper = mat[cols, rows].astype(np.float64, copy=False)
        return (lower + upper) * 0.5

    nodes: list[Cluster | MachineSpec] = [
        MachineSpec(name=matrix.names[j], cpu_rate=speeds[j], nic_gap=float(nic[j]))
        for j in range(p)
    ]
    # members[x] = machine ids under current node x (for spec estimation).
    members: list[list[int]] = [[j] for j in range(p)]
    previous = list(range(p))

    for level, labels in enumerate(partitions, start=1):
        groups: dict[int, list[int]] = {}
        for machine, label in enumerate(labels):
            node = previous[machine]
            bucket = groups.setdefault(label, [])
            if node not in bucket:
                bucket.append(node)
        if level > 1 and len(groups) > len(set(previous)):
            raise DiscoveryError(
                f"partition at level {level} does not coarsen level {level - 1}"
            )
        new_nodes: list[Cluster | MachineSpec] = []
        new_members: list[list[int]] = []
        node_of_label: dict[int, int] = {}
        for label, children in groups.items():
            node_of_label[label] = len(new_nodes)
            if len(children) == 1:
                # A singleton group adds no structure: carry the child
                # up (a lone machine stays a machine at this level).
                new_nodes.append(nodes[children[0]])
                new_members.append(members[children[0]])
                continue
            child_members = [members[c] for c in children]
            flat = [m for ms in child_members for m in ms]
            # Pairs first joined at this cluster: across child blocks
            # (capped at REP_CAP members per block, see above).
            reps = [np.asarray(ms[:REP_CAP]) for ms in child_members]
            row_blocks, col_blocks = [], []
            for a in range(len(reps)):
                for b in range(a + 1, len(reps)):
                    row_blocks.append(np.repeat(reps[a], reps[b].size))
                    col_blocks.append(np.tile(reps[b], reps[a].size))
            rows_arr = np.concatenate(row_blocks)
            cols_arr = np.concatenate(col_blocks)
            residuals = None
            pair_gaps = None
            if gap_raw is not None:
                pair_gaps = _sym_at(gap_raw, rows_arr, cols_arr)
                residuals = pair_gaps - nic[rows_arr] - nic[cols_arr]
            network = _network_estimate(
                f"net-l{level}-{len(new_nodes)}",
                _sym_at(lat_raw, rows_arr, cols_arr),
                residuals,
                pair_gaps,
            )
            new_nodes.append(
                Cluster(
                    f"disc-l{level}-{len(new_nodes)}",
                    network,
                    [nodes[c] for c in children],
                )
            )
            new_members.append(flat)
        nodes = new_nodes
        members = new_members
        previous = [node_of_label[label] for label in labels]

    root = nodes[0]
    if isinstance(root, MachineSpec):
        # A single-machine discovery: ClusterTopology wraps it.
        return ClusterTopology(root)
    return ClusterTopology(root)
