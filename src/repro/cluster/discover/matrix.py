"""Pairwise probe matrices: the measurement input to hierarchy inference.

A :class:`ProbeMatrix` is what a network-probing campaign produces: for
every ordered machine pair, a per-message **latency** (seconds) and a
per-byte **gap** (seconds/byte, the inverse of bandwidth).  This is the
data representation of Estefanel & Mounié's *Identifying Logical
Homogeneous Clusters for Efficient Wide-Area Communications*: the
hierarchy is not declared, it is *recovered* from these measurements
(:func:`repro.cluster.discover.discover`).

Three ways to obtain one:

* :func:`synthesize` — the analytic matrix of a known
  :class:`~repro.cluster.ClusterTopology` (optionally with seeded
  multiplicative noise), used by the round-trip validation experiments;
* :func:`repro.model.probe.probe_matrix` — measured by running an
  all-pairs ping program on the simulated machine in a single run;
* :meth:`ProbeMatrix.load` — from a ``.json`` or ``.npz`` file.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t
from pathlib import Path

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import DiscoveryError
from repro.util.rng import derive_seed

__all__ = ["ProbeMatrix", "synthesize"]

_SCHEMA = "repro.probe-matrix/1"


@dataclasses.dataclass(frozen=True)
class ProbeMatrix:
    """Dense all-pairs link measurements over ``p`` machines.

    Attributes
    ----------
    names:
        Machine names, indexing rows/columns.
    latency:
        ``(p, p)`` array of per-message latencies in seconds
        (``latency[i, j]`` = fixed cost of one ``i -> j`` message);
        the diagonal is zero.
    gap:
        Optional ``(p, p)`` array of per-byte gaps in seconds/byte
        (``None`` for latency-only campaigns — inference works on
        latency alone, but machine NIC speeds cannot be estimated).
    speeds:
        Optional per-machine compute-speed estimates (BYTEmark-style
        scores / ``cpu_rate`` values) carried alongside the link data
        so a reconstructed topology keeps its speed vector.
    """

    names: tuple[str, ...]
    latency: np.ndarray
    gap: np.ndarray | None = None
    speeds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        latency = np.asarray(self.latency)
        object.__setattr__(self, "latency", latency)
        p = len(self.names)
        if p == 0:
            raise DiscoveryError("ProbeMatrix needs at least one machine")
        if len(set(self.names)) != p:
            raise DiscoveryError("ProbeMatrix machine names must be unique")
        if latency.shape != (p, p):
            raise DiscoveryError(
                f"latency must be ({p}, {p}) for {p} machines, got {latency.shape}"
            )
        if np.any(latency < 0):
            raise DiscoveryError("latencies must be non-negative")
        if self.gap is not None:
            gap = np.asarray(self.gap)
            object.__setattr__(self, "gap", gap)
            if gap.shape != (p, p):
                raise DiscoveryError(
                    f"gap must be ({p}, {p}) for {p} machines, got {gap.shape}"
                )
            if np.any(gap < 0):
                raise DiscoveryError("gaps must be non-negative")
        if self.speeds is not None:
            object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))
            if len(self.speeds) != p:
                raise DiscoveryError(
                    f"speeds must have {p} entries, got {len(self.speeds)}"
                )

    @property
    def p(self) -> int:
        """Number of machines."""
        return len(self.names)

    def dissimilarity(self, ref_bytes: float = 0.0) -> np.ndarray:
        """The symmetric distance matrix inference clusters on.

        ``d_{ij} = (latency_{ij} + ref_bytes * gap_{ij}`` symmetrized
        as the mean of both directions, diagonal forced to zero).  The
        default ``ref_bytes = 0`` clusters on latency alone — the
        quantity that separates hierarchy levels by an order of
        magnitude (Section 1) — while the gap matrix still informs the
        reconstructed per-machine NIC speeds.
        """
        d = self.latency
        if ref_bytes:
            if self.gap is None:
                raise DiscoveryError(
                    "ref_bytes > 0 needs a gap matrix (this one is latency-only)"
                )
            d = d + float(ref_bytes) * self.gap
        d = (d + d.T) * d.dtype.type(0.5)
        np.fill_diagonal(d, 0.0)
        return d

    def with_noise(self, sigma: float, *, seed: int = 0) -> "ProbeMatrix":
        """A copy with symmetric multiplicative lognormal noise applied.

        Every off-diagonal entry is scaled by ``exp(sigma * z)`` with
        ``z`` standard normal (median factor 1.0); the factor for
        ``(i, j)`` equals the one for ``(j, i)``, as a real ping-pong
        probe would see.  ``sigma = 0`` returns ``self`` unchanged.
        Deterministic in ``seed``.
        """
        if sigma < 0:
            raise DiscoveryError(f"noise sigma must be >= 0, got {sigma!r}")
        if sigma == 0:
            return self
        out: dict[str, np.ndarray] = {}
        for label, matrix in (("latency", self.latency), ("gap", self.gap)):
            if matrix is None:
                continue
            rng = np.random.default_rng(derive_seed(seed, "probe-noise", label))
            z = rng.standard_normal(matrix.shape)
            z = np.triu(z, 1)
            z = z + z.T
            out[label] = (matrix * np.exp(sigma * z)).astype(matrix.dtype)
        return dataclasses.replace(
            self, latency=out["latency"], gap=out.get("gap")
        )

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible dictionary (lists of floats)."""
        data: dict[str, t.Any] = {
            "schema": _SCHEMA,
            "names": list(self.names),
            "latency": [[float(v) for v in row] for row in self.latency],
        }
        if self.gap is not None:
            data["gap"] = [[float(v) for v in row] for row in self.gap]
        if self.speeds is not None:
            data["speeds"] = list(self.speeds)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeMatrix":
        """Rebuild a matrix serialised by :meth:`to_dict`."""
        if data.get("schema") != _SCHEMA:
            raise DiscoveryError(
                f"unsupported probe-matrix schema {data.get('schema')!r} "
                f"(expected {_SCHEMA!r})"
            )
        return cls(
            names=tuple(data["names"]),
            latency=np.asarray(data["latency"], dtype=np.float64),
            gap=(
                np.asarray(data["gap"], dtype=np.float64)
                if "gap" in data else None
            ),
            speeds=tuple(data["speeds"]) if "speeds" in data else None,
        )

    def save(self, path: str | Path) -> None:
        """Write the matrix to ``path`` (``.npz`` binary or ``.json``)."""
        path = Path(path)
        if path.suffix == ".npz":
            arrays: dict[str, np.ndarray] = {
                "names": np.asarray(self.names),
                "latency": self.latency,
            }
            if self.gap is not None:
                arrays["gap"] = self.gap
            if self.speeds is not None:
                arrays["speeds"] = np.asarray(self.speeds, dtype=np.float64)
            with path.open("wb") as handle:
                np.savez_compressed(handle, **arrays)
        else:
            path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ProbeMatrix":
        """Read a matrix written by :meth:`save` (``.npz`` or ``.json``)."""
        path = Path(path)
        if path.suffix == ".npz":
            with np.load(path, allow_pickle=False) as data:
                return cls(
                    names=tuple(str(n) for n in data["names"]),
                    latency=data["latency"],
                    gap=data["gap"] if "gap" in data else None,
                    speeds=(
                        tuple(float(s) for s in data["speeds"])
                        if "speeds" in data else None
                    ),
                )
        return cls.from_dict(json.loads(path.read_text()))

    def __repr__(self) -> str:
        kind = "latency+gap" if self.gap is not None else "latency-only"
        return f"ProbeMatrix(p={self.p}, {kind}, dtype={self.latency.dtype})"


def synthesize(
    topology: ClusterTopology,
    *,
    noise: float = 0.0,
    seed: int = 0,
    dtype: t.Any = np.float64,
    include_gap: bool = True,
) -> ProbeMatrix:
    """The analytic probe matrix of a known topology.

    For machines ``i != j`` whose lowest common ancestor cluster uses
    network ``net``:

    * ``latency[i, j] = net.latency`` (the wire's one-way message cost);
    * ``gap[i, j] = net.effective_gap(nic_i) + net.effective_gap(nic_j)``
      (inject + drain, each capped below by the wire's own gap) —
      matching what a two-size ping fit measures on the simulator up to
      CPU pack/unpack costs.

    ``speeds`` carries each machine's true ``cpu_rate``.  Pass
    ``noise > 0`` for seeded multiplicative measurement noise and
    ``dtype=numpy.float32`` to halve memory on 10^4-leaf matrices; set
    ``include_gap=False`` for a latency-only matrix (half the memory
    again — inference does not need the gap).

    The fill is blockwise over the tree (machine ids are contiguous per
    subtree), so a 10^4-leaf matrix synthesizes in seconds.
    """
    p = topology.num_machines
    nic = np.array([m.nic_gap for m in topology.machines], dtype=dtype)
    latency = np.zeros((p, p), dtype=dtype)
    gap = np.zeros((p, p), dtype=dtype) if include_gap else None
    counter = 0

    def walk(node: Cluster | MachineSpec) -> tuple[int, int]:
        nonlocal counter
        if isinstance(node, MachineSpec):
            counter += 1
            return counter - 1, counter
        ranges = [walk(child) for child in node.children]
        net = node.network
        lat = net.latency
        for a in range(len(ranges)):
            a0, a1 = ranges[a]
            for b in range(a + 1, len(ranges)):
                b0, b1 = ranges[b]
                latency[a0:a1, b0:b1] = lat
                latency[b0:b1, a0:a1] = lat
                if gap is not None:
                    eff_a = np.maximum(net.gap, nic[a0:a1])
                    eff_b = np.maximum(net.gap, nic[b0:b1])
                    block = eff_a[:, None] + eff_b[None, :]
                    gap[a0:a1, b0:b1] = block
                    gap[b0:b1, a0:a1] = block.T
        return ranges[0][0], ranges[-1][1]

    walk(topology.root)
    matrix = ProbeMatrix(
        names=tuple(m.name for m in topology.machines),
        latency=latency,
        gap=gap,
        speeds=tuple(m.cpu_rate for m in topology.machines),
    )
    if noise:
        matrix = matrix.with_noise(noise, seed=seed)
    return matrix
