"""Hierarchy discovery: recover HBSP^k trees from pairwise measurements.

The HBSP^k model (and the rest of this library) assumes the cluster
hierarchy is *given*.  This subsystem removes that assumption, after
Estefanel & Mounié (*Identifying Logical Homogeneous Clusters for
Efficient Wide-Area Communications*): measure all-pairs latency and
bandwidth, cluster the matrix agglomeratively, and cut the dendrogram
once per detected cost *band* — statistically indistinguishable levels
merge, order-of-magnitude level gaps (the paper's Section 1 structure)
separate.

Three pillars:

* **inference** — :func:`discover` maps a :class:`ProbeMatrix` (from
  :func:`repro.model.probe.probe_matrix`, from :func:`synthesize`, or
  loaded from JSON/npz) to a :class:`DiscoveryResult` holding the level
  partitions, a reconstructed :class:`~repro.cluster.ClusterTopology`
  and its calibrated :class:`~repro.model.HBSPParams` tree;
* **generators** — :func:`fat_tree`, :func:`multi_rack`,
  :func:`cloud_spot_mix`, and :func:`multicore_nodes` (Task & Chauhan's
  intra-node shared-memory level) build seeded 10^3-10^4-leaf
  heterogeneous topologies;
* **validation** — :func:`topology_partitions`,
  :func:`hierarchy_distance` and :func:`exact_recovery` score a
  recovered hierarchy against the generating truth (round-trip:
  generate -> :func:`synthesize` -> :func:`discover` -> score), driving
  ``repro run discovery`` and the ``repro topology`` CLI.
"""

from repro.cluster.discover.matrix import ProbeMatrix, synthesize
from repro.cluster.discover.infer import (
    DEFAULT_REL_TOL,
    LINKAGE_LIMIT,
    DiscoveryResult,
    discover,
    level_bands,
)
from repro.cluster.discover.reconstruct import reconstruct_topology
from repro.cluster.discover.score import (
    exact_recovery,
    hierarchy_distance,
    rand_index,
    topology_partitions,
)
from repro.cluster.discover.generators import (
    GENERATORS,
    build_generated,
    cloud_spot_mix,
    fat_tree,
    multi_rack,
    multicore_nodes,
)

__all__ = [
    "ProbeMatrix",
    "synthesize",
    "DiscoveryResult",
    "discover",
    "level_bands",
    "DEFAULT_REL_TOL",
    "LINKAGE_LIMIT",
    "reconstruct_topology",
    "topology_partitions",
    "rand_index",
    "hierarchy_distance",
    "exact_recovery",
    "fat_tree",
    "multi_rack",
    "cloud_spot_mix",
    "multicore_nodes",
    "GENERATORS",
    "build_generated",
]
