"""Scoring recovered hierarchies against the ground truth.

Round-trip validation (generate -> synthesize -> discover) needs a
number for "how close is the recovered tree to the true one".  Trees
are compared as their **level partition stacks**: a hierarchy over
``p`` machines is, level by level, a partition of the machine set, so
two hierarchies are compared by pairing their partitions innermost-
first and averaging a partition distance (1 - Rand index) across
levels.  This is the tree-edit-style metric that matches how
:func:`~repro.cluster.discover.discover` itself reports results, and
it is insensitive to cluster naming, child order, and label choice.
"""

from __future__ import annotations

import itertools
import typing as t
from collections import Counter

from repro.cluster.topology import ClusterTopology

__all__ = [
    "topology_partitions",
    "rand_index",
    "hierarchy_distance",
    "exact_recovery",
]

Partition = t.Sequence[int]


def topology_partitions(topology: ClusterTopology) -> tuple[tuple[int, ...], ...]:
    """The level partition stack of a declared topology, innermost first.

    Level ``i`` (1-based, ``i = 1`` innermost) labels each machine by
    the cluster containing it at depth ``k - i`` below the root of the
    normalized tree; the last entry is always the trivial all-in-one
    partition (the root).  Labels are canonical (first-seen order), so
    the output compares directly against
    :attr:`~repro.cluster.discover.DiscoveryResult.partitions`.
    """
    normal = topology.normalized()
    k = normal.height
    chains = [normal.ancestors(mid) for mid in range(normal.num_machines)]
    partitions: list[tuple[int, ...]] = []
    for level in range(1, k + 1):
        # ancestors() is root-first; depth k - level holds level `level`.
        depth = k - level
        labels = [chain[depth] for chain in chains]
        partitions.append(_canonical(labels))
    if not partitions:  # single machine, height 0
        partitions.append((0,) * topology.num_machines)
    return tuple(partitions)


def _canonical(labels: t.Iterable[int]) -> tuple[int, ...]:
    mapping: dict[int, int] = {}
    out = []
    for label in labels:
        if label not in mapping:
            mapping[label] = len(mapping)
        out.append(mapping[label])
    return tuple(out)


def rand_index(a: Partition, b: Partition) -> float:
    """Rand index between two partitions of the same ground set.

    The fraction of machine pairs on which the partitions agree
    (together in both, or separated in both); 1.0 iff the partitions
    are identical up to relabelling.  Computed from the contingency
    table in O(p + cells), no pair enumeration.
    """
    if len(a) != len(b):
        raise ValueError(
            f"partitions label different ground sets ({len(a)} vs {len(b)})"
        )
    n = len(a)
    if n < 2:
        return 1.0
    contingency = Counter(zip(a, b))
    sum_cells = sum(c * (c - 1) // 2 for c in contingency.values())
    sum_a = sum(c * (c - 1) // 2 for c in Counter(a).values())
    sum_b = sum(c * (c - 1) // 2 for c in Counter(b).values())
    total = n * (n - 1) // 2
    # agreements = pairs together in both + pairs apart in both
    return (total + 2 * sum_cells - sum_a - sum_b) / total


def hierarchy_distance(
    truth: t.Sequence[Partition], recovered: t.Sequence[Partition]
) -> float:
    """Mean partition distance between two level stacks (0 = identical).

    Stacks are aligned innermost-first and the shorter one is padded
    with its own outermost (all-in-one) level, so a recovery that
    merges or splits levels is penalised exactly on the levels it got
    wrong.  Each aligned pair contributes ``1 - rand_index``.
    """
    if not truth or not recovered:
        raise ValueError("hierarchy stacks must be non-empty")
    depth = max(len(truth), len(recovered))
    padded_truth = list(truth) + [truth[-1]] * (depth - len(truth))
    padded_rec = list(recovered) + [recovered[-1]] * (depth - len(recovered))
    distances = [
        1.0 - rand_index(x, y)
        for x, y in itertools.zip_longest(padded_truth, padded_rec)
    ]
    return sum(distances) / depth


def exact_recovery(
    truth: t.Sequence[Partition], recovered: t.Sequence[Partition]
) -> bool:
    """True iff both stacks have the same levels and identical partitions.

    Stricter than ``hierarchy_distance == 0``: the stacks must agree on
    the number of levels, not just pad to agreement.
    """
    if len(truth) != len(recovered):
        return False
    return all(
        _canonical(x) == _canonical(y) for x, y in zip(truth, recovered)
    )
