"""Hierarchy inference: probe matrix -> HBSP^k tree.

The algorithm is the one of Estefanel & Mounié (*Identifying Logical
Homogeneous Clusters for Efficient Wide-Area Communications*): machines
whose pairwise communication costs are statistically indistinguishable
belong to the same logical cluster, and the nesting of clusters falls
out of agglomerative clustering of the distance matrix.

Two interchangeable backends produce the level partitions:

``linkage``
    scipy average-linkage over the condensed distance matrix; the
    dendrogram merge heights are grouped into *bands* (the level-cut
    heuristic below) and the tree is cut once per band boundary.
``bands``
    Cuts the distance values themselves into bands and computes the
    connected components at each inter-band threshold directly, one
    representative per discovered cluster.  O(k p^2) with numpy row
    operations — this is the path that takes a 10^4-leaf matrix.

**Level-cut heuristic.**  Sorted distance values are chained into a
band while each consecutive value is within ``rel_tol`` (relative) +
``abs_tol`` (absolute) of the previous one; a larger jump starts a new
band.  Each band is one hierarchy level, so levels whose costs are
indistinguishable at the given tolerance merge into one — exactly the
"statistically homogeneous" criterion of the source paper, and the
reason measurement noise does not hallucinate extra levels.

On a noiseless matrix synthesized from a tree topology the distances
are ultrametric and both backends recover the true partition at every
level exactly (enforced by ``tests/properties/test_prop_discover.py``).
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.cluster.discover.matrix import ProbeMatrix
from repro.cluster.discover.reconstruct import reconstruct_topology
from repro.cluster.topology import ClusterTopology
from repro.errors import DiscoveryError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.model.params import HBSPParams

__all__ = ["DiscoveryResult", "discover", "level_bands"]

#: Default relative tolerance of the level-cut heuristic: consecutive
#: sorted distances within 30% chain into the same band.  Hierarchy
#: levels differ by an order of magnitude or more (Section 1), so the
#: default separates real levels while absorbing realistic noise.
DEFAULT_REL_TOL = 0.3

#: Above this many machines, ``method="auto"`` switches from scipy
#: average linkage to the banded connected-components backend.
LINKAGE_LIMIT = 4096

#: Row-sample cap for band detection on huge matrices: every value of a
#: sampled row is considered, and every machine's row contains its own
#: cluster's distances at every level, so a stride sample of rows still
#: sees every band that spans a constant fraction of the machines.
BAND_SAMPLE_ROWS = 1024


@dataclasses.dataclass(frozen=True)
class DiscoveryResult:
    """The recovered hierarchy and everything needed to audit it.

    Attributes
    ----------
    matrix:
        The input probe matrix.
    partitions:
        One leaf-labelling per recovered level, innermost first, each a
        length-``p`` tuple of cluster labels in canonical (first-seen)
        order.  The last partition is always the trivial single
        cluster, so ``len(partitions)`` is the recovered ``k``.
    thresholds:
        The distance cut between consecutive bands (one fewer than the
        number of bands).
    bands:
        ``(lo, hi)`` distance range of each detected band, ascending.
    method:
        Backend that produced the partitions: ``linkage`` or ``bands``.
    topology:
        The reconstructed :class:`~repro.cluster.ClusterTopology`
        (estimated networks and machine NIC gaps, see
        :mod:`repro.cluster.discover.reconstruct`).
    params:
        ``calibrate(topology)`` — the recovered HBSP^k parameter tree,
        directly usable by the model, planner, and kernels.
    """

    matrix: ProbeMatrix
    partitions: tuple[tuple[int, ...], ...]
    thresholds: tuple[float, ...]
    bands: tuple[tuple[float, float], ...]
    method: str
    topology: ClusterTopology
    params: "HBSPParams"

    @property
    def k(self) -> int:
        """The recovered hierarchy height (number of levels)."""
        return len(self.partitions)

    def clusters_per_level(self) -> tuple[int, ...]:
        """Number of clusters at each recovered level, innermost first."""
        return tuple(len(set(labels)) for labels in self.partitions)

    def describe(self) -> str:
        """A multi-line audit summary of the discovery."""
        lines = [
            f"discovered HBSP^{self.k} hierarchy over p={self.matrix.p} "
            f"machines (method={self.method})",
            "bands (distance ranges, one per level):",
        ]
        for index, (lo, hi) in enumerate(self.bands):
            cut = (
                f"  cut at {self.thresholds[index]:.3g}"
                if index < len(self.thresholds) else ""
            )
            lines.append(f"  level {index + 1}: [{lo:.3g}, {hi:.3g}]{cut}")
        counts = self.clusters_per_level()
        lines.append(
            "clusters per level (innermost first): "
            + " -> ".join(str(c) for c in counts)
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DiscoveryResult(k={self.k}, p={self.matrix.p}, "
            f"clusters={self.clusters_per_level()}, method={self.method!r})"
        )


def level_bands(
    values: np.ndarray,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = 0.0,
) -> list[tuple[float, float]]:
    """Group sorted distance values into indistinguishability bands.

    Chains sorted unique values: ``v`` extends the current band when
    ``v <= hi * (1 + rel_tol) + abs_tol`` (``hi`` = the band's current
    top); otherwise it starts a new band.  Returns ``(lo, hi)`` per
    band, ascending.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise DiscoveryError("band tolerances must be >= 0")
    unique = np.unique(np.asarray(values, dtype=np.float64).ravel())
    if unique.size == 0:
        return []
    bands: list[tuple[float, float]] = []
    lo = hi = float(unique[0])
    for value in unique[1:]:
        value = float(value)
        if value <= hi * (1.0 + rel_tol) + abs_tol:
            hi = value
        else:
            bands.append((lo, hi))
            lo = hi = value
    bands.append((lo, hi))
    return bands


def _band_thresholds(bands: t.Sequence[tuple[float, float]]) -> list[float]:
    """One cut between each pair of consecutive bands.

    The geometric midpoint keeps the cut order-of-magnitude-neutral;
    when the lower band touches zero the arithmetic midpoint is used.
    """
    thresholds = []
    for (_lo_a, hi_a), (lo_b, _hi_b) in zip(bands, bands[1:]):
        if hi_a > 0:
            thresholds.append(float(np.sqrt(hi_a * lo_b)))
        else:
            thresholds.append((hi_a + lo_b) / 2.0)
    return thresholds


def _canonical(labels: np.ndarray) -> tuple[int, ...]:
    """Relabel a partition in first-seen order (canonical form)."""
    mapping: dict[int, int] = {}
    out = []
    for label in labels.tolist():
        if label not in mapping:
            mapping[label] = len(mapping)
        out.append(mapping[label])
    return tuple(out)


def _sample_values(d: np.ndarray) -> np.ndarray:
    """Off-diagonal distance values used for band detection.

    All of them for small matrices; a deterministic stride sample of
    whole rows (see :data:`BAND_SAMPLE_ROWS`) for huge ones.
    """
    p = d.shape[0]
    if p <= 2048:
        return d[~np.eye(p, dtype=bool)]
    stride = max(1, p // BAND_SAMPLE_ROWS)
    rows = np.arange(0, p, stride)
    sample = d[rows]
    mask = np.ones_like(sample, dtype=bool)
    mask[np.arange(rows.size), rows] = False
    return sample[mask]


def _partitions_by_bands(
    d: np.ndarray, thresholds: t.Sequence[float]
) -> list[np.ndarray]:
    """Connected components at each threshold, via cluster representatives.

    Exploits the band structure: below a cut, every intra-cluster
    distance is reachable and every cross-cluster distance is not, so a
    cluster is exactly the set of columns within threshold of any one
    of its rows.  Each level then contracts to one representative per
    cluster, so coarser levels work on tiny submatrices.
    """
    p = d.shape[0]
    reps = np.arange(p)
    leaf_labels = np.arange(p)
    partitions: list[np.ndarray] = []
    for threshold in thresholds:
        sub = d[np.ix_(reps, reps)]
        m = reps.size
        new_id = np.full(m, -1, dtype=np.int64)
        next_label = 0
        for i in range(m):
            if new_id[i] >= 0:
                continue
            members = np.flatnonzero(sub[i] <= threshold)
            members = members[new_id[members] < 0]
            new_id[members] = next_label
            next_label += 1
        leaf_labels = new_id[leaf_labels]
        partitions.append(leaf_labels.copy())
        reps = np.array(
            [reps[np.flatnonzero(new_id == c)[0]] for c in range(next_label)]
        )
    return partitions


def _partitions_by_linkage(
    d: np.ndarray, thresholds: t.Sequence[float]
) -> list[np.ndarray]:
    """Average-linkage dendrogram cut once per band threshold (scipy)."""
    from scipy.cluster.hierarchy import fcluster, linkage
    from scipy.spatial.distance import squareform

    condensed = squareform(d.astype(np.float64, copy=False), checks=False)
    merges = linkage(condensed, method="average")
    return [
        fcluster(merges, threshold, criterion="distance")
        for threshold in thresholds
    ]


def _scipy_available() -> bool:
    try:
        import scipy.cluster.hierarchy  # noqa: F401
    except ImportError:  # pragma: no cover - scipy ships in the toolchain
        return False
    return True


def discover(
    matrix: ProbeMatrix,
    *,
    method: str = "auto",
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = 0.0,
    ref_bytes: float = 0.0,
    max_levels: int = 12,
) -> DiscoveryResult:
    """Recover an HBSP^k hierarchy from a pairwise probe matrix.

    Parameters
    ----------
    matrix:
        The measurements (see :class:`ProbeMatrix`).
    method:
        ``"linkage"`` (scipy average linkage), ``"bands"`` (threshold
        components, the scalable path), or ``"auto"`` — linkage up to
        :data:`LINKAGE_LIMIT` machines when scipy is importable, bands
        beyond.
    rel_tol / abs_tol:
        Level-cut tolerances (see :func:`level_bands`).
    ref_bytes:
        Message size mixed into the dissimilarity
        (``latency + ref_bytes * gap``); 0 clusters on latency alone.
    max_levels:
        Cap on recovered levels; if band detection finds more, only the
        ``max_levels - 1`` widest inter-band jumps become cuts (the
        rest merge — noise never fragments the hierarchy unboundedly).

    Returns a :class:`DiscoveryResult` whose ``topology`` and
    ``params`` plug into everything that consumes a declared cluster
    (collectives, planner, kernels, experiments).
    """
    if method not in ("auto", "linkage", "bands"):
        raise DiscoveryError(
            f"unknown method {method!r}; use auto, linkage, or bands"
        )
    if max_levels < 1:
        raise DiscoveryError(f"max_levels must be >= 1, got {max_levels}")
    p = matrix.p
    d = matrix.dissimilarity(ref_bytes)
    if p == 1:
        bands: list[tuple[float, float]] = []
        thresholds: list[float] = []
        partitions = [np.zeros(1, dtype=np.int64)]
        resolved = "bands"
    else:
        bands = level_bands(_sample_values(d), rel_tol=rel_tol, abs_tol=abs_tol)
        thresholds = _band_thresholds(bands)
        if len(thresholds) > max_levels - 1:
            # Keep the widest jumps (largest hi->lo ratio) as the cuts.
            jumps = [
                (bands[i + 1][0] / bands[i][1] if bands[i][1] > 0 else np.inf, i)
                for i in range(len(thresholds))
            ]
            keep = sorted(
                index for _, index in sorted(jumps, reverse=True)[: max_levels - 1]
            )
            thresholds = [thresholds[i] for i in keep]
        resolved = method
        if resolved == "auto":
            resolved = (
                "linkage" if p <= LINKAGE_LIMIT and _scipy_available() else "bands"
            )
        if resolved == "linkage" and not _scipy_available():  # pragma: no cover
            resolved = "bands"
        compute = (
            _partitions_by_linkage if resolved == "linkage" else _partitions_by_bands
        )
        partitions = compute(d, thresholds)
        partitions.append(np.zeros(p, dtype=np.int64))

    canonical: list[tuple[int, ...]] = []
    for labels in partitions:
        level = _canonical(np.asarray(labels))
        if canonical and level == canonical[-1]:
            continue
        canonical.append(level)
    if len(set(canonical[-1])) != 1:  # pragma: no cover - trivial top appended
        raise DiscoveryError("inference did not converge to a single root")

    topology = reconstruct_topology(matrix, canonical)
    from repro.model.params import calibrate

    return DiscoveryResult(
        matrix=matrix,
        partitions=tuple(canonical),
        thresholds=tuple(thresholds),
        bands=tuple(bands),
        method=resolved,
        topology=topology,
        params=calibrate(topology),
    )
