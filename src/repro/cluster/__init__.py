"""Declarative descriptions of heterogeneous, hierarchical clusters.

A cluster is a *k*-level tree (the paper's Figure 1/2): leaves are
machines (:class:`MachineSpec`), internal nodes are clusters joined by a
communication network (:class:`NetworkSpec`).  :class:`ClusterTopology`
adds indexing, routing (which network two machines cross), and
coordinator selection (the fastest machine of each subtree, per
Section 3.1).

These specs are *physical-ish* absolute rates; the HBSP^k model
parameters (``g``, ``r``, ``L``) are derived from them by
:func:`repro.model.params.calibrate`.
"""

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.cluster.serialization import (
    dumps,
    loads,
    loads_with_params,
    params_from_dict,
    params_to_dict,
    topology_from_dict,
    topology_hash,
    topology_to_dict,
)
from repro.cluster.presets import (
    deep_hierarchy,
    ucf_testbed,
    smp_sgi_lan,
    flat_cluster,
    grid_three_level,
    multi_lan,
    two_lans,
)
from repro.cluster.discover import (
    DiscoveryResult,
    ProbeMatrix,
    build_generated,
    cloud_spot_mix,
    discover,
    fat_tree,
    multi_rack,
    multicore_nodes,
    synthesize,
)

__all__ = [
    "MachineSpec",
    "NetworkSpec",
    "Cluster",
    "ClusterTopology",
    "deep_hierarchy",
    "ucf_testbed",
    "smp_sgi_lan",
    "flat_cluster",
    "grid_three_level",
    "multi_lan",
    "two_lans",
    "dumps",
    "loads",
    "loads_with_params",
    "params_from_dict",
    "params_to_dict",
    "topology_from_dict",
    "topology_hash",
    "topology_to_dict",
    "ProbeMatrix",
    "DiscoveryResult",
    "discover",
    "synthesize",
    "build_generated",
    "fat_tree",
    "multi_rack",
    "cloud_spot_mix",
    "multicore_nodes",
]
