"""Ready-made cluster topologies.

The defaults are calibrated to late-1990s hardware in the spirit of the
paper's testbed:

* 100 Mbit/s switched Ethernet ≈ 12.5 MB/s ⇒ wire gap 8e-8 s/byte;
* workstation CPUs spanning a ~4x BYTEmark range;
* NIC/protocol-stack speeds spanning a ~2.5x range (the model's ``r``);
* message pack/unpack (PVM XDR encoding) costs a few CPU ops per byte,
  with packing costlier than unpacking.

Absolute values matter less than the ratios — the experiments report
*improvement factors*, which depend only on relative speeds.
"""

from __future__ import annotations

import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import ValidationError
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "ETHERNET_100",
    "ETHERNET_10",
    "SMP_BUS",
    "CAMPUS_ATM",
    "WAN",
    "ucf_testbed",
    "smp_sgi_lan",
    "flat_cluster",
    "two_lans",
    "multi_lan",
    "grid_three_level",
    "deep_hierarchy",
]

#: 100 Mbit/s switched Ethernet (the testbed's interconnect).
ETHERNET_100 = NetworkSpec(
    "ethernet-100", gap=8e-8, latency=1.5e-4, sync_base=8e-4, sync_per_member=2.5e-4
)

#: 10 Mbit/s shared Ethernet (an order of magnitude slower).
ETHERNET_10 = NetworkSpec(
    "ethernet-10", gap=8e-7, latency=6e-4, sync_base=2.5e-3, sync_per_member=8e-4
)

#: An SMP memory bus: far faster than any LAN.
SMP_BUS = NetworkSpec(
    "smp-bus", gap=2e-9, latency=3e-6, sync_base=2e-5, sync_per_member=4e-6
)

#: A campus backbone joining machine rooms (slower sync, higher latency).
CAMPUS_ATM = NetworkSpec(
    "campus-atm", gap=2.5e-7, latency=1.2e-3, sync_base=6e-3, sync_per_member=1.2e-3
)

#: A wide-area link (grid scenarios; §3 of the paper).
WAN = NetworkSpec(
    "wan", gap=2e-6, latency=2.5e-2, sync_base=8e-2, sync_per_member=1e-2
)


#: The ten-workstation pool of the UCF testbed: name, CPU rate, NIC gap.
#: CPU rates span a ~4x BYTEmark-style spread.  NIC (protocol-stack)
#: slowness spans only ~1.25x: on the testbed every machine sat on the
#: same 100 Mbit/s Ethernet, so communication was wire-bound and the
#: interesting heterogeneity lived in the CPUs (pack/unpack/compute) —
#: this is what makes the broadcast root choice "negligible" (Fig. 4)
#: while the gather root choice matters (Fig. 3).
_UCF_POOL: tuple[tuple[str, float, float], ...] = (
    ("sgi-octane", 1.00e8, 8.00e-8),   # the fastest machine: r = 1
    ("sun-ultra2", 8.00e7, 8.20e-8),
    ("sgi-o2", 7.00e7, 8.41e-8),
    ("sun-ultra1", 5.50e7, 8.62e-8),
    ("sgi-indigo2", 4.50e7, 8.84e-8),
    ("sun-sparc20", 4.00e7, 9.06e-8),
    ("sgi-indy", 3.50e7, 9.29e-8),
    ("sun-sparc10", 3.00e7, 9.52e-8),
    ("sun-sparc5", 2.75e7, 9.76e-8),
    ("sun-classic", 2.50e7, 1.00e-7),  # the slowest machine: r = 1.25
)


def _workstation(name: str, cpu_rate: float, nic_gap: float) -> MachineSpec:
    return MachineSpec(
        name=name,
        cpu_rate=cpu_rate,
        nic_gap=nic_gap,
        pack_cost=2.0,
        unpack_cost=0.8,
        msg_overhead=5000.0,
    )


def ucf_testbed(p: int = 10) -> ClusterTopology:
    """The paper's testbed: ``p`` (≤ 10) heterogeneous workstations.

    Machines come from a fixed pool of ten SUN/SGI-class specs joined
    by 100 Mbit/s Ethernet.  For ``p < 10`` the subset always spans the
    full speed range (it includes the fastest and the slowest machine,
    with the rest chosen at even spacing across the ranking) so the
    root-selection experiments stay meaningful at every ``p``.
    """
    p = check_positive_int("p", p)
    if p > len(_UCF_POOL):
        raise ValidationError(f"ucf_testbed supports at most {len(_UCF_POOL)} machines")
    if p == len(_UCF_POOL):
        picks: t.Sequence[int] = range(len(_UCF_POOL))
    elif p == 1:
        picks = (0,)
    else:
        # Even spacing across the speed-sorted pool, endpoints included.
        last = len(_UCF_POOL) - 1
        picks = sorted({round(i * last / (p - 1)) for i in range(p)})
        # Rounding can merge adjacent picks; fill from unused slots.
        pool = [i for i in range(len(_UCF_POOL)) if i not in picks]
        while len(picks) < p:
            picks.append(pool.pop(0))
        picks = sorted(picks)
    machines = [_workstation(*_UCF_POOL[i]) for i in picks]
    return ClusterTopology(Cluster("ucf-lan", ETHERNET_100, machines))


def flat_cluster(
    p: int,
    *,
    slowdown: float = 4.0,
    nic_slowdown: float = 1.25,
    network: NetworkSpec = ETHERNET_100,
    name: str = "lan",
    cpu_fast: float = 1e8,
    nic_fast: float = 8e-8,
) -> ClusterTopology:
    """A parametric 1-level heterogeneous cluster.

    Machine ``j`` (0-based) has its CPU interpolated geometrically
    between the fastest machine and one ``slowdown`` times slower, and
    its NIC between the fastest and ``nic_slowdown`` times slower, so
    machine 0 is the fastest and machine ``p-1`` the slowest.
    ``slowdown = nic_slowdown = 1`` yields a homogeneous (pure BSP)
    cluster.
    """
    p = check_positive_int("p", p)
    check_positive("slowdown", slowdown)
    check_positive("nic_slowdown", nic_slowdown)
    if slowdown < 1 or nic_slowdown < 1:
        raise ValidationError("slowdown factors must be >= 1")
    machines = []
    for j in range(p):
        frac = j / (p - 1) if p > 1 else 0.0
        machines.append(
            _workstation(
                f"{name}-m{j}",
                cpu_fast / slowdown**frac,
                nic_fast * nic_slowdown**frac,
            )
        )
    return ClusterTopology(Cluster(name, network, machines))


def smp_sgi_lan() -> ClusterTopology:
    """The HBSP^2 machine of Figure 1: an SMP, an SGI box, and a LAN.

    Level 1 holds three HBSP^1 machines — a four-processor symmetric
    multiprocessor (fast bus), a lone SGI workstation, and a LAN of
    four workstations — joined at level 2 by a campus network.
    """
    smp = Cluster(
        "smp",
        SMP_BUS,
        [_workstation(f"smp-cpu{i}", 9.0e7, 8.5e-8) for i in range(4)],
    )
    lan = Cluster(
        "lan",
        ETHERNET_100,
        [
            _workstation("lan-sun0", 6.0e7, 8.6e-8),
            _workstation("lan-sun1", 5.0e7, 8.9e-8),
            _workstation("lan-indy", 3.5e7, 9.3e-8),
            _workstation("lan-classic", 2.5e7, 1.0e-7),
        ],
    )
    sgi = _workstation("sgi-octane", 1.0e8, 8.0e-8)
    return ClusterTopology(Cluster("campus", CAMPUS_ATM, [smp, sgi, lan]))


def two_lans(
    p_per_lan: int = 4,
    *,
    slowdown: float = 4.0,
    nic_slowdown: float = 1.25,
    backbone: NetworkSpec = CAMPUS_ATM,
) -> ClusterTopology:
    """A parametric HBSP^2 machine: two heterogeneous LANs on a backbone."""
    p_per_lan = check_positive_int("p_per_lan", p_per_lan)
    lans = []
    for idx in range(2):
        machines = []
        for j in range(p_per_lan):
            # Interleave speeds so each LAN spans the whole range but
            # the two LANs are not identical.
            rank = (j * 2 + idx) / max(1, p_per_lan * 2 - 1)
            machines.append(
                _workstation(
                    f"lan{idx}-m{j}",
                    1e8 / slowdown**rank,
                    8e-8 * nic_slowdown**rank,
                )
            )
        lans.append(Cluster(f"lan{idx}", ETHERNET_100, machines))
    return ClusterTopology(Cluster("campus", backbone, lans))


def multi_lan(
    lan_count: int,
    p_per_lan: int = 4,
    *,
    slowdown: float = 4.0,
    nic_slowdown: float = 1.25,
    backbone: NetworkSpec = CAMPUS_ATM,
) -> ClusterTopology:
    """A parametric HBSP^2 machine: ``lan_count`` LANs on a backbone.

    Used by the Section-4.4 regime analysis, which needs ``m_{2,0}``
    (the number of level-1 clusters) to vary against ``r_{1,s}``.
    Machine speeds interleave across LANs as in :func:`two_lans`.
    """
    lan_count = check_positive_int("lan_count", lan_count)
    p_per_lan = check_positive_int("p_per_lan", p_per_lan)
    total = lan_count * p_per_lan
    lans = []
    for idx in range(lan_count):
        machines = []
        for j in range(p_per_lan):
            rank = (j * lan_count + idx) / max(1, total - 1)
            machines.append(
                _workstation(
                    f"lan{idx}-m{j}",
                    1e8 / slowdown**rank,
                    8e-8 * nic_slowdown**rank,
                )
            )
        lans.append(Cluster(f"lan{idx}", ETHERNET_100, machines))
    return ClusterTopology(Cluster("campus", backbone, lans))


def deep_hierarchy(
    k: int,
    fan_out: int = 2,
    *,
    slowdown: float = 4.0,
    nic_slowdown: float = 1.25,
    level_scale: float = 2.5,
) -> ClusterTopology:
    """An arbitrary-depth HBSP^k machine (generality testing).

    Builds a complete ``fan_out``-ary tree of height ``k``: each level
    uses a network ``level_scale`` times slower than the one below
    (Section 1's order-of-magnitude-per-level guidance, geometrically).
    Leaf speeds interpolate across ``slowdown``/``nic_slowdown`` ranges
    in leaf order, so every preset is heterogeneous at level 0 too.
    """
    k = check_positive_int("k", k)
    fan_out = check_positive_int("fan_out", fan_out)
    total = fan_out**k
    counter = 0

    def build(level: int, prefix: str) -> Cluster:
        nonlocal counter
        network = ETHERNET_100.scaled(
            1.0 / level_scale ** (level - 1), name=f"net-l{level}-{prefix}"
        )
        children: list[Cluster | MachineSpec] = []
        for i in range(fan_out):
            if level == 1:
                rank = counter / max(1, total - 1)
                children.append(
                    _workstation(
                        f"{prefix}m{i}",
                        1e8 / slowdown**rank,
                        8e-8 * nic_slowdown**rank,
                    )
                )
                counter += 1
            else:
                children.append(build(level - 1, f"{prefix}{i}."))
        return Cluster(f"c-{prefix or 'root'}", network, children)

    return ClusterTopology(build(k, ""))


def grid_three_level(
    sites: int = 2,
    lans_per_site: int = 2,
    p_per_lan: int = 3,
    *,
    slowdown: float = 4.0,
    nic_slowdown: float = 1.5,
) -> ClusterTopology:
    """A k = 3 computational-grid topology (Section 3's grid claim).

    ``sites`` campuses hang off a WAN; each campus backbone joins
    ``lans_per_site`` Ethernet LANs of ``p_per_lan`` heterogeneous
    workstations.
    """
    sites = check_positive_int("sites", sites)
    lans_per_site = check_positive_int("lans_per_site", lans_per_site)
    p_per_lan = check_positive_int("p_per_lan", p_per_lan)
    total = sites * lans_per_site * p_per_lan
    site_nodes = []
    counter = 0
    for s in range(sites):
        lan_nodes = []
        for l in range(lans_per_site):
            machines = []
            for j in range(p_per_lan):
                rank = counter / max(1, total - 1)
                machines.append(
                    _workstation(
                        f"s{s}l{l}-m{j}",
                        1e8 / slowdown**rank,
                        8e-8 * nic_slowdown**rank,
                    )
                )
                counter += 1
            lan_nodes.append(Cluster(f"site{s}-lan{l}", ETHERNET_100, machines))
        site_nodes.append(Cluster(f"site{s}", CAMPUS_ATM, lan_nodes))
    return ClusterTopology(Cluster("grid", WAN, site_nodes))
