"""Machine specifications.

A :class:`MachineSpec` captures everything the simulator charges time
for on a single workstation:

* computation (``cpu_rate`` work units per virtual second),
* message packing/unpacking on the CPU (PVM's ``pvm_pkint``/
  ``pvm_upkint`` cost, paid by the *endpoint's* CPU — the asymmetry
  behind the paper's p = 2 gather inversion),
* NIC injection/drain speed (``nic_gap`` seconds per byte; the model's
  ``g * r`` product for this machine).

All rates are absolute; the HBSP^k relative parameters are derived at
calibration time by normalising against the fastest machine, exactly as
the paper normalises ``r`` of the fastest machine to 1.
"""

from __future__ import annotations

import dataclasses

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MachineSpec"]


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Immutable description of one workstation.

    Parameters
    ----------
    name:
        Unique human-readable machine name (e.g. ``"sgi-0"``).
    cpu_rate:
        Compute speed in work units per virtual second.  Higher is
        faster.  BYTEmark-style indices map onto this directly.
    nic_gap:
        Seconds per byte for this machine's NIC to inject into (or
        drain from) the network.  The fastest machine's ``nic_gap``
        becomes the model's ``g``; this machine's ``r`` is
        ``nic_gap / g_fastest``.
    pack_cost:
        CPU work units per byte to pack a message for sending.
    unpack_cost:
        CPU work units per byte to unpack a received message.
    msg_overhead:
        Fixed CPU work units charged per message on the sending side
        (syscall + PVM header cost).
    """

    name: str
    cpu_rate: float = 1e8
    nic_gap: float = 8e-8
    pack_cost: float = 2.0
    unpack_cost: float = 0.8
    msg_overhead: float = 5000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise_from = None
            from repro.errors import ValidationError

            raise ValidationError("MachineSpec.name must be non-empty") from raise_from
        check_positive("cpu_rate", self.cpu_rate)
        check_positive("nic_gap", self.nic_gap)
        check_non_negative("pack_cost", self.pack_cost)
        check_non_negative("unpack_cost", self.unpack_cost)
        check_non_negative("msg_overhead", self.msg_overhead)

    # -- derived timings ------------------------------------------------------
    def compute_time(self, work: float) -> float:
        """Virtual seconds to perform ``work`` CPU work units."""
        return check_non_negative("work", work) / self.cpu_rate

    def pack_time(self, nbytes: int) -> float:
        """Virtual seconds of CPU time to pack an ``nbytes`` message."""
        return (self.msg_overhead + self.pack_cost * max(0, int(nbytes))) / self.cpu_rate

    def unpack_time(self, nbytes: int) -> float:
        """Virtual seconds of CPU time to unpack an ``nbytes`` message."""
        return (self.unpack_cost * max(0, int(nbytes))) / self.cpu_rate

    def scaled(self, factor: float, name: str | None = None) -> "MachineSpec":
        """A copy of this machine ``factor`` times faster (CPU and NIC)."""
        check_positive("factor", factor)
        return dataclasses.replace(
            self,
            name=name if name is not None else f"{self.name}x{factor:g}",
            cpu_rate=self.cpu_rate * factor,
            nic_gap=self.nic_gap / factor,
        )

    def slowness_vs(self, fastest_nic_gap: float) -> float:
        """The model's ``r`` for this machine given the fastest NIC gap."""
        check_positive("fastest_nic_gap", fastest_nic_gap)
        return self.nic_gap / fastest_nic_gap
