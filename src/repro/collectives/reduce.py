"""The HBSP^k all-to-one reduction.

Every processor holds a vector of ``width`` items; the root must end
with the element-wise combination (sum by default) of all ``p``
vectors.  Hierarchical algorithm (dissertation [20] toolkit): like the
gather, but each coordinator *combines* arriving vectors with its own
before forwarding, so only ``width`` items ever cross each link — the
communication saving over gather is exactly what the hierarchy buys.

Combination work is charged to the coordinator's CPU (``width`` work
units per arriving vector, scaled by ``ops_per_item``).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, make_items, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    effective_coordinator,
    resolve_root,
)
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.util.units import BYTES_PER_INT

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["reduce_program", "run_reduce", "predict_reduce_cost"]

#: CPU work units charged per combined item.
OPS_PER_ITEM = 1.0


def reduce_program(
    ctx: HbspContext,
    width: int,
    root: int,
    seed: int = 0,
) -> t.Generator:
    """Per-process reduction program (element-wise sum).

    Returns ``(items, checksum)``; the root's checksum equals the sum
    over all processors' vectors.
    """
    acc = make_items(seed, ctx.pid, width).astype(np.int64)
    k = ctx.runtime.tree.k
    for level in range(1, k + 1):
        sender = effective_coordinator(ctx, level - 1, root)
        receiver = effective_coordinator(ctx, level, root)
        if ctx.pid == sender and ctx.pid != receiver:
            with ctx.phase(f"reduce up L{level}", level=level):
                yield from ctx.send(receiver, acc, tag=level)
        yield from ctx.sync(level)
        if ctx.pid == receiver:
            arrived = ctx.messages(tag=level)
            if arrived:
                with ctx.phase(f"reduce combine L{level}", level=level):
                    for message in arrived:
                        yield from ctx.compute(width * OPS_PER_ITEM)
                        acc = acc + message.payload
    if ctx.pid != effective_coordinator(ctx, k, root):
        return (0, 0)
    return (int(acc.size), int(acc.sum()))


def run_reduce(
    topology: ClusterTopology,
    width: int,
    *,
    root: int | RootPolicy | None = None,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the reduction on the simulated machine and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    root_pid = resolve_root(runtime, root)
    result = runtime.run(reduce_program, width, root_pid, seed)
    cpu_rates = [m.cpu_rate for m in runtime.topology.machines]
    predicted = predict_reduce_cost(
        runtime.params, width, root=root_pid, cpu_rates=cpu_rates
    )
    return CollectiveOutcome(
        name=f"reduce(width={width}, root=pid{root_pid})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_reduce_cost(
    params: HBSPParams,
    width: int,
    *,
    root: int | None = None,
    cpu_rates: t.Sequence[float] | None = None,
    item_bytes: int = 8,  # vectors travel as int64 accumulators
) -> CostLedger:
    """Closed-form reduction cost.

    At each level every sender moves ``width`` items; the receiving
    coordinator takes ``(children - 1) · width`` and combines them at
    ``OPS_PER_ITEM`` work per item (``w`` term, needing ``cpu_rates``
    in level-0 order; combination time is 0 when omitted).
    """
    from repro.model.predict import _check_inputs, _coordinator_leaf

    root = _check_inputs(params, max(width, 0), root)
    ledger = CostLedger(f"reduce(k={params.k}, width={width})")
    if params.k == 0 or params.p == 1:
        return ledger
    for level in range(1, params.k + 1):
        worst: tuple[float, float, float, float, str] | None = None
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            if len(children) <= 1:
                continue
            coord = _coordinator_leaf(params, key, root)
            arriving = sum(
                1
                for child in children
                if _coordinator_leaf(params, child, root) != coord
            )
            loads = [(params.r_of(0, coord), arriving * width * item_bytes)]
            for child in children:
                sender = _coordinator_leaf(params, child, root)
                if sender != coord:
                    loads.append((params.r_of(0, sender), width * item_bytes))
            gh = params.g * h_relation(loads)
            w = 0.0
            if cpu_rates is not None:
                w = arriving * width * OPS_PER_ITEM / cpu_rates[coord]
            L = params.L_of(level, j)
            total = w + gh + L
            if worst is None or total > worst[0]:
                worst = (total, w, gh, L, f"super{level}: reduce into {key}")
        if worst is not None:
            ledger.charge(worst[4], level=level, w=worst[1], gh=worst[2], L=worst[3])
    return ledger
