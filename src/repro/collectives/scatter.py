"""The HBSP^k scatter (one-to-all personalized communication).

The inverse of the gather: the root holds ``n`` items partitioned per
processor (``counts``), and each processor must end with exactly its
own chunk.  Hierarchical algorithm (one of the dissertation's [20]
additional collectives, built on the paper's design rules): top-down,
each level's coordinator sends every child-subtree coordinator the
chunks belonging to that subtree, until level-1 coordinators deliver
individual chunks.  The root's own chunk never leaves its machine.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, make_items, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    effective_coordinator,
    level_participants,
    resolve_root,
    split_counts,
)
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.model.predict import default_counts
from repro.util.units import BYTES_PER_INT

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["scatter_program", "run_scatter", "predict_scatter_cost"]


def scatter_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    seed: int = 0,
) -> t.Generator:
    """Per-process scatter program.

    The root generates ``sum(counts)`` items laid out pid-major; pid
    ``j`` ends holding the slice of length ``counts[j]`` that starts at
    ``sum(counts[:j])``.  Returns ``(items, checksum)``.
    """
    n = int(sum(counts))
    holdings: dict[int, np.ndarray] | None = None
    if ctx.pid == root:
        everything = make_items(seed, root, n)
        offsets = np.cumsum([0] + [int(c) for c in counts])
        holdings = {
            pid: everything[offsets[pid] : offsets[pid + 1]]
            for pid in range(ctx.nprocs)
        }

    k = ctx.runtime.tree.k
    for level in range(k, 0, -1):
        participants = level_participants(ctx, level, root)
        coordinator = effective_coordinator(ctx, level, root)
        if ctx.pid == coordinator and holdings is not None:
            with ctx.phase(f"scatter down L{level}", level=level):
                node = ctx.runtime._ancestor(ctx.pid, level)
                for i, peer in enumerate(participants):
                    if peer == ctx.pid:
                        continue
                    subset = {
                        member: holdings.pop(member)
                        for member in node.children[i].members
                        if member in holdings
                    }
                    if subset:
                        yield from ctx.send(peer, subset, tag=level)
        yield from ctx.sync(level)
        arrived = ctx.messages(tag=level)
        if arrived:
            holdings = dict(arrived[0].payload)

    chunk = holdings.get(ctx.pid) if holdings else None
    if chunk is None:
        chunk = np.empty(0, dtype=np.int32)
    return (int(chunk.size), int(chunk.astype(np.int64).sum()))


def run_scatter(
    topology: ClusterTopology,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the scatter on the simulated machine and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(scatter_program, counts, root_pid, seed)
    predicted = predict_scatter_cost(runtime.params, n, root=root_pid, counts=counts)
    return CollectiveOutcome(
        name=f"scatter(n={n}, root=pid{root_pid})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_scatter_cost(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Closed-form scatter cost: the gather's h-relations, reversed.

    At each level the coordinator sends each child-subtree coordinator
    that subtree's total volume; the h-relation mirrors the gather's
    with the sender/receiver roles exchanged.
    """
    from repro.model.predict import _check_inputs, _coordinator_leaf

    root = _check_inputs(params, n, root)
    if counts is None:
        counts = default_counts(params, n)
    ledger = CostLedger(f"scatter(k={params.k}, n={n})")
    if params.k == 0 or params.p == 1:
        return ledger
    subtree_total: dict[tuple[int, int], int] = {
        (0, j): int(counts[j]) for j in range(params.p)
    }
    for level in range(1, params.k + 1):
        for j in range(params.m[level]):
            subtree_total[(level, j)] = sum(
                subtree_total[c] for c in params.children_of(level, j)
            )
    for level in range(params.k, 0, -1):
        worst: tuple[float, float, float, str] | None = None
        for j in range(params.m[level]):
            key = (level, j)
            children = params.children_of(*key)
            if len(children) <= 1:
                continue
            coord = _coordinator_leaf(params, key, root)
            own = next(
                (c for c in children if _coordinator_leaf(params, c, root) == coord),
                None,
            )
            sent = subtree_total[key] - (subtree_total[own] if own is not None else 0)
            loads = [(params.r_of(0, coord), sent * item_bytes)]
            for child in children:
                if child == own:
                    continue
                receiver = _coordinator_leaf(params, child, root)
                loads.append(
                    (params.r_of(0, receiver), subtree_total[child] * item_bytes)
                )
            gh = params.g * h_relation(loads)
            L = params.L_of(level, j)
            total = gh + L
            if worst is None or total > worst[0]:
                worst = (total, gh, L, f"super{level}: scatter from {key}")
        if worst is not None:
            ledger.charge(worst[3], level=level, gh=worst[1], L=worst[2])
    return ledger
