"""HBSP^k collective communication algorithms.

The paper designs and analyses **gather** and **one-to-all broadcast**
(Section 4) and refers to its companion dissertation [20] for further
collectives; this package implements the full toolkit on the same
two design rules (Section 4.1):

1. faster machines do the coordination work (roots/coordinators are
   the fastest machines unless an experiment overrides them);
2. faster machines receive more data (balanced workloads via ``c_j``).

Every collective exists in two forms that the benchmarks compare:

* a *runnable HBSP program* executed on the simulated machine
  (``run_gather`` etc., returning a :class:`CollectiveOutcome` with
  the simulated makespan and the per-pid results), and
* a *closed-form cost prediction* over :class:`~repro.model.HBSPParams`
  (``predict_*`` functions returning a
  :class:`~repro.model.cost.CostLedger`).
"""

from repro.collectives.base import CollectiveOutcome, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    SchedulePolicy,
    WorkloadPolicy,
    resolve_plan,
    effective_coordinator,
    resolve_root,
    split_counts,
)
from repro.collectives.gather import gather_program, predict_gather_cost, run_gather
from repro.collectives.broadcast import (
    broadcast_program,
    predict_broadcast_cost,
    run_broadcast,
)
from repro.collectives.scatter import predict_scatter_cost, run_scatter, scatter_program
from repro.collectives.reduce import predict_reduce_cost, reduce_program, run_reduce
from repro.collectives.allgather import (
    allgather_program,
    predict_allgather_cost,
    run_allgather,
)
from repro.collectives.alltoall import (
    alltoall_program,
    predict_alltoall_cost,
    run_alltoall,
)
from repro.collectives.allreduce import (
    allreduce_program,
    predict_allreduce_cost,
    run_allreduce,
)
from repro.collectives.scan import predict_scan_cost, run_scan, scan_program

__all__ = [
    "CollectiveOutcome",
    "make_runtime",
    "RootPolicy",
    "SchedulePolicy",
    "WorkloadPolicy",
    "resolve_plan",
    "effective_coordinator",
    "resolve_root",
    "split_counts",
    "gather_program",
    "run_gather",
    "predict_gather_cost",
    "broadcast_program",
    "run_broadcast",
    "predict_broadcast_cost",
    "scatter_program",
    "run_scatter",
    "predict_scatter_cost",
    "reduce_program",
    "run_reduce",
    "predict_reduce_cost",
    "allgather_program",
    "run_allgather",
    "predict_allgather_cost",
    "alltoall_program",
    "run_alltoall",
    "predict_alltoall_cost",
    "scan_program",
    "run_scan",
    "predict_scan_cost",
    "allreduce_program",
    "run_allreduce",
    "predict_allreduce_cost",
]
