"""The HBSP^k one-to-all broadcast (Sections 4.4–4.5).

"In the one-to-all broadcast, only the source process has the data
... at the termination of the procedure, each node has a copy."

Two schemes per level (the paper analyses both):

* **one-phase** — the level's coordinator sends the full ``n`` items
  to every participant (one super-step);
* **two-phase** — the coordinator scatters ``n/m`` shares, then the
  participants exchange shares all-to-all (two super-steps; the BSP
  two-phase broadcast of Juurlink & Wijshoff adapted to HBSP^k).

The hierarchical algorithm runs top-down: the root's cluster
distributes across level-``k`` participants, then every cluster
broadcasts internally, concurrently, until all level-0 processors hold
the data.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.bytemark.ranking import partition_items
from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, concat_payloads, make_items, make_runtime
from repro.collectives.schedules import (
    RootPolicy,
    effective_coordinator,
    level_participants,
    resolve_root,
)
from repro.errors import CollectiveError
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger
from repro.model.params import HBSPParams
from repro.model.predict import predict_broadcast, predict_broadcast_plan
from repro.sim.macro import macro_safe
from repro.tuning.plan import SchedulePlan, binomial_rounds, split_segments

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["broadcast_program", "run_broadcast", "predict_broadcast_cost"]

#: Tag space: level * _TAG_STRIDE + share index; full copies use
#: share index _TAG_FULL.
_TAG_STRIDE = 1 << 16
_TAG_FULL = _TAG_STRIDE - 1


def _phase_of(phases: str | t.Mapping[int, str], level: int) -> str:
    mode = phases if isinstance(phases, str) else phases.get(level, "two")
    if mode not in ("one", "two"):
        raise CollectiveError(f"phase must be 'one' or 'two', got {mode!r}")
    return mode


def _share_counts(
    ctx: HbspContext, participants: list[int], n: int, balanced: bool, level: int, root: int
) -> list[int]:
    """First-phase share sizes across participants (equal or by c)."""
    m = len(participants)
    if not balanced:
        base, extra = divmod(n, m)
        return [base + (1 if i < extra else 0) for i in range(m)]
    node = ctx.runtime._ancestor(ctx.pid, level)
    weights = []
    for child in node.children:
        weights.append(
            sum(ctx.runtime.fraction_of(member) for member in child.members)
        )
    total = sum(weights)
    part = partition_items(n, {str(i): w / total for i, w in enumerate(weights)})
    return [part[str(i)] for i in range(m)]


@macro_safe
def broadcast_program(
    ctx: HbspContext,
    n: int,
    root: int,
    phases: str | t.Mapping[int, str] = "two",
    balanced_shares: bool = False,
    seed: int = 0,
    plan: SchedulePlan | None = None,
) -> t.Generator:
    """Per-process broadcast program.

    Returns ``(items, checksum)``; on success every pid reports ``n``
    items with identical checksums.  ``plan`` overrides ``phases`` with
    a per-level schedule — one-phase (optionally segmented), two-phase,
    or binomial-tree doubling.
    """
    data: np.ndarray | None = (
        make_items(seed, root, n) if ctx.pid == root else None
    )
    k = ctx.runtime.tree.k
    for level in range(k, 0, -1):
        schedule = plan.level(level) if plan is not None else None
        mode = _phase_of(phases, level) if schedule is None else schedule.algorithm
        participants = level_participants(ctx, level, root)
        coordinator = effective_coordinator(ctx, level, root)
        am_participant = ctx.pid in participants
        if mode == "one":
            segments = 1 if schedule is None else schedule.segments
            if segments == 1:
                if ctx.pid == coordinator and data is not None:
                    with ctx.phase(f"broadcast full L{level}", level=level):
                        for peer in participants:
                            if peer != ctx.pid:
                                yield from ctx.send(
                                    peer, data, tag=level * _TAG_STRIDE + _TAG_FULL
                                )
                yield from ctx.sync(level)
                arrived = ctx.messages(tag=level * _TAG_STRIDE + _TAG_FULL)
                if arrived and am_participant:
                    data = arrived[0].payload
            else:
                offsets = None
                if ctx.pid == coordinator and data is not None:
                    offsets = np.cumsum(
                        [0] + split_segments(data.size, segments)
                    )
                pieces: list[np.ndarray] = []
                for s in range(segments):
                    if offsets is not None:
                        with ctx.phase(
                            f"broadcast full L{level}.{s + 1}", level=level
                        ):
                            piece = data[offsets[s] : offsets[s + 1]]
                            for peer in participants:
                                if peer != ctx.pid:
                                    yield from ctx.send(
                                        peer, piece,
                                        tag=level * _TAG_STRIDE + _TAG_FULL,
                                    )
                    yield from ctx.sync(level)
                    arrived = ctx.messages(tag=level * _TAG_STRIDE + _TAG_FULL)
                    if arrived and am_participant:
                        pieces.append(arrived[0].payload)
                if pieces and am_participant:
                    data = concat_payloads(pieces)
        elif mode == "binomial":
            # Doubling over the child-coordinator positions, rotated so
            # the coordinator holds relative position 0: in round t
            # every holder q < 2^t forwards the payload to q + 2^t.
            C = len(participants)
            own_pos = participants.index(coordinator)
            rel = (
                (participants.index(ctx.pid) - own_pos) % C
                if am_participant
                else None
            )
            for t_round in range(binomial_rounds(C)):
                half = 1 << t_round
                if (
                    rel is not None
                    and data is not None
                    and rel < half
                    and rel + half < C
                ):
                    target = participants[(own_pos + rel + half) % C]
                    with ctx.phase(
                        f"binomial bcast L{level} r{t_round + 1}", level=level
                    ):
                        yield from ctx.send(
                            target, data, tag=level * _TAG_STRIDE + _TAG_FULL
                        )
                yield from ctx.sync(level)
                arrived = ctx.messages(tag=level * _TAG_STRIDE + _TAG_FULL)
                if arrived and rel is not None:
                    data = arrived[0].payload
        else:
            m = len(participants)
            my_index = participants.index(ctx.pid) if am_participant else -1
            my_share: np.ndarray | None = None
            if ctx.pid == coordinator and data is not None:
                with ctx.phase(f"broadcast scatter L{level}", level=level):
                    shares = _share_counts(ctx, participants, n, balanced_shares, level, root)
                    offsets = np.cumsum([0] + shares)
                    for i, peer in enumerate(participants):
                        piece = data[offsets[i] : offsets[i + 1]]
                        if peer == ctx.pid:
                            my_share = piece
                        else:
                            yield from ctx.send(peer, piece, tag=level * _TAG_STRIDE + i)
            yield from ctx.sync(level)
            if am_participant and my_share is None:
                arrived = ctx.messages()
                if arrived:
                    my_index = arrived[0].tag - level * _TAG_STRIDE
                    my_share = arrived[0].payload
            # Phase two: total exchange of shares among participants.
            if am_participant and my_share is not None:
                with ctx.phase(f"broadcast exchange L{level}", level=level):
                    for peer in participants:
                        if peer != ctx.pid:
                            yield from ctx.send(
                                peer, my_share, tag=level * _TAG_STRIDE + my_index
                            )
            yield from ctx.sync(level)
            if am_participant:
                pieces: dict[int, np.ndarray] = {}
                if my_share is not None:
                    pieces[my_index] = my_share
                for message in ctx.messages():
                    pieces[message.tag - level * _TAG_STRIDE] = message.payload
                if pieces:
                    data = concat_payloads(
                        [pieces[i] for i in sorted(pieces)]
                    )
    if data is None:
        return (0, 0)
    return (int(data.size), int(data.astype(np.int64).sum()))


def run_broadcast(
    topology: ClusterTopology,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    phases: str | t.Mapping[int, str] = "two",
    balanced_shares: bool = False,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
    macro: bool | None = None,
    plan: SchedulePlan | None = None,
) -> CollectiveOutcome:
    """Run the one-to-all broadcast and predict its cost.

    ``phases`` selects one-/two-phase per level (a single string
    applies everywhere).  ``balanced_shares`` distributes first-phase
    shares by the ``c_j`` fractions instead of equally (Fig. 4(b)).
    ``macro`` selects the macro-event fast path (default: auto on
    fault-free untraced runs; the result is bit-identical either way).
    ``plan`` runs an explicit :class:`~repro.tuning.plan.SchedulePlan`
    (overriding ``phases``), and the prediction prices that plan.
    """
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
        macro=macro,
    )
    root_pid = resolve_root(runtime, root)
    result = runtime.run(
        broadcast_program, n, root_pid, phases, balanced_shares, seed, plan
    )
    fractions = (
        [runtime.fraction_of(j) for j in range(runtime.nprocs)]
        if balanced_shares
        else None
    )
    if plan is None:
        predicted = predict_broadcast(
            runtime.params, n, root=root_pid, phases=phases, fractions=fractions
        )
        name = f"broadcast(n={n}, root=pid{root_pid}, phases={phases!r})"
    else:
        predicted = predict_broadcast_plan(
            runtime.params, n, plan, root=root_pid, fractions=fractions
        )
        name = f"broadcast(n={n}, root=pid{root_pid}, plan={plan.key})"
    return CollectiveOutcome(
        name=name,
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_broadcast_cost(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
    phases: str | t.Mapping[int, str] = "two",
    fractions: t.Sequence[float] | None = None,
) -> CostLedger:
    """Closed-form broadcast cost (re-export of
    :func:`repro.model.predict.predict_broadcast` for API symmetry)."""
    return predict_broadcast(params, n, root=root, phases=phases, fractions=fractions)
