"""The HBSP^k gather (Sections 4.2–4.3).

"The gather operation uses a single node to collect a unique message
from each of the other nodes."

Algorithm (generalised from the paper's HBSP^1/HBSP^2 descriptions):
level by level, every level-(ℓ-1) coordinator sends its accumulated
items to its level-ℓ coordinator, followed by a cluster-scoped
super^ℓ-step synchronisation; after level ``k`` the root holds all
``n`` items.  A processor never sends to itself, so the root's own
items stay put.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import (
    CollectiveOutcome,
    concat_payloads,
    make_items,
    make_runtime,
)
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    effective_coordinator,
    resolve_root,
    split_counts,
)
from repro.collectives.schedules import level_participants
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger
from repro.model.params import HBSPParams
from repro.model.predict import predict_gather, predict_gather_plan
from repro.sim.macro import macro_safe
from repro.tuning.plan import SchedulePlan, binomial_rounds, split_segments

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["gather_program", "run_gather", "predict_gather_cost"]


@macro_safe
def gather_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    seed: int = 0,
    plan: SchedulePlan | None = None,
) -> t.Generator:
    """Per-process gather program.

    ``counts[pid]`` items are generated locally; the program returns
    ``(held_items, checksum)`` — the root ends with ``sum(counts)``
    items, everyone else with 0.  ``plan`` selects per-level flat
    (optionally segmented) or binomial-tree fan-in; ``None`` (and the
    default plan) is the paper's single-step flat schedule.
    """
    data = make_items(seed, ctx.pid, counts[ctx.pid])
    buffer: list[np.ndarray] = [data]
    k = ctx.runtime.tree.k
    for level in range(1, k + 1):
        schedule = plan.level(level) if plan is not None else None
        if schedule is None or schedule.algorithm == "flat":
            sender = effective_coordinator(ctx, level - 1, root)
            receiver = effective_coordinator(ctx, level, root)
            sending = ctx.pid == sender and ctx.pid != receiver
            segments = 1 if schedule is None else schedule.segments
            if segments == 1:
                if sending:
                    with ctx.phase(f"gather up L{level}", level=level):
                        payload = concat_payloads(buffer)
                        buffer = []
                        yield from ctx.send(receiver, payload, tag=level)
                yield from ctx.sync(level)
                if ctx.pid == receiver:
                    buffer.extend(m.payload for m in ctx.messages(tag=level))
            else:
                offsets = None
                if sending:
                    payload = concat_payloads(buffer)
                    buffer = []
                    offsets = np.cumsum(
                        [0] + split_segments(payload.size, segments)
                    )
                for s in range(segments):
                    if offsets is not None:
                        with ctx.phase(
                            f"gather up L{level}.{s + 1}", level=level
                        ):
                            yield from ctx.send(
                                receiver,
                                payload[offsets[s] : offsets[s + 1]],
                                tag=level,
                            )
                    yield from ctx.sync(level)
                    if ctx.pid == receiver:
                        buffer.extend(
                            m.payload for m in ctx.messages(tag=level)
                        )
        else:  # binomial fan-in over the child-coordinator positions
            participants = level_participants(ctx, level, root)
            receiver = effective_coordinator(ctx, level, root)
            C = len(participants)
            own_pos = participants.index(receiver)
            rel = (
                (participants.index(ctx.pid) - own_pos) % C
                if ctx.pid in participants
                else None
            )
            for t_round in range(binomial_rounds(C)):
                half = 1 << t_round
                if rel is not None and rel % (2 * half) == half:
                    target = participants[(own_pos + rel - half) % C]
                    with ctx.phase(
                        f"binomial gather L{level} r{t_round + 1}", level=level
                    ):
                        payload = concat_payloads(buffer)
                        buffer = []
                        yield from ctx.send(target, payload, tag=level)
                yield from ctx.sync(level)
                if rel is not None:
                    buffer.extend(m.payload for m in ctx.messages(tag=level))
    held = concat_payloads(buffer)
    checksum = int(held.astype(np.int64).sum()) if held.size else 0
    return (int(held.size), checksum)


def run_gather(
    topology: ClusterTopology,
    n: int,
    *,
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    serialize_nic: bool = True,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
    macro: bool | None = None,
    plan: SchedulePlan | None = None,
) -> CollectiveOutcome:
    """Run the gather on the simulated machine and predict its cost.

    Parameters mirror the paper's experimental knobs: ``root`` (fastest
    / slowest / explicit pid) and ``workload`` (equal / balanced /
    explicit per-pid counts); ``serialize_nic=False`` is the ablation
    switch of :mod:`repro.experiments.ablations`.  ``macro`` selects
    the macro-event fast path (default: auto on fault-free untraced
    runs; the result is bit-identical either way).  ``plan`` runs an
    explicit :class:`~repro.tuning.plan.SchedulePlan` (e.g. a tuned
    one) instead of the paper's flat schedule, and the prediction
    prices that plan.
    """
    runtime = make_runtime(
        topology, scores=scores, trace=trace, serialize_nic=serialize_nic,
        faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
        macro=macro,
    )
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(gather_program, counts, root_pid, seed, plan)
    if plan is None:
        predicted = predict_gather(
            runtime.params, n, root=root_pid, counts=counts
        )
    else:
        predicted = predict_gather_plan(
            runtime.params, n, plan, root=root_pid, counts=counts
        )
    return CollectiveOutcome(
        name=f"gather(n={n}, root=pid{root_pid})"
        if plan is None
        else f"gather(n={n}, root=pid{root_pid}, plan={plan.key})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_gather_cost(
    params: HBSPParams,
    n: int,
    *,
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
) -> CostLedger:
    """Closed-form gather cost (re-export of
    :func:`repro.model.predict.predict_gather` for API symmetry)."""
    return predict_gather(params, n, root=root, counts=counts)
