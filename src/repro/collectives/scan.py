"""Parallel prefix sums (scan) over per-processor vectors.

Processor ``j`` holds a vector ``v_j``; after the scan it holds the
inclusive prefix ``v_0 + v_1 + ... + v_j`` (element-wise).  We use the
classic one-superstep BSP algorithm from the communication-primitives
literature the paper builds on [11]: every processor sends its vector
to all higher-numbered processors, then locally combines what arrived.

The combine work is proportional to the processor's *position*, so the
scan is an interesting case for the model: the highest-numbered
processor does the most computation, and placing slow machines at high
positions is visibly penalised — the ``order`` knob and its benchmark
demonstrate the effect.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, make_items, make_runtime
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.util.units import BYTES_PER_INT

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["scan_program", "run_scan", "predict_scan_cost"]

#: CPU work units charged per combined item.
OPS_PER_ITEM = 1.0


def scan_program(
    ctx: HbspContext,
    width: int,
    seed: int = 0,
) -> t.Generator:
    """Per-process inclusive-scan program.

    Returns ``(items, checksum)`` of the local prefix result.
    """
    mine = make_items(seed, ctx.pid, width).astype(np.int64)
    with ctx.phase("scan exchange"):
        for peer in range(ctx.pid + 1, ctx.nprocs):
            yield from ctx.send(peer, mine, tag=ctx.pid)
    yield from ctx.sync()
    acc = mine.copy()
    with ctx.phase("scan combine"):
        for message in ctx.messages():
            yield from ctx.compute(width * OPS_PER_ITEM)
            acc += message.payload
    return (int(acc.size), int(acc.sum()))


def run_scan(
    topology: ClusterTopology,
    width: int,
    *,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the prefix-sum scan and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    result = runtime.run(scan_program, width, seed)
    cpu_rates = [m.cpu_rate for m in runtime.topology.machines]
    predicted = predict_scan_cost(runtime.params, width, cpu_rates=cpu_rates)
    return CollectiveOutcome(
        name=f"scan(width={width})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_scan_cost(
    params: HBSPParams,
    width: int,
    *,
    cpu_rates: t.Sequence[float] | None = None,
    item_bytes: int = 8,  # vectors travel as int64 accumulators
) -> CostLedger:
    """Closed-form scan cost (one superstep).

    ``h_{0,j} = width · max(p - 1 - j, j)`` (sends to higher pids,
    receives from lower pids); combine work at pid ``j`` is
    ``j · width`` items, so ``w`` is the slowest such combination when
    ``cpu_rates`` are supplied.
    """
    ledger = CostLedger(f"scan(width={width})")
    p = params.p
    if p == 1:
        return ledger
    loads = []
    w = 0.0
    for j in range(p):
        volume = width * max(p - 1 - j, j)
        loads.append((params.r_of(0, j), volume * item_bytes))
        if cpu_rates is not None:
            w = max(w, j * width * OPS_PER_ITEM / cpu_rates[j])
    ledger.charge_step(
        "super1: scan exchange + combine",
        level=1,
        g=params.g,
        loads=loads,
        w=w,
        L=params.L_of(params.k, 0),
    )
    return ledger
