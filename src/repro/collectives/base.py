"""Shared plumbing for the collective operations."""

from __future__ import annotations

import dataclasses
import functools
import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.hbsplib.runtime import HbspResult, HbspRuntime
from repro.model.cost import CostLedger
from repro.util.rng import RngStream

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["CollectiveOutcome", "make_runtime", "make_items", "concat_payloads"]


@dataclasses.dataclass
class CollectiveOutcome:
    """Result of running one collective on the simulated machine.

    Attributes
    ----------
    name:
        Collective name + configuration summary.
    time:
        Simulated makespan (virtual seconds) — the experiment metric.
    supersteps:
        Synchronisations performed (max over processes).
    values:
        Per-pid program return values (collective-specific; usually
        verification data such as item counts/checksums).
    predicted:
        The closed-form cost ledger for the same configuration.
    result:
        The raw :class:`~repro.hbsplib.HbspResult`.
    runtime:
        The runtime the collective executed on (holds params, tree,
        trace).
    """

    name: str
    time: float
    supersteps: int
    values: dict[int, t.Any]
    predicted: CostLedger
    result: HbspResult
    runtime: HbspRuntime

    @property
    def predicted_time(self) -> float:
        """Total of the analytic cost ledger."""
        return self.predicted.total

    def __repr__(self) -> str:
        return (
            f"CollectiveOutcome({self.name!r}, time={self.time:.6g}, "
            f"predicted={self.predicted_time:.6g}, supersteps={self.supersteps})"
        )


def make_runtime(
    topology: ClusterTopology,
    *,
    scores: t.Mapping[str, float] | None = None,
    trace: bool = False,
    serialize_nic: bool = True,
    faults: "FaultPlan | None" = None,
    fault_seed: int = 0,
    delivery: t.Any | None = None,
    macro: bool | None = None,
) -> HbspRuntime:
    """A fresh runtime for one measured collective run.

    With ``faults`` a fresh :class:`~repro.faults.Injector` is built
    (even for an empty plan, which is guaranteed bit-identical to no
    plan at all); ``delivery`` sets the default send policy;
    ``serialize_nic=False`` is the ablation that gives NIC ports
    unlimited parallel channels.  ``macro`` selects the macro-event
    fast path (``None`` auto-engages it on fault-free untraced runs;
    note an *empty* fault plan still builds an injector and therefore
    falls back to the object path).
    """
    injector = None
    if faults is not None:
        from repro.faults.injector import Injector

        injector = Injector(faults, seed=fault_seed)
    return HbspRuntime(
        topology, scores=scores, trace=trace, serialize_nic=serialize_nic,
        injector=injector, delivery=delivery, macro=macro,
    )


@functools.lru_cache(maxsize=512)
def _items_cached(seed: int, pid: int, count: int) -> np.ndarray:
    stream = RngStream(seed, "items", pid)
    return stream.uniform_ints(count, high=2**31 - 1).astype(np.int32)


def make_items(seed: int, pid: int, count: int) -> np.ndarray:
    """Deterministic per-processor input data.

    The paper's inputs are uniformly distributed integers; we generate
    them as ``int32`` (4-byte items) from a stream derived from the
    experiment seed and the pid, so inputs don't depend on schedule.

    Generation dominates the profile of large sweeps, and paired runs
    (``T_s`` vs ``T_f`` on the same grid point) regenerate identical
    inputs — a small LRU memoises the draw; callers get a private copy
    so in-place mutation cannot leak between simulations.
    """
    return _items_cached(int(seed), int(pid), int(count)).copy()


def concat_payloads(arrays: t.Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate item arrays (empty-safe)."""
    arrays = [np.asarray(a) for a in arrays]
    if not arrays:
        return np.empty(0, dtype=np.int32)
    return np.concatenate(arrays)
