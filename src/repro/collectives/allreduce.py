"""The HBSP^k all-reduce: every processor ends with the combined vector.

Two strategies (compare the all-gather):

``"tree"``
    The hierarchical reduction to the root followed by a one-phase
    hierarchical broadcast — 2k supersteps, but only ``width`` items
    ever cross each link, which is what the hierarchy is for.

``"direct"``
    One superstep: everyone sends its vector to everyone and combines
    locally — ``p·width`` traffic per processor but no tree latency;
    wins for small vectors on flat machines.

The crossover between the two is exactly the §3.4 trade-off between
communication volume and synchronisation/latency overhead, and the
``run_allreduce`` prediction exposes it.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, make_items, make_runtime
from repro.collectives.reduce import OPS_PER_ITEM, predict_reduce_cost, reduce_program
from repro.collectives.schedules import (
    RootPolicy,
    effective_coordinator,
    level_participants,
    resolve_root,
)
from repro.errors import CollectiveError
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.model.predict import predict_broadcast

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["allreduce_program", "run_allreduce", "predict_allreduce_cost"]


def allreduce_program(
    ctx: HbspContext,
    width: int,
    root: int,
    strategy: str = "tree",
    seed: int = 0,
) -> t.Generator:
    """Per-process all-reduce program (element-wise sum).

    Returns ``(items, checksum)``; on success every pid reports the
    same checksum: the sum over all processors' vectors.
    """
    if strategy == "direct":
        mine = make_items(seed, ctx.pid, width).astype(np.int64)
        with ctx.phase("allreduce direct exchange"):
            for peer in range(ctx.nprocs):
                if peer != ctx.pid:
                    yield from ctx.send(peer, mine, tag=ctx.pid)
        yield from ctx.sync()
        acc = mine.copy()
        with ctx.phase("allreduce combine"):
            for message in ctx.messages():
                yield from ctx.compute(width * OPS_PER_ITEM)
                acc += message.payload
        return (int(acc.size), int(acc.sum()))
    if strategy == "tree":
        # Phase 1: hierarchical reduction onto the root...
        held, _checksum = yield from reduce_program(ctx, width, root, seed)
        # ...phase 2: one-phase hierarchical broadcast of the result.
        k = ctx.runtime.tree.k
        acc: np.ndarray | None = None
        if held:
            # The root rebuilt the total during reduce_program; rebuild
            # it here deterministically for the broadcast payload.
            acc = np.zeros(width, dtype=np.int64)
            for pid in range(ctx.nprocs):
                acc += make_items(seed, pid, width).astype(np.int64)
        for level in range(k, 0, -1):
            participants = level_participants(ctx, level, root)
            coordinator = effective_coordinator(ctx, level, root)
            if ctx.pid == coordinator and acc is not None:
                with ctx.phase(f"allreduce broadcast L{level}", level=level):
                    for peer in participants:
                        if peer != ctx.pid:
                            yield from ctx.send(peer, acc, tag=(1 << 21) + level)
            yield from ctx.sync(level)
            arrived = ctx.messages(tag=(1 << 21) + level)
            if arrived:
                acc = arrived[0].payload
        if acc is None:
            return (0, 0)
        return (int(acc.size), int(acc.sum()))
    raise CollectiveError(f"unknown allreduce strategy {strategy!r}")


def run_allreduce(
    topology: ClusterTopology,
    width: int,
    *,
    strategy: str = "tree",
    root: int | RootPolicy | None = None,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the all-reduce and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    root_pid = resolve_root(runtime, root)
    result = runtime.run(allreduce_program, width, root_pid, strategy, seed)
    cpu_rates = [m.cpu_rate for m in runtime.topology.machines]
    predicted = predict_allreduce_cost(
        runtime.params, width, strategy=strategy, root=root_pid, cpu_rates=cpu_rates
    )
    return CollectiveOutcome(
        name=f"allreduce(width={width}, strategy={strategy})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_allreduce_cost(
    params: HBSPParams,
    width: int,
    *,
    strategy: str = "tree",
    root: int | None = None,
    cpu_rates: t.Sequence[float] | None = None,
    item_bytes: int = 8,
) -> CostLedger:
    """Closed-form all-reduce cost for either strategy.

    Caveat for ``"direct"`` on hierarchical (k >= 2) machines: the
    HBSP^k cost formula charges communication at ``g·r`` per byte and
    has no term for *which wire* a message crosses.  Level-structured
    algorithms (like ``"tree"``) are priced correctly because each
    super^i-step's traffic stays on one level; a flat exchange whose
    messages cross slow upper-level networks is systematically
    *under*-predicted.  This is a real property of the model — the
    reason the paper's algorithms are level-structured — and the
    allreduce tests document it.
    """
    if strategy == "direct":
        ledger = CostLedger(f"allreduce-direct(width={width})")
        loads = [
            (params.r_of(0, j), width * (params.p - 1) * item_bytes)
            for j in range(params.p)
        ]
        w = 0.0
        if cpu_rates is not None:
            w = max(
                (params.p - 1) * width * OPS_PER_ITEM / cpu_rates[j]
                for j in range(params.p)
            )
        ledger.charge_step(
            "super1: direct exchange + combine",
            level=1,
            g=params.g,
            loads=loads,
            w=w,
            L=params.L_of(params.k, 0),
        )
        return ledger
    if strategy == "tree":
        ledger = CostLedger(f"allreduce-tree(width={width})")
        ledger.extend(
            predict_reduce_cost(
                params, width, root=root, cpu_rates=cpu_rates, item_bytes=item_bytes
            ),
            "reduce/",
        )
        # The broadcast moves int64 vectors of `width` items.
        bcast_n = width * item_bytes // 4  # predict_broadcast counts 4-byte items
        ledger.extend(
            predict_broadcast(params, bcast_n, root=root, phases="one"),
            "broadcast/",
        )
        return ledger
    raise CollectiveError(f"unknown allreduce strategy {strategy!r}")
