"""The total exchange (all-to-all personalized communication).

Every processor ``i`` holds a distinct block for every other processor
``j``; after the exchange, ``j`` holds blocks from everyone.  This is
the heaviest h-relation of the toolkit and a single superstep: the
heterogeneous h-relation is dominated by the slowest machine's total
send-or-receive volume, which makes the operation a useful stress test
of the cost model's communication term.

Block sizes follow the workload fractions both ways: processor ``i``
sends ``c_i · c_j · n`` items to ``j`` (a doubly-proportional layout,
so both the send and the receive volumes respect machine speeds).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import CollectiveOutcome, make_runtime
from repro.collectives.schedules import WorkloadPolicy, split_counts
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.model.predict import default_counts
from repro.util.rng import RngStream
from repro.util.units import BYTES_PER_INT

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["alltoall_program", "run_alltoall", "predict_alltoall_cost", "block_counts"]


def block_counts(counts: t.Sequence[int], nprocs: int) -> list[list[int]]:
    """Per-pair block sizes: row ``i`` is what pid ``i`` sends to each pid.

    Row ``i`` partitions ``counts[i]`` proportionally to ``counts``
    (largest-remainder), with the diagonal kept — a processor's own
    block simply stays local.
    """
    from repro.bytemark.ranking import partition_items

    n = sum(counts)
    out: list[list[int]] = []
    for i in range(nprocs):
        if n == 0 or counts[i] == 0:
            out.append([0] * nprocs)
            continue
        fractions = {str(j): counts[j] / n for j in range(nprocs)}
        part = partition_items(counts[i], fractions)
        out.append([part[str(j)] for j in range(nprocs)])
    return out


def alltoall_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    seed: int = 0,
) -> t.Generator:
    """Per-process total-exchange program.

    Returns ``(items_received, checksum)`` where ``items_received``
    includes the local (diagonal) block.
    """
    blocks = block_counts(counts, ctx.nprocs)
    stream = RngStream(seed, "alltoall", ctx.pid)
    outgoing = [
        stream.uniform_ints(blocks[ctx.pid][j], high=2**31 - 1).astype(np.int32)
        for j in range(ctx.nprocs)
    ]
    with ctx.phase("alltoall exchange"):
        for peer in range(ctx.nprocs):
            if peer != ctx.pid and outgoing[peer].size:
                yield from ctx.send(peer, outgoing[peer], tag=ctx.pid)
    yield from ctx.sync()
    received = {ctx.pid: outgoing[ctx.pid]}
    for message in ctx.messages():
        received[message.tag] = message.payload
    total = int(sum(a.size for a in received.values()))
    checksum = int(
        sum(int(a.astype(np.int64).sum()) for a in received.values() if a.size)
    )
    return (total, checksum)


def run_alltoall(
    topology: ClusterTopology,
    n: int,
    *,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the total exchange and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    counts = split_counts(runtime, n, workload)
    result = runtime.run(alltoall_program, counts, seed)
    predicted = predict_alltoall_cost(runtime.params, n, counts=counts)
    return CollectiveOutcome(
        name=f"alltoall(n={n})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_alltoall_cost(
    params: HBSPParams,
    n: int,
    *,
    counts: t.Sequence[int] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Closed-form total-exchange cost (one superstep).

    ``h_{0,j}`` is the larger of pid ``j``'s off-diagonal send and
    receive volumes under the doubly-proportional block layout.
    """
    if counts is None:
        counts = default_counts(params, n)
    blocks = block_counts(list(counts), params.p)
    ledger = CostLedger(f"alltoall(n={n})")
    loads = []
    for j in range(params.p):
        sent = sum(blocks[j]) - blocks[j][j]
        received = sum(blocks[i][j] for i in range(params.p)) - blocks[j][j]
        loads.append((params.r_of(0, j), max(sent, received) * item_bytes))
    ledger.charge_step(
        "super1: total exchange",
        level=1,
        g=params.g,
        loads=loads,
        L=params.L_of(params.k, 0),
    )
    return ledger
