"""The HBSP^k all-gather (each processor ends with everyone's data).

Two strategies, which the ablation benchmarks compare:

``"direct"``
    One superstep: every processor sends its chunk to every other
    processor.  The h-relation is dominated by the slowest machine's
    full receive volume, so heterogeneity cannot be exploited (the
    same conclusion the paper draws for the broadcast).

``"hierarchical"``
    A gather to the fastest root followed by a two-phase broadcast —
    the composition of the paper's two Section-4 algorithms.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.collectives.base import (
    CollectiveOutcome,
    concat_payloads,
    make_items,
    make_runtime,
)
from repro.collectives.broadcast import broadcast_program
from repro.collectives.gather import gather_program
from repro.collectives.schedules import (
    RootPolicy,
    WorkloadPolicy,
    effective_coordinator,
    resolve_root,
    split_counts,
)
from repro.errors import CollectiveError
from repro.hbsplib.context import HbspContext
from repro.model.cost import CostLedger, h_relation
from repro.model.params import HBSPParams
from repro.model.predict import (
    default_counts,
    predict_broadcast,
    predict_gather,
)
from repro.util.units import BYTES_PER_INT

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["allgather_program", "run_allgather", "predict_allgather_cost"]


def allgather_program(
    ctx: HbspContext,
    counts: t.Sequence[int],
    root: int,
    strategy: str = "hierarchical",
    seed: int = 0,
) -> t.Generator:
    """Per-process all-gather program.

    Returns ``(items, checksum)``; on success every pid reports
    ``sum(counts)`` items with identical checksums.
    """
    if strategy == "direct":
        data = make_items(seed, ctx.pid, counts[ctx.pid])
        with ctx.phase("allgather direct exchange"):
            for peer in range(ctx.nprocs):
                if peer != ctx.pid:
                    yield from ctx.send(peer, data, tag=ctx.pid)
        yield from ctx.sync()
        pieces = {ctx.pid: data}
        for message in ctx.messages():
            pieces[message.tag] = message.payload
        everything = concat_payloads([pieces[j] for j in sorted(pieces)])
        return (int(everything.size), int(everything.astype(np.int64).sum()))
    if strategy == "hierarchical":
        # Phase 1: gather everything onto the root.  make_items is
        # deterministic per (seed, pid), so _rebroadcast can rebuild the
        # root's gathered buffer exactly; checksums verify the real
        # data movement end to end.
        yield from gather_program(ctx, counts, root, seed)
        return (yield from _rebroadcast(ctx, counts, root, seed))
    raise CollectiveError(f"unknown allgather strategy {strategy!r}")


def _rebroadcast(
    ctx: HbspContext, counts: t.Sequence[int], root: int, seed: int
) -> t.Generator:
    """Two-phase broadcast of the gathered concatenation from ``root``."""
    n = int(sum(counts))
    data: np.ndarray | None = None
    if ctx.pid == root:
        data = concat_payloads(
            [make_items(seed, pid, counts[pid]) for pid in range(ctx.nprocs)]
        )
    k = ctx.runtime.tree.k
    # Reuse the broadcast's level walk by delegating to its program
    # body with the pre-built data: simplest correct way is to send the
    # data through the same schedule as broadcast_program, which only
    # needs the root to hold `data`.  We inline a one-phase descent for
    # clarity (the hierarchical strategy's cost is dominated by the
    # gather plus this broadcast either way).
    from repro.collectives.schedules import level_participants

    for level in range(k, 0, -1):
        participants = level_participants(ctx, level, root)
        coordinator = effective_coordinator(ctx, level, root)
        if ctx.pid == coordinator and data is not None:
            with ctx.phase(f"allgather rebroadcast L{level}", level=level):
                for peer in participants:
                    if peer != ctx.pid:
                        yield from ctx.send(peer, data, tag=(1 << 20) + level)
        yield from ctx.sync(level)
        arrived = ctx.messages(tag=(1 << 20) + level)
        if arrived:
            data = arrived[0].payload
    if data is None:
        return (0, 0)
    return (int(data.size), int(data.astype(np.int64).sum()))


def run_allgather(
    topology: ClusterTopology,
    n: int,
    *,
    strategy: str = "hierarchical",
    root: int | RootPolicy | None = None,
    workload: WorkloadPolicy | t.Sequence[int] = WorkloadPolicy.BALANCED,
    scores: t.Mapping[str, float] | None = None,
    seed: int = 0,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    fault_seed: int | None = None,
    delivery: t.Any | None = None,
) -> CollectiveOutcome:
    """Run the all-gather and predict its cost."""
    runtime = make_runtime(
        topology, scores=scores, trace=trace, faults=faults,
        fault_seed=seed if fault_seed is None else fault_seed, delivery=delivery,
    )
    root_pid = resolve_root(runtime, root)
    counts = split_counts(runtime, n, workload)
    result = runtime.run(allgather_program, counts, root_pid, strategy, seed)
    predicted = predict_allgather_cost(
        runtime.params, n, strategy=strategy, root=root_pid, counts=counts
    )
    return CollectiveOutcome(
        name=f"allgather(n={n}, strategy={strategy})",
        time=result.time,
        supersteps=result.supersteps,
        values=result.values,
        predicted=predicted,
        result=result,
        runtime=runtime,
    )


def predict_allgather_cost(
    params: HBSPParams,
    n: int,
    *,
    strategy: str = "hierarchical",
    root: int | None = None,
    counts: t.Sequence[int] | None = None,
    item_bytes: int = BYTES_PER_INT,
) -> CostLedger:
    """Closed-form all-gather cost for either strategy."""
    if counts is None:
        counts = default_counts(params, n)
    if strategy == "direct":
        ledger = CostLedger(f"allgather-direct(n={n})")
        loads = []
        for j in range(params.p):
            send_volume = counts[j] * (params.p - 1)
            recv_volume = n - counts[j]
            loads.append(
                (params.r_of(0, j), max(send_volume, recv_volume) * item_bytes)
            )
        ledger.charge_step(
            "super1: direct total exchange",
            level=1,
            g=params.g,
            loads=loads,
            L=params.L_of(params.k, 0),
        )
        return ledger
    if strategy == "hierarchical":
        ledger = CostLedger(f"allgather-hier(n={n})")
        ledger.extend(predict_gather(params, n, root=root, counts=counts), "gather/")
        ledger.extend(
            predict_broadcast(params, n, root=root, phases="one"), "broadcast/"
        )
        return ledger
    raise CollectiveError(f"unknown allgather strategy {strategy!r}")
