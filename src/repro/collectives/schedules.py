"""Root-selection and workload-distribution policies.

The paper's experiments vary exactly two knobs (Section 5.1):

* **who is the root** — ``P_f`` (fastest, the model's recommendation)
  vs ``P_s`` (slowest, the adversarial baseline), giving ``T_f``/``T_s``;
* **how the workload is split** — equal shares ``c_j = 1/p``
  (unbalanced, ``T_u``) vs BYTEmark-proportional shares (balanced,
  ``T_b``).

This module centralises those policies plus the coordinator override
that re-roots a hierarchical collective on an arbitrary processor.
"""

from __future__ import annotations

import enum
import typing as t

from repro.errors import CollectiveError
from repro.hbsplib.context import HbspContext
from repro.hbsplib.runtime import HbspRuntime

__all__ = [
    "RootPolicy",
    "SchedulePolicy",
    "WorkloadPolicy",
    "resolve_root",
    "resolve_plan",
    "effective_coordinator",
    "split_counts",
    "level_participants",
]


class RootPolicy(enum.Enum):
    """Which processor acts as the collective's root."""

    FASTEST = "fastest"  #: the paper's recommendation: P_f
    SLOWEST = "slowest"  #: the adversarial baseline: P_s


class WorkloadPolicy(enum.Enum):
    """How the problem is split across processors."""

    EQUAL = "equal"  #: homogeneous baseline: c_j = 1/p (T_u)
    BALANCED = "balanced"  #: speed-proportional c_j from scores (T_b)


class SchedulePolicy(enum.Enum):
    """Which per-level schedule a gather/broadcast runs."""

    DEFAULT = "default"  #: the paper's hand-picked schedule
    TUNED = "tuned"  #: auto-tuned via :mod:`repro.tuning` (cached)


def resolve_plan(
    topology: t.Any,
    op: str,
    n: int,
    schedule: "SchedulePolicy | str | None",
    *,
    root: "int | RootPolicy | None" = None,
) -> t.Any:
    """Turn a :class:`SchedulePolicy` into a plan argument for ``run_*``.

    ``DEFAULT``/``None`` returns ``None`` (the built-in schedule);
    ``TUNED`` consults the persistent decision cache — tuning cold on a
    first encounter — and returns the winning
    :class:`~repro.tuning.plan.SchedulePlan`.  Only ``gather`` and
    ``broadcast`` are tunable; ``TUNED`` on another op raises.
    """
    if isinstance(schedule, str):
        schedule = SchedulePolicy(schedule)
    if schedule in (None, SchedulePolicy.DEFAULT):
        return None
    if op not in ("gather", "broadcast"):
        raise CollectiveError(
            f"--schedule tuned supports gather/broadcast, not {op!r}"
        )
    from repro.tuning.tuner import tuned_plan

    return tuned_plan(topology, op, n, root=root)


def resolve_root(runtime: HbspRuntime, root: int | RootPolicy | None) -> int:
    """Turn a root spec (pid, policy, or None=fastest) into a pid."""
    if root is None or root is RootPolicy.FASTEST:
        return runtime.fastest_pid
    if root is RootPolicy.SLOWEST:
        return runtime.slowest_pid
    if isinstance(root, bool) or not isinstance(root, int):
        raise CollectiveError(f"root must be a pid or RootPolicy, got {root!r}")
    if not 0 <= root < runtime.nprocs:
        raise CollectiveError(f"root pid {root} out of range [0, {runtime.nprocs})")
    return root


def effective_coordinator(ctx: HbspContext, level: int, root: int) -> int:
    """Coordinator of ``ctx``'s level-``level`` cluster, honouring ``root``.

    The cluster chain that contains the chosen root is coordinated by
    the root itself at every level (so the data ends up — or starts —
    on the requested processor); every other cluster keeps its default
    (fastest-member) coordinator, per Section 3.1.
    """
    members = ctx.cluster_members(level)
    if root in members:
        return root
    return ctx.coordinator_pid(level)


def level_participants(ctx: HbspContext, level: int, root: int) -> list[int]:
    """The processes active in a super^level-step of ``ctx``'s cluster.

    These are the coordinators of the child subtrees of ``ctx``'s
    level-``level`` ancestor cluster (honouring the ``root`` override);
    at ``level = 1`` this is simply every member processor.
    """
    node = ctx.runtime._ancestor(ctx.pid, level)
    cache = ctx.runtime._schedule_cache
    key = ("participants", id(node), root)
    out = cache.get(key)
    if out is None:
        out = []
        for child in node.children:
            if root in child.members:
                out.append(root)
            else:
                out.append(child.coordinator)
        cache[key] = out
    return out


def split_counts(
    runtime: HbspRuntime,
    n: int,
    workload: WorkloadPolicy | t.Sequence[int],
) -> list[int]:
    """Per-pid item counts for ``n`` items under a workload policy.

    Accepts an explicit counts sequence (validated to conserve ``n``)
    or a :class:`WorkloadPolicy`.
    """
    if isinstance(workload, WorkloadPolicy):
        return runtime.partition(n, balanced=(workload is WorkloadPolicy.BALANCED))
    counts = [int(c) for c in workload]
    if len(counts) != runtime.nprocs:
        raise CollectiveError(
            f"counts must have {runtime.nprocs} entries, got {len(counts)}"
        )
    if any(c < 0 for c in counts):
        raise CollectiveError("counts must be non-negative")
    if sum(counts) != n:
        raise CollectiveError(f"counts sum to {sum(counts)}, expected n={n}")
    return counts
