"""The open-loop serving loop on the discrete-event engine.

``run_service`` plays one :class:`~repro.serve.config.ServiceConfig`
session: seeded arrivals hit a bounded admission queue, a dispatcher
coalesces same-kind neighbours into batches and places each batch on
the idle topology slice that finishes it soonest (the proportional
``c_{i,j}`` rule lifted to subtrees — see :mod:`repro.serve.placement`),
and per-stage makespans come from real kernel simulations through
:class:`~repro.serve.costs.StageCostModel`.

Two clocks, one determinism story:

* the *service clock* is a fresh :class:`~repro.sim.engine.Engine`
  whose events are arrivals and batch completions — thousands of
  events, microseconds of wall-clock;
* the *kernel clock* lives inside the stage simulations, which were
  prewarmed through :func:`repro.perf.evaluate` in one batch — so a
  ``sweep(jobs=N)`` context parallelises the expensive part while the
  loop stays serial, and the whole session is bit-identical at any
  ``N``.

When a :func:`repro.obs.observe` observation is active the session
emits ``repro_serve_*`` metrics (arrival/shed/batch counters, latency
and queue-depth histograms) and, with spans on, one span per request —
so the Chrome-trace and Prometheus exporters work on serving sessions
for free.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.topology import ClusterTopology
from repro.errors import ServeError
from repro.obs.observe import current_observation
from repro.serve.arrivals import Arrival, generate_arrivals, offered_rate
from repro.serve.config import ServiceConfig
from repro.serve.costs import StageCostModel
from repro.serve.placement import carve_slices, pick_slice
from repro.serve.report import ServiceReport
from repro.sim.engine import Engine

__all__ = ["run_service", "resolve_cluster"]


def resolve_cluster(spec: str) -> ClusterTopology:
    """Build the shared cluster from a preset name or generator spec."""
    from repro.cli import _build_any

    return _build_any(spec)


def _check_shared_model(model: StageCostModel, config: ServiceConfig) -> None:
    """A shared cost model must describe the same traffic shapes."""
    ours = (config.cluster, config.workload, config.policy, config.seed)
    theirs = (
        model.config.cluster,
        model.config.workload,
        model.config.policy,
        model.config.seed,
    )
    if ours != theirs:
        raise ServeError(
            "shared StageCostModel was built for a different session shape "
            "(cluster/workload/policy/seed must match; only arrival and "
            "duration may differ)"
        )


def run_service(
    config: ServiceConfig, *, costs: StageCostModel | None = None
) -> ServiceReport:
    """Simulate one serving session and return its report.

    ``costs`` shares a prewarmed :class:`StageCostModel` across
    sessions that differ only in arrival process/duration (the
    goodput-vs-offered-load sweeps); by default the session builds and
    prewarms its own.
    """
    topology = resolve_cluster(config.cluster)
    slices = carve_slices(topology, config.policy.placement)
    if costs is None:
        model = StageCostModel(config, slices)
    else:
        _check_shared_model(costs, config)
        model = costs
    model.prewarm()

    observation = current_observation()
    metrics = observation.metrics if observation is not None else None
    tracer = (
        observation.tracer
        if observation is not None and observation.tracer.enabled
        else None
    )

    arrivals = generate_arrivals(config)
    engine = Engine()
    queue: deque[Arrival] = deque()
    idle = [True] * len(slices)
    busy_time = [0.0] * len(slices)
    slice_completed = [0] * len(slices)
    kind_completed = [0] * len(config.workload)
    latencies: list[float] = []
    state = {"admitted": 0, "shed": 0, "batches": 0, "depth_max": 0}
    limit = config.policy.queue_limit
    max_batch = config.policy.max_batch

    def dispatch() -> None:
        while queue:
            idle_slices = [j for j in range(len(slices)) if idle[j]]
            if not idle_slices:
                return
            kind = queue[0].kind
            size = 1
            while (
                size < max_batch
                and size < len(queue)
                and queue[size].kind == kind
            ):
                size += 1
            batch_costs = [
                model.request_cost(kind, j, size) for j in range(len(slices))
            ]
            target = pick_slice(idle_slices, batch_costs, slices)
            batch = [queue.popleft() for _ in range(size)]
            idle[target] = False
            state["batches"] += 1
            if metrics is not None:
                metrics.inc("repro_serve_batches_total")
            cost = batch_costs[target]
            start = engine.now
            engine.call_at(
                start + cost,
                lambda j=target, b=batch, s=start, c=cost: _complete(j, b, s, c),
            )

    def _complete(
        target: int, batch: list[Arrival], start: float, cost: float
    ) -> None:
        idle[target] = True
        busy_time[target] += cost
        slice_completed[target] += len(batch)
        now = engine.now
        for request in batch:
            kind = config.workload[request.kind]
            # Queue wait + service time, not (now - arrival): for a
            # request dispatched the instant it arrived this is the
            # batch-runner makespan *exactly* (no float round-trip
            # through the event clock), which the vanishing-load
            # degeneration tests assert bit-for-bit.
            latency = (start - request.time) + cost
            latencies.append(latency)
            kind_completed[request.kind] += 1
            if metrics is not None:
                metrics.inc("repro_serve_completed_total")
                metrics.observe("repro_serve_latency_seconds", latency)
            if tracer is not None:
                tracer.add(
                    "serve", kind.name,
                    group="serve", actor=f"slice {slices[target].name}",
                    start=request.time, end=now,
                    request=request.request_id, batch=len(batch),
                )
        dispatch()

    def _admit(arrival: Arrival) -> None:
        kind = config.workload[arrival.kind]
        if metrics is not None:
            metrics.inc(
                "repro_serve_requests_total", labels=(("kind", kind.name),)
            )
        if limit and len(queue) >= limit:
            state["shed"] += 1
            if metrics is not None:
                metrics.inc("repro_serve_shed_total")
            return
        queue.append(arrival)
        state["admitted"] += 1
        depth = len(queue)
        state["depth_max"] = max(state["depth_max"], depth)
        if metrics is not None:
            metrics.observe("repro_serve_queue_depth", float(depth))
        dispatch()

    for arrival in arrivals:
        engine.call_at(arrival.time, lambda a=arrival: _admit(a))
    makespan = engine.run()

    slo = config.policy.slo
    good = (
        sum(1 for latency in latencies if latency <= slo)
        if slo is not None
        else len(latencies)
    )
    goodput = good / config.duration
    if metrics is not None:
        metrics.set_gauge("repro_serve_goodput", goodput)
        metrics.set_gauge("repro_serve_queue_depth_max", float(state["depth_max"]))

    return ServiceReport(
        cluster=config.cluster,
        seed=config.seed,
        duration=config.duration,
        offered=len(arrivals),
        offered_rate=offered_rate(config),
        admitted=state["admitted"],
        completed=len(latencies),
        shed=state["shed"],
        batches=state["batches"],
        goodput=goodput,
        slo=slo,
        makespan=makespan,
        queue_depth_max=state["depth_max"],
        latencies=tuple(latencies),
        slice_names=tuple(s.name for s in slices),
        slice_busy=tuple(busy_time),
        slice_completed=tuple(slice_completed),
        kind_completed=tuple(
            (kind.name, kind_completed[i])
            for i, kind in enumerate(config.workload)
        ),
    )
