"""The open-loop serving loop on the discrete-event engine.

``run_service`` plays one :class:`~repro.serve.config.ServiceConfig`
session: seeded arrivals hit a bounded admission queue, a dispatcher
coalesces same-kind neighbours into batches and places each batch on
the idle topology slice that finishes it soonest (the proportional
``c_{i,j}`` rule lifted to subtrees — see :mod:`repro.serve.placement`),
and per-stage makespans come from real kernel simulations through
:class:`~repro.serve.costs.StageCostModel`.

Two clocks, one determinism story:

* the *service clock* is a fresh :class:`~repro.sim.engine.Engine`
  whose events are arrivals and batch completions — thousands of
  events, microseconds of wall-clock;
* the *kernel clock* lives inside the stage simulations, which were
  prewarmed through :func:`repro.perf.evaluate` in one batch — so a
  ``sweep(jobs=N)`` context parallelises the expensive part while the
  loop stays serial, and the whole session is bit-identical at any
  ``N``.

A :class:`~repro.dynamics.DynamicPlan` makes the session *churn
tolerant*: membership epochs (machines joining and leaving) re-plan
placement — each base slice gets per-epoch degraded variants carved
from the machines still present, batches in flight when their slice
loses a machine are interrupted and re-queued (bounded by
``policy.max_redispatch``, then shed as degraded), and the report and
``repro_serve_degraded_*`` metrics record how gracefully the session
absorbed the churn.  A ``None`` or empty plan takes the exact static
code path, so those sessions stay bit-identical to pre-dynamics runs.

When a :func:`repro.obs.observe` observation is active the session
emits ``repro_serve_*`` metrics (arrival/shed/batch counters, latency
and queue-depth histograms) and, with spans on, one span per request
plus one per membership epoch — so the Chrome-trace and Prometheus
exporters work on serving sessions for free.
"""

from __future__ import annotations

import bisect
import math
import typing as t
from collections import deque

from repro.cluster.topology import ClusterTopology
from repro.errors import ServeError
from repro.obs.observe import current_observation
from repro.serve.arrivals import Arrival, generate_arrivals, offered_rate
from repro.serve.config import ServiceConfig
from repro.serve.costs import StageCostModel
from repro.serve.placement import Slice, carve_slices, pick_slice, slice_variants
from repro.serve.report import ServiceReport
from repro.sim.engine import Engine

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.dynamics.plan import DynamicPlan

__all__ = ["run_service", "resolve_cluster", "serve_slices"]


def resolve_cluster(spec: str) -> ClusterTopology:
    """Build the shared cluster from a preset name or generator spec."""
    from repro.cli import _build_any

    return _build_any(spec)


def serve_slices(
    config: ServiceConfig, dynamics: "DynamicPlan | None" = None
) -> tuple[tuple[Slice, ...], t.Any]:
    """The slice table a session serves on, plus its epoch live-map.

    Static sessions get ``(base slices, None)``.  Dynamic sessions get
    the expanded table (base slices followed by every distinct degraded
    variant any epoch induces) and the ``live[(slice, epoch)]`` map —
    the same expansion :func:`run_service` uses, exposed so a shared
    :class:`StageCostModel` can be prewarmed against it.
    """
    topology = resolve_cluster(config.cluster)
    base = carve_slices(topology, config.policy.placement)
    if dynamics is None or dynamics.is_empty:
        return base, None
    from repro.dynamics.epochs import membership_epochs

    dynamics.validate(topology)
    epochs = membership_epochs(dynamics, topology)
    expanded, live = slice_variants(base, epochs)
    return expanded, (epochs, live, len(base))


def _check_shared_model(
    model: StageCostModel, config: ServiceConfig, slices: t.Sequence[Slice]
) -> None:
    """A shared cost model must describe the same traffic shapes."""
    ours = (config.cluster, config.workload, config.policy, config.seed)
    theirs = (
        model.config.cluster,
        model.config.workload,
        model.config.policy,
        model.config.seed,
    )
    if ours != theirs:
        raise ServeError(
            "shared StageCostModel was built for a different session shape "
            "(cluster/workload/policy/seed must match; only arrival and "
            "duration may differ)"
        )
    if tuple(s.name for s in model.slices) != tuple(s.name for s in slices):
        raise ServeError(
            "shared StageCostModel was built for a different slice table "
            "(placement and dynamic plan must match)"
        )


def run_service(
    config: ServiceConfig,
    *,
    dynamics: "DynamicPlan | None" = None,
    costs: StageCostModel | None = None,
) -> ServiceReport:
    """Simulate one serving session and return its report.

    ``dynamics`` subjects the session to membership churn (see the
    module docstring); ``None`` and the empty plan are bit-identical
    no-ops.  ``costs`` shares a prewarmed :class:`StageCostModel`
    across sessions that differ only in arrival process/duration (the
    goodput-vs-offered-load sweeps); by default the session builds and
    prewarms its own.
    """
    slices, dynamic_state = serve_slices(config, dynamics)
    if dynamic_state is None:
        epochs: tuple = ()
        live: dict = {}
        n_base = len(slices)
        dynamic = False
    else:
        epochs, live, n_base = dynamic_state
        dynamic = True
    if costs is None:
        model = StageCostModel(config, slices)
    else:
        _check_shared_model(costs, config, slices)
        model = costs
    model.prewarm()

    observation = current_observation()
    metrics = observation.metrics if observation is not None else None
    tracer = (
        observation.tracer
        if observation is not None and observation.tracer.enabled
        else None
    )

    arrivals = generate_arrivals(config)
    engine = Engine()
    queue: deque[Arrival] = deque()
    idle = [True] * n_base
    busy_time = [0.0] * len(slices)
    slice_completed = [0] * len(slices)
    kind_completed = [0] * len(config.workload)
    latencies: list[float] = []
    state = {
        "admitted": 0, "shed": 0, "batches": 0, "depth_max": 0,
        "redispatched": 0, "degraded": 0, "degraded_shed": 0,
    }
    retries: dict[int, int] = {}
    retry_pending = [False]
    limit = config.policy.queue_limit
    max_batch = config.policy.max_batch
    max_redispatch = config.policy.max_redispatch
    slice_members = [
        frozenset(m.name for m in s.topology.machines) for s in slices
    ]
    # Flattened membership timeline: epoch lookups, live-variant reads,
    # and interrupt scans run per dispatch, so they must not hash tuple
    # keys or walk the whole epoch list.  Simulated time is monotone,
    # so a cursor advanced in place makes the epoch lookup amortised
    # O(1) across the session.
    epoch_starts = [e.start for e in epochs]
    n_epochs = len(epochs)
    live_rows = [
        [live.get((j, e)) for j in range(n_base)] for e in range(n_epochs)
    ]
    # (current epoch index, start of the next epoch) — the second field
    # lets dispatch's hot path decide "no boundary ahead of this batch"
    # with one float comparison.
    epoch_cursor = [0, epoch_starts[1] if n_epochs > 1 else math.inf]
    # Epochs whose live map is the identity (every base slice hosts
    # itself) dispatch exactly like a static session.
    identity_rows = [
        all(row[j] == j for j in range(n_base)) for row in live_rows
    ]

    def _epoch_index(t_now: float) -> int:
        i = epoch_cursor[0]
        while i + 1 < n_epochs and epoch_starts[i + 1] <= t_now:
            i += 1
        epoch_cursor[0] = i
        epoch_cursor[1] = epoch_starts[i + 1] if i + 1 < n_epochs else math.inf
        return i

    def _next_boundary(t_now: float) -> float | None:
        i = bisect.bisect_right(epoch_starts, t_now)
        return epoch_starts[i] if i < len(epoch_starts) else None

    def _interrupt_time(variant: int, start: float, cost: float) -> float | None:
        """First epoch boundary in ``(start, start+cost)`` that takes a
        machine away from the dispatched variant, if any."""
        members = slice_members[variant]
        end = start + cost
        # Dispatch advances the cursor to the epoch covering ``start``
        # just before calling this, so the candidate boundaries begin
        # at the next epoch (their starts strictly increase).
        for i in range(epoch_cursor[0] + 1, n_epochs):
            boundary = epoch_starts[i]
            if boundary >= end:
                return None
            if not members <= epochs[i].present:
                return boundary
        return None

    def _shed_degraded(request: Arrival) -> None:
        state["degraded_shed"] += 1
        if metrics is not None:
            metrics.inc("repro_serve_degraded_shed_total")

    def dispatch() -> None:
        while queue:
            idle_slices = [j for j in range(n_base) if idle[j]]
            if not idle_slices:
                return
            if dynamic:
                if engine.now >= epoch_cursor[1]:
                    _epoch_index(engine.now)
                degraded_epoch = not identity_rows[epoch_cursor[0]]
            else:
                degraded_epoch = False
            if degraded_epoch:
                row = live_rows[epoch_cursor[0]]
                placeable = [
                    (j, row[j]) for j in idle_slices if row[j] is not None
                ]
                if not placeable:
                    if not all(idle):
                        return  # a completion will re-dispatch
                    boundary = _next_boundary(engine.now)
                    if boundary is None:
                        # The surviving membership can never host a
                        # request again: shed the backlog as degraded.
                        while queue:
                            _shed_degraded(queue.popleft())
                        return
                    if not retry_pending[0]:
                        retry_pending[0] = True
                        engine.call_at(boundary, _retry)
                    return
            else:
                # Static sessions and fully-live epochs place every
                # idle base slice on itself.
                placeable = [(j, j) for j in idle_slices]
            kind = queue[0].kind
            size = 1
            while (
                size < max_batch
                and size < len(queue)
                and queue[size].kind == kind
            ):
                size += 1
            batch_costs = [float("inf")] * n_base
            variant_slice = list(slices[:n_base])
            variant_of = dict(placeable)
            for j, variant in placeable:
                batch_costs[j] = model.request_cost(kind, variant, size)
                variant_slice[j] = slices[variant]
            target = pick_slice(
                [j for j, _ in placeable], batch_costs, variant_slice
            )
            variant = variant_of[target]
            batch = [queue.popleft() for _ in range(size)]
            idle[target] = False
            state["batches"] += 1
            if metrics is not None:
                metrics.inc("repro_serve_batches_total")
            cost = batch_costs[target]
            start = engine.now
            cut = (
                _interrupt_time(variant, start, cost)
                if dynamic and start + cost > epoch_cursor[1]
                else None
            )
            if cut is None:
                engine.call_at(
                    start + cost,
                    lambda j=target, v=variant, b=batch, s=start, c=cost: (
                        _complete(j, v, b, s, c)
                    ),
                )
            else:
                engine.call_at(
                    cut,
                    lambda j=target, v=variant, b=batch, s=start: (
                        _interrupt(j, v, b, s)
                    ),
                )

    def _retry() -> None:
        retry_pending[0] = False
        dispatch()

    def _interrupt(
        target: int, variant: int, batch: list[Arrival], start: float
    ) -> None:
        """The dispatched slice lost a machine: requeue or shed the batch."""
        idle[target] = True
        busy_time[variant] += engine.now - start
        kept: list[Arrival] = []
        for request in batch:
            attempts = retries.get(request.request_id, 0) + 1
            retries[request.request_id] = attempts
            if attempts > max_redispatch:
                _shed_degraded(request)
            else:
                kept.append(request)
                state["redispatched"] += 1
                if metrics is not None:
                    metrics.inc("repro_serve_redispatched_total")
        for request in reversed(kept):  # keep arrival order at the front
            queue.appendleft(request)
        state["depth_max"] = max(state["depth_max"], len(queue))
        dispatch()

    def _complete(
        target: int, variant: int, batch: list[Arrival], start: float, cost: float
    ) -> None:
        idle[target] = True
        busy_time[variant] += cost
        slice_completed[variant] += len(batch)
        degraded = variant >= n_base
        if degraded:
            state["degraded"] += len(batch)
        now = engine.now
        for request in batch:
            kind = config.workload[request.kind]
            # Queue wait + service time, not (now - arrival): for a
            # request dispatched the instant it arrived this is the
            # batch-runner makespan *exactly* (no float round-trip
            # through the event clock), which the vanishing-load
            # degeneration tests assert bit-for-bit.
            latency = (start - request.time) + cost
            latencies.append(latency)
            kind_completed[request.kind] += 1
            if metrics is not None:
                metrics.inc("repro_serve_completed_total")
                metrics.observe("repro_serve_latency_seconds", latency)
                if degraded:
                    metrics.inc("repro_serve_degraded_requests_total")
            if tracer is not None:
                tracer.add(
                    "serve", kind.name,
                    group="serve", actor=f"slice {slices[variant].name}",
                    start=request.time, end=now,
                    request=request.request_id, batch=len(batch),
                )
        dispatch()

    def _admit(arrival: Arrival) -> None:
        kind = config.workload[arrival.kind]
        if metrics is not None:
            metrics.inc(
                "repro_serve_requests_total", labels=(("kind", kind.name),)
            )
        if limit is not None and len(queue) >= limit:
            state["shed"] += 1
            if metrics is not None:
                metrics.inc("repro_serve_shed_total")
            return
        queue.append(arrival)
        state["admitted"] += 1
        depth = len(queue)
        state["depth_max"] = max(state["depth_max"], depth)
        if metrics is not None:
            metrics.observe("repro_serve_queue_depth", float(depth))
        dispatch()

    for arrival in arrivals:
        engine.call_at(arrival.time, lambda a=arrival: _admit(a))
    makespan = engine.run()

    slo = config.policy.slo
    good = (
        sum(1 for latency in latencies if latency <= slo)
        if slo is not None
        else len(latencies)
    )
    goodput = good / config.duration
    if metrics is not None:
        metrics.set_gauge("repro_serve_goodput", goodput)
        metrics.set_gauge("repro_serve_queue_depth_max", float(state["depth_max"]))
    if dynamic:
        if metrics is not None:
            metrics.set_gauge("repro_serve_epochs", float(len(epochs)))
        if tracer is not None:
            horizon = max(makespan, config.duration)
            for epoch in epochs:
                if epoch.start >= horizon:
                    continue
                tracer.add(
                    "serve", f"epoch {epoch.index}",
                    group="serve", actor="membership",
                    start=epoch.start, end=min(epoch.end, horizon),
                    present=len(epoch.present),
                )

    return ServiceReport(
        cluster=config.cluster,
        seed=config.seed,
        duration=config.duration,
        offered=len(arrivals),
        offered_rate=offered_rate(config),
        admitted=state["admitted"],
        completed=len(latencies),
        shed=state["shed"],
        batches=state["batches"],
        goodput=goodput,
        slo=slo,
        makespan=makespan,
        queue_depth_max=state["depth_max"],
        latencies=tuple(latencies),
        slice_names=tuple(s.name for s in slices),
        slice_busy=tuple(busy_time),
        slice_completed=tuple(slice_completed),
        kind_completed=tuple(
            (kind.name, kind_completed[i])
            for i, kind in enumerate(config.workload)
        ),
        epochs=len(epochs) if dynamic else 1,
        redispatched=state["redispatched"],
        degraded=state["degraded"],
        degraded_shed=state["degraded_shed"],
    )
