"""repro.serve — an open-loop collective-scheduling service.

The production north star made concrete: a long-running simulated
service where requests — each a small chain of ``apps/`` kernels and
gather/broadcast collectives — arrive from simulated users via seeded
open-loop processes and contend for one shared heterogeneous cluster
through admission control, batching, and proportional subtree
placement.  See ``docs/serving.md``.

Quickstart::

    from repro.serve import default_config, run_service
    report = run_service(default_config(seed=0, duration=20.0))
    print(report.render())
"""

from repro.serve.arrivals import Arrival, diurnal_rate, generate_arrivals, offered_rate
from repro.serve.config import (
    REQUEST_TEMPLATES,
    STAGE_OPS,
    ArrivalSpec,
    PolicySpec,
    RequestKind,
    ServiceConfig,
    StageSpec,
    default_config,
)
from repro.serve.costs import StageCostModel
from repro.serve.placement import (
    Slice,
    carve_slices,
    pick_slice,
    restrict_topology,
    slice_variants,
)
from repro.serve.report import ServiceReport, percentile
from repro.serve.service import run_service, resolve_cluster, serve_slices

__all__ = [
    "Arrival",
    "ArrivalSpec",
    "PolicySpec",
    "REQUEST_TEMPLATES",
    "RequestKind",
    "STAGE_OPS",
    "ServiceConfig",
    "ServiceReport",
    "Slice",
    "StageCostModel",
    "StageSpec",
    "carve_slices",
    "default_config",
    "diurnal_rate",
    "generate_arrivals",
    "offered_rate",
    "percentile",
    "pick_slice",
    "resolve_cluster",
    "restrict_topology",
    "run_service",
    "serve_slices",
    "slice_variants",
]
