"""Carving one shared cluster into placement slices.

The paper's proportional rule assigns each machine ``j`` the fraction
``c_{i,j}`` of a cluster's work that its speed can absorb.  The serving
layer lifts the same idea one level up: concurrent *requests* are
carved across the root cluster's subtrees, and the dispatcher awards
each batch to the idle subtree that would finish it soonest — so over
a saturated session every subtree absorbs work in proportion to its
effective speed on that workload, exactly the ``c_{i,j}`` shares
without anyone computing them explicitly.

Each slice is a full :class:`~repro.cluster.topology.ClusterTopology`
of its own (a bare machine child is wrapped into a singleton cluster
by the topology constructor), so the whole existing runtime — apps,
collectives, tuned schedules, the macro engine — runs inside a slice
unchanged.
"""

from __future__ import annotations

import typing as t

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import Cluster, ClusterTopology
from repro.errors import ServeError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.dynamics.epochs import Epoch

__all__ = [
    "Slice",
    "carve_slices",
    "pick_slice",
    "restrict_topology",
    "slice_variants",
]


class Slice(t.NamedTuple):
    """One placement target: a subtree and its aggregate speed."""

    index: int
    name: str
    topology: ClusterTopology
    capacity: float  # sum of member cpu_rate (tie-break weight)


def carve_slices(topology: ClusterTopology, placement: str) -> tuple[Slice, ...]:
    """Split ``topology`` into placement slices.

    ``"whole"`` keeps the machine intact (one slice — requests queue
    for the full cluster).  ``"subtrees"`` gives every child of the
    root cluster its own slice; a root with a single child degenerates
    to ``"whole"``.
    """
    if placement == "whole" or len(topology.root.children) < 2:
        return (
            Slice(
                index=0,
                name=topology.root.name,
                topology=topology,
                capacity=_capacity(topology),
            ),
        )
    if placement != "subtrees":
        raise ServeError(f"unknown placement {placement!r}")
    slices = []
    for index, child in enumerate(topology.root.children):
        sliced = ClusterTopology(child)
        slices.append(
            Slice(
                index=index,
                name=getattr(child, "name", f"slice{index}"),
                topology=sliced,
                capacity=_capacity(sliced),
            )
        )
    return tuple(slices)


def _capacity(topology: ClusterTopology) -> float:
    return float(sum(machine.cpu_rate for machine in topology.machines))


def pick_slice(
    idle: t.Sequence[int], costs: t.Sequence[float], slices: t.Sequence[Slice]
) -> int:
    """The idle slice finishing this batch soonest.

    Ties (identical costs — e.g. homogeneous subtrees) break toward the
    higher-capacity slice, then the lower index, keeping the choice
    deterministic and capacity-proportional.
    """
    if not idle:
        raise ServeError("pick_slice needs at least one idle slice")
    return min(idle, key=lambda j: (costs[j], -slices[j].capacity, j))


def restrict_topology(
    topology: ClusterTopology, present: frozenset[str]
) -> ClusterTopology | None:
    """``topology`` with only the machines named in ``present``.

    Clusters keep their names and networks; a cluster whose whole
    subtree left is dropped.  Returns ``None`` when nothing remains —
    the slice is offline for the epoch.
    """

    def rebuild(node: "Cluster | MachineSpec") -> "Cluster | MachineSpec | None":
        if isinstance(node, MachineSpec):
            return node if node.name in present else None
        kept = [c for c in map(rebuild, node.children) if c is not None]
        if not kept:
            return None
        return Cluster(node.name, node.network, kept)

    root = rebuild(topology.root)
    return None if root is None else ClusterTopology(root)


def slice_variants(
    slices: t.Sequence[Slice], epochs: "t.Sequence[Epoch]"
) -> tuple[tuple[Slice, ...], dict[tuple[int, int], int | None]]:
    """Expand base slices with their per-epoch degraded variants.

    Returns ``(expanded, live)``: ``expanded`` is the base slices
    followed by every *distinct* restricted sub-topology any epoch
    induces (deduplicated by surviving-member set, so ten epochs that
    all lose the same machine share one variant), and
    ``live[(slice_index, epoch_index)]`` maps a base slice to the index
    in ``expanded`` serving it during that epoch — the base index when
    the slice is whole, a variant index when degraded, ``None`` when
    every member is absent (the slice is offline).

    The expansion is what lets one prewarmed
    :class:`~repro.serve.costs.StageCostModel` cover churn: variants
    are ordinary slices, so the model's job universe spans them.
    """
    expanded = list(slices)
    live: dict[tuple[int, int], int | None] = {}
    by_signature: dict[tuple[int, frozenset[str]], int | None] = {}
    for base in slices:
        members = frozenset(m.name for m in base.topology.machines)
        degraded = 0
        for epoch in epochs:
            signature = members & epoch.present
            key = (base.index, signature)
            if key not in by_signature:
                if signature == members:
                    by_signature[key] = base.index
                elif not signature:
                    by_signature[key] = None
                else:
                    sub = restrict_topology(base.topology, signature)
                    assert sub is not None  # signature is non-empty
                    degraded += 1
                    index = len(expanded)
                    expanded.append(
                        Slice(
                            index=index,
                            name=f"{base.name}~deg{degraded}",
                            topology=sub,
                            capacity=_capacity(sub),
                        )
                    )
                    by_signature[key] = index
            live[(base.index, epoch.index)] = by_signature[key]
    return tuple(expanded), live
