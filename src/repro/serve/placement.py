"""Carving one shared cluster into placement slices.

The paper's proportional rule assigns each machine ``j`` the fraction
``c_{i,j}`` of a cluster's work that its speed can absorb.  The serving
layer lifts the same idea one level up: concurrent *requests* are
carved across the root cluster's subtrees, and the dispatcher awards
each batch to the idle subtree that would finish it soonest — so over
a saturated session every subtree absorbs work in proportion to its
effective speed on that workload, exactly the ``c_{i,j}`` shares
without anyone computing them explicitly.

Each slice is a full :class:`~repro.cluster.topology.ClusterTopology`
of its own (a bare machine child is wrapped into a singleton cluster
by the topology constructor), so the whole existing runtime — apps,
collectives, tuned schedules, the macro engine — runs inside a slice
unchanged.
"""

from __future__ import annotations

import typing as t

from repro.cluster.topology import ClusterTopology
from repro.errors import ServeError

__all__ = ["Slice", "carve_slices", "pick_slice"]


class Slice(t.NamedTuple):
    """One placement target: a subtree and its aggregate speed."""

    index: int
    name: str
    topology: ClusterTopology
    capacity: float  # sum of member cpu_rate (tie-break weight)


def carve_slices(topology: ClusterTopology, placement: str) -> tuple[Slice, ...]:
    """Split ``topology`` into placement slices.

    ``"whole"`` keeps the machine intact (one slice — requests queue
    for the full cluster).  ``"subtrees"`` gives every child of the
    root cluster its own slice; a root with a single child degenerates
    to ``"whole"``.
    """
    if placement == "whole" or len(topology.root.children) < 2:
        return (
            Slice(
                index=0,
                name=topology.root.name,
                topology=topology,
                capacity=_capacity(topology),
            ),
        )
    if placement != "subtrees":
        raise ServeError(f"unknown placement {placement!r}")
    slices = []
    for index, child in enumerate(topology.root.children):
        sliced = ClusterTopology(child)
        slices.append(
            Slice(
                index=index,
                name=getattr(child, "name", f"slice{index}"),
                topology=sliced,
                capacity=_capacity(sliced),
            )
        )
    return tuple(slices)


def _capacity(topology: ClusterTopology) -> float:
    return float(sum(machine.cpu_rate for machine in topology.machines))


def pick_slice(
    idle: t.Sequence[int], costs: t.Sequence[float], slices: t.Sequence[Slice]
) -> int:
    """The idle slice finishing this batch soonest.

    Ties (identical costs — e.g. homogeneous subtrees) break toward the
    higher-capacity slice, then the lower index, keeping the choice
    deterministic and capacity-proportional.
    """
    if not idle:
        raise ServeError("pick_slice needs at least one idle slice")
    return min(idle, key=lambda j: (costs[j], -slices[j].capacity, j))
