"""Declarative configuration for the open-loop serving simulator.

A :class:`ServiceConfig` is a plain JSON document describing one
serving session end to end:

* **cluster** — the shared heterogeneous machine, as a preset name
  (``"two-lans"``) or generator spec (``"multi_rack:racks=4,..."``);
* **arrival** — the open-loop arrival process (Poisson or
  diurnal-modulated Poisson) and its mean rate;
* **workload** — the request mix: each :class:`RequestKind` is a small
  chain-shaped DAG of kernel stages (``apps/`` kernels plus
  gather/broadcast collectives) with a base problem size and a mix
  weight;
* **policy** — admission control (bounded queue), batching, placement
  (whole machine vs per-subtree carving) and the collective schedule
  (the paper's defaults or :mod:`repro.tuning`'s auto-tuned plans).

Everything is frozen plain data so a config can ride through
:func:`repro.perf.job.content_tokens` untouched, and every stochastic
choice it implies is derived from ``seed`` alone — two sessions built
from equal configs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t
from pathlib import Path

from repro.errors import ServeError

__all__ = [
    "STAGE_OPS",
    "REQUEST_TEMPLATES",
    "StageSpec",
    "RequestKind",
    "ArrivalSpec",
    "PolicySpec",
    "ServiceConfig",
    "default_config",
]

#: Kernels a request stage may invoke: the compute-carrying ``apps/``
#: programs plus the two tuned collectives.
STAGE_OPS: tuple[str, ...] = (
    "histogram",
    "matvec",
    "sample_sort",
    "gather",
    "broadcast",
)

#: Built-in request shapes, usable as ``{"template": "<name>"}`` in a
#: workload entry.  ``scale`` multiplies the kind's base problem size
#: per stage (a broadcast fanning out a quarter of the working set,
#: say, ahead of a full-size histogram pass).
REQUEST_TEMPLATES: dict[str, tuple[tuple[str, float], ...]] = {
    "interactive": (("broadcast", 0.25), ("histogram", 1.0)),
    "analytics": (("histogram", 1.0), ("gather", 0.5)),
    "train_step": (("broadcast", 1.0), ("matvec", 1.0)),
    "sort": (("sample_sort", 1.0),),
    "fanout": (("broadcast", 1.0), ("gather", 1.0)),
}

_ARRIVAL_PROCESSES = ("poisson", "diurnal")
_PLACEMENTS = ("subtrees", "whole")
_SCHEDULES = ("default", "tuned")


@dataclasses.dataclass(frozen=True)
class StageSpec:
    """One kernel invocation inside a request's stage chain."""

    op: str
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in STAGE_OPS:
            raise ServeError(
                f"unknown stage op {self.op!r}; known: {', '.join(STAGE_OPS)}"
            )
        if not self.scale > 0:
            raise ServeError(f"stage scale must be > 0, got {self.scale!r}")


@dataclasses.dataclass(frozen=True)
class RequestKind:
    """A named request shape: stages, base problem size, mix weight."""

    name: str
    stages: tuple[StageSpec, ...]
    n: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("RequestKind.name must be non-empty")
        if not self.stages:
            raise ServeError(f"request kind {self.name!r} has no stages")
        if self.n < 1:
            raise ServeError(f"request kind {self.name!r} needs n >= 1, got {self.n}")
        if not self.weight > 0:
            raise ServeError(
                f"request kind {self.name!r} needs weight > 0, got {self.weight!r}"
            )

    def stage_n(self, stage: StageSpec, batch: int = 1) -> int:
        """Effective problem size of ``stage`` when ``batch`` requests coalesce."""
        return max(1, round(self.n * stage.scale)) * max(1, int(batch))

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "RequestKind":
        if "template" in data:
            template = data["template"]
            try:
                shape = REQUEST_TEMPLATES[template]
            except KeyError:
                known = ", ".join(sorted(REQUEST_TEMPLATES))
                raise ServeError(
                    f"unknown request template {template!r}; known: {known}"
                ) from None
            stages = tuple(StageSpec(op, scale) for op, scale in shape)
            name = str(data.get("name", template))
        else:
            try:
                raw = data["stages"]
            except KeyError:
                raise ServeError(
                    "request kind needs 'template' or 'stages'"
                ) from None
            stages = tuple(
                StageSpec(str(item), 1.0)
                if isinstance(item, str)
                else StageSpec(str(item["op"]), float(item.get("scale", 1.0)))
                for item in raw
            )
            name = str(data.get("name", ""))
        try:
            n = int(data["n"])
        except KeyError:
            raise ServeError(f"request kind {name!r} needs a problem size 'n'") from None
        return cls(
            name=name, stages=stages, n=n, weight=float(data.get("weight", 1.0))
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stages": [
                {"op": stage.op, "scale": stage.scale} for stage in self.stages
            ],
            "n": self.n,
            "weight": self.weight,
        }


@dataclasses.dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival process: requests arrive regardless of progress.

    ``poisson`` draws i.i.d. exponential inter-arrivals at ``rate``
    requests per simulated second.  ``diurnal`` modulates the rate as
    ``rate * (1 + amplitude * sin(2*pi*t / period))`` via thinning, so
    the session sees alternating peak and trough load.
    """

    process: str = "poisson"
    rate: float = 2.0
    period: float = 60.0
    amplitude: float = 0.5

    def __post_init__(self) -> None:
        if self.process not in _ARRIVAL_PROCESSES:
            raise ServeError(
                f"unknown arrival process {self.process!r}; "
                f"known: {', '.join(_ARRIVAL_PROCESSES)}"
            )
        if not self.rate > 0:
            raise ServeError(f"arrival rate must be > 0, got {self.rate!r}")
        if self.process == "diurnal":
            if not self.period > 0:
                raise ServeError(f"diurnal period must be > 0, got {self.period!r}")
            if not self.amplitude >= 0:
                raise ServeError(
                    f"diurnal amplitude must be >= 0, got {self.amplitude!r}"
                )

    @property
    def trough_rate(self) -> float:
        """The curve's minimum instantaneous rate (= rate for poisson)."""
        if self.process == "diurnal":
            return self.rate * (1.0 - self.amplitude)
        return self.rate

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "ArrivalSpec":
        return cls(
            process=str(data.get("process", "poisson")),
            rate=float(data.get("rate", 2.0)),
            period=float(data.get("period", 60.0)),
            amplitude=float(data.get("amplitude", 0.5)),
        )

    def to_dict(self) -> dict:
        out: dict = {"process": self.process, "rate": self.rate}
        if self.process == "diurnal":
            out["period"] = self.period
            out["amplitude"] = self.amplitude
        return out


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """Service policy knobs: admission, batching, placement, schedule.

    ``queue_limit`` bounds the admission queue: ``None`` means
    unbounded, ``0`` sheds every arrival (the degenerate limit the
    shedding tests pin).  ``max_redispatch`` bounds how many times a
    request interrupted by membership churn is re-queued before the
    service gives up and sheds it as degraded.
    """

    queue_limit: int | None = 64
    max_batch: int = 4
    placement: str = "subtrees"
    schedule: str = "default"
    slo: float | None = None
    max_redispatch: int = 2

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ServeError(
                f"queue_limit must be >= 0 or null (null = unbounded), "
                f"got {self.queue_limit}"
            )
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_redispatch < 0:
            raise ServeError(
                f"max_redispatch must be >= 0, got {self.max_redispatch}"
            )
        if self.placement not in _PLACEMENTS:
            raise ServeError(
                f"unknown placement {self.placement!r}; "
                f"known: {', '.join(_PLACEMENTS)}"
            )
        if self.schedule not in _SCHEDULES:
            raise ServeError(
                f"unknown schedule {self.schedule!r}; "
                f"known: {', '.join(_SCHEDULES)}"
            )
        if self.slo is not None and not self.slo > 0:
            raise ServeError(f"slo must be > 0 seconds or null, got {self.slo!r}")

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "PolicySpec":
        slo = data.get("slo")
        queue_limit = data.get("queue_limit", 64)
        return cls(
            queue_limit=None if queue_limit is None else int(queue_limit),
            max_batch=int(data.get("max_batch", 4)),
            placement=str(data.get("placement", "subtrees")),
            schedule=str(data.get("schedule", "default")),
            slo=None if slo is None else float(slo),
            max_redispatch=int(data.get("max_redispatch", 2)),
        )

    def to_dict(self) -> dict:
        return {
            "queue_limit": self.queue_limit,
            "max_batch": self.max_batch,
            "placement": self.placement,
            "schedule": self.schedule,
            "slo": self.slo,
            "max_redispatch": self.max_redispatch,
        }


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """One complete serving session, JSON-round-trippable."""

    cluster: str
    arrival: ArrivalSpec
    workload: tuple[RequestKind, ...]
    policy: PolicySpec = PolicySpec()
    duration: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.cluster:
            raise ServeError("ServiceConfig.cluster must be non-empty")
        if not self.workload:
            raise ServeError("ServiceConfig.workload must name at least one kind")
        names = [kind.name for kind in self.workload]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate request kind names in workload: {names}")
        if not self.duration > 0:
            raise ServeError(f"duration must be > 0 seconds, got {self.duration!r}")
        # Reject degenerate diurnal curves *eagerly*, at config build
        # time: a trough rate <= 0 means lambda(t) hits zero or goes
        # negative, and thinning would silently generate little or no
        # traffic — a session that "runs fine" and serves nothing.
        if self.arrival.process == "diurnal" and not self.arrival.trough_rate > 0:
            raise ServeError(
                "arrival.amplitude: diurnal trough rate "
                f"rate*(1-amplitude) = {self.arrival.trough_rate!r} must be > 0 "
                f"(arrival.rate={self.arrival.rate!r}, "
                f"arrival.amplitude={self.arrival.amplitude!r})"
            )

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "ServiceConfig":
        try:
            cluster = str(data["cluster"])
        except KeyError:
            raise ServeError("ServiceConfig needs a 'cluster' spec") from None
        workload = data.get("workload")
        if not isinstance(workload, t.Sequence) or isinstance(workload, str):
            raise ServeError("ServiceConfig needs a 'workload' list of request kinds")
        return cls(
            cluster=cluster,
            arrival=ArrivalSpec.from_dict(data.get("arrival", {})),
            workload=tuple(RequestKind.from_dict(item) for item in workload),
            policy=PolicySpec.from_dict(data.get("policy", {})),
            duration=float(data.get("duration", 60.0)),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ServiceConfig":
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise ServeError(f"cannot read service config {path}: {error}") from None
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ServeError(f"service config {path} is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ServeError(f"service config {path} must be a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        return {
            "cluster": self.cluster,
            "arrival": self.arrival.to_dict(),
            "workload": [kind.to_dict() for kind in self.workload],
            "policy": self.policy.to_dict(),
            "duration": self.duration,
            "seed": self.seed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def default_config(
    *, seed: int = 0, duration: float = 30.0, rate: float | None = None
) -> ServiceConfig:
    """The built-in demo session: a mixed workload on two campus LANs."""
    return ServiceConfig(
        cluster="two-lans:3",
        arrival=ArrivalSpec(process="poisson", rate=4.0 if rate is None else rate),
        workload=(
            RequestKind.from_dict({"template": "interactive", "n": 1500, "weight": 3}),
            RequestKind.from_dict({"template": "analytics", "n": 2500, "weight": 2}),
            RequestKind.from_dict({"template": "sort", "n": 2000, "weight": 1}),
        ),
        policy=PolicySpec(queue_limit=64, max_batch=4),
        duration=duration,
        seed=seed,
    )
