"""The outcome of one serving session.

A :class:`ServiceReport` carries exactly the curves the serving
experiments plot — goodput vs offered load, p50/p99 latency, shed
fraction — plus the per-slice utilisation that shows the proportional
placement doing its job.  Latencies are kept exact (every completed
request's number, in completion order), so determinism tests can
assert bit-identity rather than "close enough".

Percentiles are the exact order statistic (nearest-rank,
``ceil(q * count)``), not an interpolation: two identical sessions
report identical doubles.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.util.units import format_time

__all__ = ["ServiceReport", "percentile"]


def percentile(latencies: t.Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``latencies`` (0 for an empty set)."""
    if not latencies:
        return 0.0
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q!r}")
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclasses.dataclass(frozen=True)
class ServiceReport:
    """Everything a finished session measured."""

    cluster: str
    seed: int
    duration: float
    offered: int
    offered_rate: float
    admitted: int
    completed: int
    shed: int
    batches: int
    goodput: float
    slo: float | None
    makespan: float
    queue_depth_max: int
    latencies: tuple[float, ...]
    slice_names: tuple[str, ...]
    slice_busy: tuple[float, ...]
    slice_completed: tuple[int, ...]
    kind_completed: tuple[tuple[str, int], ...]
    # Dynamic-cluster accounting; the defaults are exactly a static
    # session's values, so reports with and without an (empty) plan
    # compare equal field-for-field.
    epochs: int = 1
    redispatched: int = 0
    degraded: int = 0
    degraded_shed: int = 0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latencies, 0.99)

    @property
    def latency_mean(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def latency_max(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    def slice_utilization(self) -> tuple[float, ...]:
        """Busy fraction of each slice over the session makespan."""
        if self.makespan <= 0:
            return tuple(0.0 for _ in self.slice_busy)
        return tuple(busy / self.makespan for busy in self.slice_busy)

    def render(self) -> str:
        """Human-readable session summary."""
        lines = [
            f"serving session on {self.cluster} "
            f"(seed {self.seed}, {format_time(self.duration)} of arrivals)",
            f"  offered   : {self.offered} requests "
            f"({self.offered_rate:.3g} req/s open-loop)",
            f"  admitted  : {self.admitted}   shed: {self.shed} "
            f"({100 * self.shed_fraction:.1f}%)",
            f"  completed : {self.completed} in {self.batches} batches over "
            f"{format_time(self.makespan)} (max queue depth {self.queue_depth_max})",
            f"  goodput   : {self.goodput:.3g} req/s"
            + (f" (SLO {format_time(self.slo)})" if self.slo is not None else ""),
            f"  latency   : p50 {format_time(self.latency_p50)}   "
            f"p99 {format_time(self.latency_p99)}   "
            f"mean {format_time(self.latency_mean)}   "
            f"max {format_time(self.latency_max)}",
        ]
        utilization = self.slice_utilization()
        for name, busy, count, util in zip(
            self.slice_names, self.slice_busy, self.slice_completed, utilization
        ):
            lines.append(
                f"  slice {name:16s}: {count:5d} completed, "
                f"busy {format_time(busy)} ({100 * util:.0f}%)"
            )
        mix = ", ".join(f"{name} {count}" for name, count in self.kind_completed)
        lines.append(f"  mix       : {mix}")
        if self.epochs > 1:
            lines.append(
                f"  dynamics  : {self.epochs} membership epochs, "
                f"{self.redispatched} redispatched, "
                f"{self.degraded} served degraded, "
                f"{self.degraded_shed} shed degraded"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        """Plain-data dump for benchmark artifacts and tooling."""
        return {
            "cluster": self.cluster,
            "seed": self.seed,
            "duration": self.duration,
            "offered": self.offered,
            "offered_rate": self.offered_rate,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "batches": self.batches,
            "goodput": self.goodput,
            "slo": self.slo,
            "makespan": self.makespan,
            "queue_depth_max": self.queue_depth_max,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
            "slices": {
                name: {"completed": count, "busy_seconds": busy}
                for name, count, busy in zip(
                    self.slice_names, self.slice_completed, self.slice_busy
                )
            },
            "kinds": dict(self.kind_completed),
            "epochs": self.epochs,
            "redispatched": self.redispatched,
            "degraded": self.degraded,
            "degraded_shed": self.degraded_shed,
        }

    def __str__(self) -> str:
        return self.render()
