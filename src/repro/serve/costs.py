"""Per-stage cost resolution: the service's bridge to the simulator.

Every request stage executed on a slice is an ordinary
:class:`~repro.perf.job.SimJob` — a pure, content-hashed description
of one kernel run — so its makespan comes from the same DES (macro
path where the program is ``@macro_safe``) that the experiments use,
flows through :func:`repro.perf.evaluate`'s deterministic merge, and
lands in every cache layer the executor already has.

The job universe of a session is *finite*: ``|kinds| x |stages| x
|slices| x batch sizes``.  :meth:`StageCostModel.prewarm` evaluates the
whole universe in **one** ``evaluate()`` batch before the service loop
starts, which is what makes a serving session parallel-executor
friendly — under ``sweep(jobs=N)`` the fan-out happens there, results
are bit-identical at any ``N``, and the loop itself then runs on pure
table lookups.  Any lookup the prewarm missed (it cannot, for
in-config traffic) falls back to a single inline evaluation.

With ``policy.schedule == "tuned"`` the gather/broadcast stages
resolve a :class:`~repro.tuning.plan.SchedulePlan` per
``(op, topology-slice, n)`` through :mod:`repro.tuning`'s persistent
:class:`~repro.tuning.cache.DecisionCache` — cold tunes once per
distinct shape, then O(1) lookups.
"""

from __future__ import annotations

import typing as t

from repro.perf.executor import evaluate
from repro.perf.job import APP_OPS, SimJob
from repro.serve.config import ServiceConfig
from repro.serve.placement import Slice

if t.TYPE_CHECKING:
    from repro.tuning.cache import DecisionCache

__all__ = ["StageCostModel"]

#: (kind index, stage index, slice index, batch size)
StageKey = tuple[int, int, int, int]


class StageCostModel:
    """Maps ``(kind, stage, slice, batch)`` to a simulated makespan."""

    def __init__(
        self,
        config: ServiceConfig,
        slices: t.Sequence[Slice],
        *,
        decision_cache: "DecisionCache | None" = None,
    ) -> None:
        self.config = config
        self.slices = tuple(slices)
        self._decision_cache = decision_cache
        self._plans: dict[tuple[str, int, int], t.Any] = {}
        self._costs: dict[StageKey, float] = {}
        self._prewarmed = False

    # -- job construction ----------------------------------------------------
    def _plan(self, op: str, slice_index: int, n: int) -> t.Any:
        """The tuned :class:`SchedulePlan` for a collective stage, memoized."""
        key = (op, slice_index, n)
        if key not in self._plans:
            from repro.tuning.tuner import tuned_plan

            self._plans[key] = tuned_plan(
                self.slices[slice_index].topology, op, n,
                cache=self._decision_cache,
            )
        return self._plans[key]

    def job(self, key: StageKey) -> SimJob:
        """The :class:`SimJob` realising one stage key."""
        kind_index, stage_index, slice_index, batch = key
        kind = self.config.workload[kind_index]
        stage = kind.stages[stage_index]
        topology = self.slices[slice_index].topology
        n = kind.stage_n(stage, batch)
        kwargs: dict[str, t.Any] = {"seed": self.config.seed}
        if stage.op in APP_OPS:
            return SimJob.app(stage.op, topology, n, **kwargs)
        if self.config.policy.schedule == "tuned":
            plan = self._plan(stage.op, slice_index, n)
            if plan is not None:
                kwargs["plan"] = plan
        return SimJob.collective(stage.op, topology, n, **kwargs)

    def universe(self) -> list[StageKey]:
        """Every stage key in-config traffic can produce, in fixed order."""
        keys: list[StageKey] = []
        for kind_index, kind in enumerate(self.config.workload):
            for stage_index in range(len(kind.stages)):
                for slice_index in range(len(self.slices)):
                    for batch in range(1, self.config.policy.max_batch + 1):
                        keys.append((kind_index, stage_index, slice_index, batch))
        return keys

    def jobs(self) -> list[SimJob]:
        """The session's full job universe (duplicates by content allowed)."""
        return [self.job(key) for key in self.universe()]

    # -- evaluation ----------------------------------------------------------
    def prewarm(self) -> int:
        """Evaluate the whole universe in one batch; returns its size.

        Under an active :func:`repro.perf.sweep` executor the batch fans
        out across workers and every cache layer; results are
        bit-identical at any worker count, so the service loop they
        feed is too.  Idempotent — a model shared across sessions (the
        load-sweep experiments) pays for its universe once.
        """
        if self._prewarmed:
            return 0
        self._prewarmed = True
        keys = self.universe()
        results = evaluate(self.job(key) for key in keys)
        for key, result in zip(keys, results):
            self._costs[key] = result.time
        return len(keys)

    def stage_cost(self, key: StageKey) -> float:
        """Simulated seconds of one stage; inline-evaluates on a miss."""
        cost = self._costs.get(key)
        if cost is None:
            (result,) = evaluate([self.job(key)])
            self._costs[key] = cost = result.time
        return cost

    def request_cost(self, kind_index: int, slice_index: int, batch: int) -> float:
        """Simulated seconds for a whole batch of one kind on one slice."""
        kind = self.config.workload[kind_index]
        return sum(
            self.stage_cost((kind_index, stage_index, slice_index, batch))
            for stage_index in range(len(kind.stages))
        )

    def __repr__(self) -> str:
        return (
            f"StageCostModel(kinds={len(self.config.workload)}, "
            f"slices={len(self.slices)}, cached={len(self._costs)})"
        )
